//! Observability-layer integration tests: the staleness contract as seen
//! through the instrumentation hub, Perfetto export well-formedness, and
//! machine-readable run reports.

use proptest::prelude::*;

use nscc::core::RunReport;
use nscc::dsm::{Coherence, Directory, DsmWorld};
use nscc::msg::MsgConfig;
use nscc::net::{EthernetBus, Network};
use nscc::obs::{json, Hub, ObsEvent, SpanKind};
use nscc::sim::{SimBuilder, SimTime};

/// Run an all-to-all read/write workload with every layer instrumented,
/// returning the shared hub.
fn instrumented_run(seed: u64, ranks: usize, iters: u64, mode: Coherence) -> Hub {
    instrumented_run_with(Hub::new(), seed, ranks, iters, mode)
}

/// Same workload, but streaming into a caller-configured hub (e.g. one
/// with the sampling profiler enabled).
fn instrumented_run_with(hub: Hub, seed: u64, ranks: usize, iters: u64, mode: Coherence) -> Hub {
    let net = Network::new(EthernetBus::ten_mbps(seed));
    net.attach_obs(hub.clone());
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world: DsmWorld<u64> =
        DsmWorld::new(net, ranks, MsgConfig::default(), dir).with_obs(hub.clone());
    for &l in &locs {
        world.set_initial(l, 0);
    }
    let mut sim = SimBuilder::new(seed);
    sim.attach_obs(hub.clone());
    for r in 0..ranks {
        let mut node = world.node(r);
        let locs = locs.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            for iter in 1..=iters {
                ctx.advance(SimTime::from_micros(300 + 100 * r as u64));
                node.write(ctx, locs[r], iter, iter);
                for (q, &l) in locs.iter().enumerate() {
                    if q != r {
                        let _ = node.read(ctx, l, iter, mode);
                    }
                }
            }
            node.retire(ctx, locs[r], 0);
        });
    }
    sim.run().expect("instrumented run completes");
    hub
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper's contract, observed rather than asserted in-band: every
    /// `ReadDone` event satisfies `staleness ≤ requested`, whichever
    /// coherence discipline produced it (relaxed reads carry
    /// `requested = u64::MAX`, so the bound is vacuous there by design).
    #[test]
    fn staleness_never_exceeds_requested_age(
        seed in 0u64..1000,
        age in 0u64..=6,
        ranks in 2usize..=3,
        iters in 4u64..=12,
        mode_ix in 0usize..3,
    ) {
        let mode = [
            Coherence::Synchronous,
            Coherence::FullyAsync,
            Coherence::PartialAsync { age },
        ][mode_ix];
        let hub = instrumented_run(seed, ranks, iters, mode);
        let mut reads = 0u64;
        for ev in hub.events() {
            if let ObsEvent::ReadDone { requested, staleness, .. } = ev {
                reads += 1;
                prop_assert!(
                    staleness <= requested,
                    "staleness {staleness} > requested {requested} under {mode}"
                );
            }
        }
        prop_assert!(reads > 0, "no reads observed");
        prop_assert_eq!(hub.summary().reads, reads);
    }
}

/// The Perfetto export is valid JSON and, lane by lane, spans never
/// overlap: each (kind, pid) timeline is a sequence of disjoint intervals,
/// as a scheduler trace of sequential processes must be.
#[test]
fn perfetto_export_is_valid_and_lanes_do_not_overlap() {
    let hub = instrumented_run(7, 3, 10, Coherence::PartialAsync { age: 2 });
    let trace = hub.perfetto();
    json::validate(&trace).expect("Perfetto JSON validates");
    assert!(trace.contains("traceEvents"));

    let spans = hub.spans();
    assert!(!spans.is_empty(), "instrumented run recorded no spans");
    let lane = |k: SpanKind| match k {
        SpanKind::Compute => 0u8,
        SpanKind::Blocked => 1,
        SpanKind::Phase => 2,
    };
    let mut by_lane: std::collections::BTreeMap<(u8, u32), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    for s in &spans {
        by_lane
            .entry((lane(s.kind), s.pid))
            .or_default()
            .push((s.start_ns, s.end_ns));
    }
    for ((kind, pid), mut iv) in by_lane {
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "lane (kind {kind}, pid {pid}): span starting at {} overlaps one ending at {}",
                w[1].0,
                w[0].1
            );
        }
    }
}

/// A report built from an instrumented run validates as JSON and carries a
/// non-empty staleness histogram — the acceptance shape of
/// `NSCC_JSON=1 fig2`.
#[test]
fn run_report_carries_staleness_histogram() {
    let hub = instrumented_run(11, 2, 12, Coherence::PartialAsync { age: 1 });
    let mut rep = RunReport::new("obs_test", &hub);
    rep.param("ranks", 2.0).metric("ok", 1.0);
    let s = rep.to_json();
    json::validate(&s).expect("report JSON validates");
    assert!(
        rep.obs.staleness.count() > 0,
        "staleness histogram is empty"
    );
    assert!(rep.obs.reads > 0);
    assert!(rep.obs.messages > 0, "network deliveries not observed");
    assert!(s.contains("\"staleness\""));
}

/// The scheduler feeds the hub: compute spans and registered process names
/// appear without any manual instrumentation in the workload.
#[test]
fn scheduler_spans_and_names_reach_the_hub() {
    let hub = instrumented_run(3, 2, 6, Coherence::Synchronous);
    let compute: Vec<_> = hub
        .spans()
        .into_iter()
        .filter(|s| s.kind == SpanKind::Compute)
        .collect();
    assert!(!compute.is_empty(), "no compute spans recorded");
    let names = hub.proc_names();
    assert!(
        names.values().any(|n| n.starts_with("rank")),
        "process names not registered: {names:?}"
    );
    let t = hub.totals(0);
    assert!(t.compute_ns > 0, "pid 0 recorded no compute time");
}

/// The virtual-time sampling profiler is a pure function of the virtual
/// clock, so the same seed yields identical rows — the byte-identical
/// `NSCC_FOLDED` guarantee — and blocked samples are attributed to the
/// phase/location the process was actually stuck in.
#[test]
fn profiler_rows_are_deterministic_and_attributed() {
    let run = || {
        let hub = Hub::new();
        hub.profile_every(50_000);
        instrumented_run_with(hub.clone(), 7, 3, 10, Coherence::PartialAsync { age: 0 });
        hub.profile_rows()
    };
    let rows = run();
    assert!(!rows.is_empty(), "profiler recorded nothing");
    assert!(
        rows.iter().any(|r| r.phase == "compute"),
        "no compute samples: {rows:?}"
    );
    assert!(
        rows.iter()
            .any(|r| r.phase == "Global_Read" && !r.detail.is_empty()),
        "blocked samples not attributed to a location: {rows:?}"
    );
    assert_eq!(
        format!("{rows:?}"),
        format!("{:?}", run()),
        "same seed must produce identical profile rows"
    );
}

/// The analyzer mirrors the writer's schema constants (it is
/// dependency-free by design, so it cannot import them). If this fails,
/// bump `nscc_analyze::SCHEMA_VERSION` / `nscc_analyze::FEED_VERSION`
/// alongside the obs ones.
#[test]
fn analyzer_schema_version_tracks_obs() {
    assert_eq!(
        nscc::analyze::SCHEMA_VERSION,
        u64::from(nscc::obs::SCHEMA_VERSION)
    );
    assert_eq!(
        nscc::analyze::FEED_VERSION,
        u64::from(nscc::obs::FEED_VERSION)
    );
}
