//! Chaos-facing integration tests: the `Global_Read` staleness contract
//! under arbitrary frame loss/duplication with reliable delivery on, the
//! causal-attribution contract (every `ReadDep`'s releasing write honors
//! the blocked read's age bound), a GA experiment surviving a mid-run
//! node crash with a `degraded` marker in its run report, and the
//! consistent-snapshot contracts: cut-served warm restores stay
//! audit-clean, and crash-free snapshot-on runs render reports
//! byte-identical to snapshot-off runs outside `recovery`.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use nscc::core::{run_ga_experiment, GaExperiment, Platform, RecoveryStyle, RunReport};
use nscc::dsm::{Coherence, Directory, DsmWorld, LocId, ReadOutcome};
use nscc::faults::{FaultPlan, FaultyMedium};
use nscc::ga::{CostModel, SupervisorPolicy, TestFn};
use nscc::msg::{MsgConfig, ReliableConfig};
use nscc::net::{EthernetBus, Network};
use nscc::obs::{Hub, ObsEvent};
use nscc::sim::{SimBuilder, SimTime};

/// All-to-all read/write over a lossy, duplicating Ethernet with the
/// reliable layer on and a read timeout, returning every read outcome
/// plus the run's network/comm counters. `inject` arms the deliberate
/// stale-release sabotage (audit validation; 0 = honest run).
fn chaotic_readback(
    seed: u64,
    ranks: usize,
    iters: u64,
    age: u64,
    loss: f64,
    dup: f64,
    hub: Option<Hub>,
    inject: u64,
) -> (Vec<ReadOutcome<u64>>, u64, u64, u64) {
    let plan = FaultPlan::new(seed).loss(loss).duplication(dup);
    let net = Network::new(FaultyMedium::new(EthernetBus::ten_mbps(seed), plan));
    let mut cfg = MsgConfig::default();
    cfg.reliable = Some(ReliableConfig::default());
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world: DsmWorld<u64> =
        DsmWorld::new(net.clone(), ranks, cfg, dir).with_read_timeout(SimTime::from_millis(30));
    if let Some(h) = hub {
        world = world.with_obs(h);
    }
    if inject > 0 {
        world = world.with_stale_injection(inject);
    }
    for &l in &locs {
        world.set_initial(l, 0);
    }

    let outcomes: Arc<Mutex<Vec<ReadOutcome<u64>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(seed);
    for r in 0..ranks {
        let mut node = world.node(r);
        let locs = locs.clone();
        let outcomes = Arc::clone(&outcomes);
        sim.spawn(format!("rank{r}"), move |ctx| {
            for iter in 1..=iters {
                ctx.advance(SimTime::from_micros(400 + 130 * r as u64));
                node.write(ctx, locs[r], iter, iter);
                for (q, &l) in locs.iter().enumerate() {
                    if q != r {
                        let out = node.global_read_ex(ctx, l, iter, age);
                        outcomes.lock().unwrap().push(out);
                    }
                }
            }
            if r == 0 {
                // Quiescent tail: keep virtual time flowing past the
                // longest possible retransmit backoff chain, so frames
                // dropped in the final iterations still get their
                // retry/give-up resolution before the run ends.
                ctx.advance(SimTime::from_secs(1));
            }
        });
    }
    sim.run()
        .expect("chaotic run completes (timeouts bound every wait)");
    let comm = world.comm_stats();
    let outs = Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap();
    (outs, net.stats().dropped, comm.retransmits, comm.give_ups)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the fault plan does to the wire, a read that is not
    /// explicitly tagged `degraded` must honor the paper's bound: the
    /// delivered version is at least `curr_iter − age`. Reliable delivery
    /// plus receiver-side dedup is what keeps duplicated/lost updates
    /// from corrupting version bookkeeping.
    #[test]
    fn staleness_bound_survives_any_fault_plan(
        seed in 0u64..500,
        ranks in 2usize..=3,
        iters in 6u64..=14,
        age in 0u64..=5,
        loss in 0.0f64..0.25,
        dup in 0.0f64..0.20,
    ) {
        let (outs, dropped, retransmits, give_ups) =
            chaotic_readback(seed, ranks, iters, age, loss, dup, None, 0);
        prop_assert!(!outs.is_empty(), "no reads recorded");
        for out in &outs {
            if !out.degraded {
                prop_assert!(
                    out.age >= out.required,
                    "undegraded read broke the bound: delivered version {} < required {}",
                    out.age,
                    out.required
                );
            }
        }
        // Every fault the wire injected must have been answered: a
        // dropped frame either retransmits or (after max retries) is
        // abandoned — never silently forgotten.
        if dropped > 0 {
            prop_assert!(
                retransmits + give_ups > 0,
                "{dropped} frames dropped but the reliable layer never reacted"
            );
        }
    }
}

/// Pair every `ReadDep` event with the `ReadBlocked` it resolves (reads
/// are sequential per rank, so at most one blocked read is outstanding
/// per reader) and check the provenance contract: the releasing write's
/// generation satisfies the blocked read's own `required = curr_iter −
/// age` bound, on the location the read actually blocked on, from a
/// writer other than the reader itself. Returns how many dependencies
/// were checked.
fn check_read_deps(events: &[ObsEvent]) -> Result<u64, String> {
    let mut pending: std::collections::HashMap<u32, (u32, u64)> = std::collections::HashMap::new();
    let mut deps = 0u64;
    for ev in events {
        match ev {
            ObsEvent::ReadBlocked {
                rank,
                loc,
                required,
                ..
            } => {
                pending.insert(*rank, (*loc, *required));
            }
            ObsEvent::ReadDep {
                reader,
                writer,
                loc,
                write_iter,
                ..
            } => {
                deps += 1;
                let (bloc, required) = pending
                    .remove(reader)
                    .ok_or_else(|| format!("reader {reader}: ReadDep without a ReadBlocked"))?;
                if *loc != bloc {
                    return Err(format!(
                        "reader {reader}: dep names loc {loc} but the read blocked on {bloc}"
                    ));
                }
                if *write_iter < required {
                    return Err(format!(
                        "reader {reader}: releasing write_iter {write_iter} breaks the \
                         bound (required {required})"
                    ));
                }
                if writer == reader {
                    return Err(format!("reader {reader} blocked on its own write"));
                }
            }
            _ => {}
        }
    }
    Ok(deps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The causal-attribution contract under chaos: whatever the fault
    /// plan does to the wire — drops forcing retransmits, duplicates
    /// forcing dedup — every `ReadDep` a blocked read reports names a
    /// releasing write whose generation satisfies that read's own
    /// staleness bound. Retransmitted provenance must not smuggle in a
    /// version older than the bound.
    #[test]
    fn read_dep_provenance_satisfies_the_age_bound(
        seed in 0u64..500,
        ranks in 2usize..=3,
        iters in 6u64..=12,
        age in 0u64..=4,
        loss in 0.0f64..0.25,
        dup in 0.0f64..0.20,
    ) {
        let hub = Hub::new();
        chaotic_readback(seed, ranks, iters, age, loss, dup, Some(hub.clone()), 0);
        if let Err(e) = check_read_deps(&hub.events()) {
            prop_assert!(false, "{}", e);
        }
    }
}

/// The fault-free anchor for the property above: a lossless age=0 run
/// must actually block (the readers outrun the staggered writers), so
/// the provenance check is exercised, not vacuously passed — and the
/// same seed must reproduce the same dependency stream byte for byte.
#[test]
fn read_deps_are_recorded_and_deterministic() {
    let run = || {
        let hub = Hub::new();
        chaotic_readback(11, 3, 10, 0, 0.0, 0.0, Some(hub.clone()), 0);
        hub.events()
    };
    let events = run();
    let deps = check_read_deps(&events).expect("provenance contract holds");
    assert!(
        deps > 0,
        "age=0 run never blocked — the property is vacuous"
    );
    let deps2 = check_read_deps(&run()).expect("rerun contract holds");
    assert_eq!(deps, deps2, "same seed must release the same dependencies");
}

/// A read/write loop where one rank checkpoints its DSM cache and later
/// restores it (a warm crash recovery rolled back `restore_iter −
/// snap_iter` iterations), then keeps reading. Returns the post-restore
/// read outcomes.
fn readback_across_restore(
    seed: u64,
    iters: u64,
    age: u64,
    snap_iter: u64,
    restore_iter: u64,
) -> Vec<ReadOutcome<u64>> {
    let net = Network::new(EthernetBus::ten_mbps(seed));
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", 2);
    let mut world: DsmWorld<u64> = DsmWorld::new(net, 2, MsgConfig::default(), dir)
        .with_read_timeout(SimTime::from_millis(30));
    for &l in &locs {
        world.set_initial(l, 0);
    }

    let outcomes: Arc<Mutex<Vec<ReadOutcome<u64>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(seed);
    for r in 0..2usize {
        let mut node = world.node(r);
        let locs = locs.clone();
        let outcomes = Arc::clone(&outcomes);
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut frame: Option<Vec<u8>> = None;
            for iter in 1..=iters {
                ctx.advance(SimTime::from_micros(400 + 130 * r as u64));
                if r == 1 && iter == snap_iter {
                    // The sealed frame round-trips byte-identically — the
                    // same encoding the island checkpoints use.
                    let bytes = nscc::ckpt::to_bytes(&node.export_cache());
                    let sealed = nscc::ckpt::seal(&bytes);
                    let back: Vec<(LocId, u64, u64)> =
                        nscc::ckpt::from_bytes(nscc::ckpt::unseal(&sealed).unwrap()).unwrap();
                    assert_eq!(nscc::ckpt::to_bytes(&back), bytes);
                    frame = Some(sealed);
                }
                if r == 1 && iter == restore_iter {
                    let sealed = frame.take().expect("snapshot taken before restore");
                    let entries: Vec<(LocId, u64, u64)> =
                        nscc::ckpt::from_bytes(nscc::ckpt::unseal(&sealed).unwrap()).unwrap();
                    node.restore_cache(entries);
                    // Drain pending updates: the resync that makes a
                    // restored node look like a legitimately stale peer.
                    node.drain(ctx);
                }
                node.write(ctx, locs[r], iter, iter);
                let peer = locs[1 - r];
                let out = node.global_read_ex(ctx, peer, iter, age);
                if r == 1 && iter >= restore_iter {
                    outcomes.lock().unwrap().push(out);
                }
            }
        });
    }
    sim.run().expect("restore run completes");
    Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §4.1's recovery claim, as a property: rolling a node's cache back
    /// to an earlier checkpoint and resyncing from pending updates never
    /// lets an undegraded `Global_Read` break the staleness bound — the
    /// restored node is indistinguishable from a legitimately stale peer.
    #[test]
    fn staleness_bound_holds_across_a_restore(
        seed in 0u64..500,
        age in 0u64..=5,
        snap_iter in 2u64..=6,
        rollback in 1u64..=6,
    ) {
        let restore_iter = snap_iter + rollback;
        let outs = readback_across_restore(seed, restore_iter + 8, age, snap_iter, restore_iter);
        prop_assert!(!outs.is_empty(), "no post-restore reads recorded");
        for out in &outs {
            if !out.degraded {
                prop_assert!(
                    out.age >= out.required,
                    "post-restore undegraded read broke the bound: \
                     delivered version {} < required {}",
                    out.age,
                    out.required
                );
            }
        }
    }
}

/// Warm recovery vs cold restart on the same crash: both runs share the
/// seed, the fault plan and the quality target, so the only difference
/// is what the crashed island comes back with. Restoring a checkpoint at
/// most `age` generations old must never converge later than restarting
/// from scratch, and the rollback distance must honor the age bound.
#[test]
fn warm_recovery_converges_no_later_than_cold_restart() {
    let age = 5u64;
    let run = |style: RecoveryStyle| {
        let platform =
            Platform::paper_ethernet(2).with_faults(FaultPlan::new(42).crash_and_restart(
                1,
                SimTime::from_millis(40),
                SimTime::from_millis(55),
            ));
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cost: CostModel::deterministic(),
            platform,
            modes: vec![Coherence::PartialAsync { age }],
            read_timeout: Some(SimTime::from_millis(50)),
            heartbeat: Some(SimTime::from_millis(20)),
            watchdog: Some(SimTime::from_secs(600)),
            recovery: Some(style),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).expect("recovery cell completes");
        res.modes[0].clone()
    };

    let warm = run(RecoveryStyle::Warm);
    let cold = run(RecoveryStyle::Cold);
    assert!(warm.restores >= 1, "warm run never restored");
    assert!(cold.restores >= 1, "cold run never restarted");
    assert!(
        warm.max_rollback <= age,
        "warm rollback {} exceeds the age bound {age}",
        warm.max_rollback
    );
    assert_eq!(cold.max_rollback, 0, "cold restarts roll nothing back");
    assert!(
        warm.mean_time <= cold.mean_time,
        "warm recovery converged later ({:?}) than a cold restart ({:?})",
        warm.mean_time,
        cold.mean_time
    );

    // Same seed, same style: the recovery path itself is deterministic.
    let warm2 = run(RecoveryStyle::Warm);
    assert_eq!(warm.mean_time, warm2.mean_time);
    assert_eq!(warm.restores, warm2.restores);
    assert_eq!(warm.max_rollback, warm2.max_rollback);
}

/// The ISSUE's acceptance scenario: ≥1% frame loss plus one node crash
/// mid-run. The partial-async GA must complete (no wedge), the fault
/// layer's work must show up in the counters, and a run report built
/// from the result must carry the `degraded` marker — reproducibly for
/// the same seeds.
#[test]
fn ga_survives_midrun_node_crash_with_degraded_marker() {
    let hub = Hub::new();
    // Rank 2 dies ~6 generations in (one generation ≈ 8.5 ms of virtual
    // CPU); the survivors need ~40 generations, so their reads of its
    // location must eventually outrun its last version and degrade.
    let mut platform = Platform::paper_ethernet(3).with_faults(
        FaultPlan::new(7)
            .loss(0.01)
            .crash(2, SimTime::from_millis(50)),
    );
    platform.msg.reliable = Some(ReliableConfig {
        base_rto: SimTime::from_millis(80),
        ..ReliableConfig::default()
    });
    let exp = GaExperiment {
        generations: 40,
        runs: 1,
        cap_factor: 3,
        cost: CostModel::deterministic(),
        platform,
        obs: Some(hub.clone()),
        modes: vec![Coherence::PartialAsync { age: 10 }],
        read_timeout: Some(SimTime::from_millis(50)),
        heartbeat: Some(SimTime::from_millis(20)),
        watchdog: Some(SimTime::from_secs(3600)),
        ..GaExperiment::new(TestFn::F1Sphere, 3)
    };

    let res = run_ga_experiment(&exp).expect("chaos GA cell completes");
    let m = &res.modes[0];
    assert!(m.mean_generations > 0.0, "no generations executed");
    assert!(res.net.dropped > 0, "fault layer never fired");
    assert!(
        m.dsm.degraded_reads > 0,
        "the crash left no degraded reads — it was never felt"
    );

    let mut rep = RunReport::new("chaos", &hub);
    rep.dsm = m.dsm.clone();
    rep.net = Some(res.net.clone());
    rep.comm = Some(res.comm);
    rep.fault_reports = res.fault_reports.len() as u64;
    rep.note_degradation();
    assert!(rep.degraded, "report must carry the degraded marker");
    let json = rep.to_json();
    assert!(json.contains("\"degraded\":true"), "{json}");
    assert!(json.contains("\"degraded_reads\""), "{json}");

    // Same seeds, same chaos: the resilience story must reproduce.
    let res2 = run_ga_experiment(&exp).expect("rerun completes");
    assert_eq!(res.net.dropped, res2.net.dropped);
    assert_eq!(m.dsm.degraded_reads, res2.modes[0].dsm.degraded_reads);
    assert_eq!(m.comm.retransmits, res2.modes[0].comm.retransmits);
    assert_eq!(res.fault_reports.len(), res2.fault_reports.len());
}

/// The acceptance scenario for the online auditor: a seeded run with
/// deliberate stale releases armed must (a) trip the staleness monitor
/// and no other, (b) cut a byte-identical flight dump on every rerun,
/// and (c) yield a post-mortem that attributes the flagged location to
/// the rank that actually published it last.
#[test]
fn injected_stale_delivery_is_caught_with_provenance_in_the_dump() {
    use nscc::audit::{render_flight_dump, Auditor, FlightDump};

    let run = || {
        let hub = Hub::new();
        hub.enable_flight(4096);
        let auditor = Arc::new(Auditor::new());
        hub.set_tap(auditor.clone());
        // Sabotage: the first 3 would-block reads per rank release the
        // cached value immediately, past the age-0 bound.
        chaotic_readback(11, 3, 12, 0, 0.0, 0.0, Some(hub.clone()), 3);
        let summary = auditor.summary();
        let dump = FlightDump::new(
            "chaos",
            11,
            "violation",
            hub.flight_capacity(),
            hub.flight_events(),
            auditor.recorded(),
        )
        .with_proc_names(vec!["rank0".into(), "rank1".into(), "rank2".into()]);
        (summary, render_flight_dump(&dump))
    };

    let (summary, dump_json) = run();
    assert!(
        summary.violations > 0,
        "auditor missed every injected stale release"
    );
    let stale = summary
        .monitors
        .iter()
        .find(|m| m.name == "staleness")
        .expect("staleness monitor installed");
    assert!(stale.checked > 0 && stale.violations > 0, "{summary:?}");
    for m in &summary.monitors {
        if m.name != "staleness" {
            assert_eq!(
                m.violations, 0,
                "{} monitor false-positived on a staleness-only sabotage",
                m.name
            );
        }
    }
    assert!(
        !summary.recorded.is_empty(),
        "violations must be recorded, not just counted"
    );

    // Same seed, same sabotage: the black box must be byte-identical.
    let (_, dump_again) = run();
    assert_eq!(dump_json, dump_again, "flight dump is not deterministic");

    // The dump round-trips through the analyzer's post-mortem, and the
    // suspected-cause heuristic names the releasing writer. Location q
    // is owned (written) by rank q alone, and a rank never reads its own
    // location, so any correct attribution names another rank.
    let path = std::env::temp_dir().join("nscc_chaos_flight_test.json");
    std::fs::write(&path, format!("{dump_json}\n")).expect("write dump");
    let rep = nscc::analyze::Report::load(&path).expect("dump parses");
    let text = nscc::analyze::postmortem(&rep).expect("postmortem renders");
    std::fs::remove_file(&path).ok();
    assert!(text.contains("reason: violation"), "{text}");
    assert!(
        text.contains("was last published by rank"),
        "no provenance attribution in:\n{text}"
    );
    assert!(
        text.contains("(rank0)") || text.contains("(rank1)") || text.contains("(rank2)"),
        "attribution lost the process name:\n{text}"
    );
}

/// The standing determinism contract: attaching the full monitor set
/// (and the flight ring) to a run must not perturb it — the rendered
/// `RunReport` is byte-identical outside the `audit` section.
#[test]
fn monitors_on_and_off_reports_are_byte_identical_outside_audit() {
    use nscc::audit::Auditor;

    let render = |audit: bool| -> String {
        let hub = Hub::new();
        let auditor = Arc::new(Auditor::new());
        if audit {
            hub.enable_flight(1024);
            hub.set_tap(auditor.clone());
        }
        chaotic_readback(23, 3, 10, 1, 0.02, 0.01, Some(hub.clone()), 0);
        let mut rep = RunReport::new("determinism", &hub);
        if audit {
            rep.audit = Some(auditor.summary());
        }
        rep.to_json()
    };

    let on = render(true);
    let off = render(false);
    // `audit` sits just before the (here untraced) `staleness` tail; cut
    // both at its key and the prefixes must match to the byte.
    let cut = |s: &str| {
        let at = s.rfind(",\"audit\":").expect("report carries an audit key");
        s[..at].to_string()
    };
    assert_eq!(
        cut(&on),
        cut(&off),
        "monitors perturbed the run they were watching"
    );
    assert!(off.ends_with("\"audit\":null,\"staleness\":null}"), "{off}");
    assert!(on.contains("\"audit\":{"), "{on}");
    // An honest run under full monitoring: plenty checked, nothing flagged.
    assert!(on.contains("\"violations\":0"), "{on}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism contract under arbitrary fault pressure: for any
    /// seed/loss/duplication mix, the monitored and unmonitored runs
    /// agree byte-for-byte outside `audit`, and an honest run stays
    /// violation-free no matter the weather.
    #[test]
    fn monitored_runs_are_undisturbed_under_any_fault_plan(
        seed in 1u64..5000,
        loss in 0.0f64..0.15,
        dup in 0.0f64..0.10,
    ) {
        use nscc::audit::Auditor;

        let render = |audit: bool| -> (String, u64) {
            let hub = Hub::new();
            let auditor = Arc::new(Auditor::new());
            if audit {
                hub.enable_flight(512);
                hub.set_tap(auditor.clone());
            }
            chaotic_readback(seed, 3, 8, 1, loss, dup, Some(hub.clone()), 0);
            let mut rep = RunReport::new("determinism", &hub);
            if audit {
                rep.audit = Some(auditor.summary());
            }
            (rep.to_json(), auditor.violation_count())
        };

        let (on, violations) = render(true);
        let (off, _) = render(false);
        let cut = |s: &str| {
            let at = s.rfind(",\"audit\":").expect("report carries an audit key");
            s[..at].to_string()
        };
        prop_assert_eq!(cut(&on), cut(&off));
        prop_assert_eq!(violations, 0, "honest run flagged by the auditor: {}", on);
    }

    /// The marker protocol's determinism contract, proptest-pinned: for
    /// any seed and wave cadence, a crash-free snapshot-on GA run renders
    /// a `RunReport` byte-identical to the snapshot-off run outside the
    /// `recovery` section. Markers travel on an out-of-band plane and a
    /// local capture reuses the island's newest sealed checkpoint frame,
    /// so the application story — virtual time, evolution, messages, obs
    /// counters — must not move by a byte.
    #[test]
    fn snapshot_on_reports_are_byte_identical_outside_recovery(
        seed in 1u64..5000,
        every in 1u64..8,
    ) {
        let render = |snapshots: Option<u64>| -> String {
            let hub = Hub::new();
            let exp = GaExperiment {
                generations: 16,
                runs: 1,
                cap_factor: 3,
                base_seed: seed,
                cost: CostModel::deterministic(),
                platform: Platform::paper_ethernet(3),
                obs: Some(hub.clone()),
                modes: vec![Coherence::PartialAsync { age: 5 }],
                recovery: Some(RecoveryStyle::Warm),
                snapshots,
                supervision: snapshots.map(|_| SupervisorPolicy::default()),
                ..GaExperiment::new(TestFn::F1Sphere, 3)
            };
            let res = run_ga_experiment(&exp).expect("clean cell completes");
            let m = &res.modes[0];
            let mut rep = RunReport::new("snapdet", &hub);
            rep.metric("mean_time_ns", m.mean_time.as_nanos() as f64)
                .metric("mean_best", m.mean_best)
                .metric("mean_messages", m.mean_messages);
            rep.dsm = m.dsm.clone();
            rep.net = Some(res.net.clone());
            rep.comm = Some(m.comm);
            rep.recovery = res.recovery.clone();
            rep.note_degradation();
            rep.to_json()
        };

        let on = render(Some(every));
        let off = render(None);
        // `recovery` sits between `obs` and `wall` in the schema, so the
        // comparison is prefix + suffix around that one section; both
        // halves must match to the byte.
        let split = |s: &str| {
            let a = s.rfind(",\"recovery\":").expect("report carries a recovery key");
            let b = s.rfind(",\"wall\":").expect("report carries a wall key");
            (s[..a].to_string(), s[b..].to_string())
        };
        let (on_pre, on_post) = split(&on);
        let (off_pre, off_post) = split(&off);
        prop_assert_eq!(on_pre, off_pre, "snapshots perturbed the run they were capturing");
        prop_assert_eq!(on_post, off_post);
        prop_assert!(off.contains("\"recovery\":null"), "{}", off);
        prop_assert!(on.contains("\"recovery\":{"), "{}", on);
    }
}

/// The recovery-drill acceptance story at integration level: a mid-run
/// island crash under snapshots + supervision is warm-restored within the
/// age bound while the full online monitor set — including the
/// snapshot-lifecycle monitor — watches the run and stays silent.
#[test]
fn consistent_cut_recovery_is_audit_clean() {
    use nscc::audit::Auditor;

    let hub = Hub::new();
    let auditor = Arc::new(Auditor::new());
    hub.set_tap(auditor.clone());
    let platform = Platform::paper_ethernet(3).with_faults(FaultPlan::new(42).crash_and_restart(
        1,
        SimTime::from_millis(40),
        SimTime::from_millis(55),
    ));
    let exp = GaExperiment {
        generations: 30,
        runs: 1,
        cap_factor: 3,
        cost: CostModel::deterministic(),
        platform,
        obs: Some(hub.clone()),
        modes: vec![Coherence::PartialAsync { age: 5 }],
        read_timeout: Some(SimTime::from_millis(50)),
        heartbeat: Some(SimTime::from_millis(20)),
        watchdog: Some(SimTime::from_secs(3600)),
        recovery: Some(RecoveryStyle::Warm),
        snapshots: Some(5),
        supervision: Some(SupervisorPolicy::default()),
        ..GaExperiment::new(TestFn::F1Sphere, 3)
    };

    let res = run_ga_experiment(&exp).expect("supervised cell completes");
    assert!(
        res.fault_reports.is_empty(),
        "run wedged: {:?}",
        res.fault_reports
    );
    let rec = res
        .recovery
        .as_ref()
        .expect("snapshots + supervision enabled");
    assert!(
        rec.snapshots_completed >= 1,
        "no consistent cut ever completed: {rec:?}"
    );
    assert_eq!(rec.restores, 1, "the crash window must be taken: {rec:?}");
    assert_eq!(rec.restarts_approved, 1, "the supervisor must approve it");
    assert_eq!(rec.give_ups, 0, "no island should retire: {rec:?}");
    assert!(
        rec.max_rollback <= 5,
        "rollback {} exceeds the age bound",
        rec.max_rollback
    );

    // The snapshot monitor audited the wave lifecycle and found nothing —
    // and neither did any other monitor.
    let summary = auditor.summary();
    let snap = summary
        .monitors
        .iter()
        .find(|m| m.name == "snapshot")
        .expect("snapshot monitor installed");
    assert!(snap.checked > 0, "snapshot monitor never saw a wave");
    assert_eq!(
        summary.violations, 0,
        "recovery tripped a monitor: {summary:?}"
    );
}
