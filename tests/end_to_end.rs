//! Cross-crate integration tests: the full stack (sim + net + msg + dsm +
//! applications) exercised through the facade crate.

use std::sync::Arc;

use nscc::bayes::{
    exact_posterior, figure1, run_parallel_inference, BayesCost, ParallelBayesConfig, Query,
    StopRule, Table2Net,
};
use nscc::core::{run_ga_experiment, GaExperiment, Interconnect, Platform};
use nscc::dsm::{Coherence, Directory, DsmWorld};
use nscc::ga::{CostModel, TestFn};
use nscc::msg::MsgConfig;
use nscc::net::{EthernetBus, Network, Sp2Switch};
use nscc::sim::{SimBuilder, SimTime};

/// The headline mechanism end to end: Global_Read provides bounded
/// staleness over a contended Ethernet with many ranks.
#[test]
fn global_read_staleness_bound_holds_under_contention() {
    let ranks = 6;
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world: DsmWorld<Vec<u8>> = DsmWorld::new(
        Network::new(EthernetBus::ten_mbps(3)),
        ranks,
        MsgConfig::default(),
        dir,
    );
    for &l in &locs {
        world.set_initial(l, vec![0; 128]);
    }
    let mut sim = SimBuilder::new(3);
    for r in 0..ranks {
        let mut node = world.node(r);
        let locs = locs.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            use rand::Rng;
            for iter in 1..=40u64 {
                let jitter: u64 = ctx.rng().gen_range(500..4000);
                ctx.advance(SimTime::from_micros(jitter));
                node.write(ctx, locs[r], vec![iter as u8; 128], iter);
                for (q, &l) in locs.iter().enumerate() {
                    if q != r {
                        let (age, _) = node.global_read(ctx, l, iter, 4);
                        // age may be the retirement sentinel (u64::MAX)
                        // once a peer finished: compare saturating.
                        assert!(age >= iter.saturating_sub(4), "staleness bound violated");
                    }
                }
            }
            node.retire(ctx, locs[r], Vec::new());
        });
    }
    sim.run().expect("no deadlock under contention");
}

/// The GA experiment pipeline produces a full Figure-2 style row with
/// consistent bookkeeping.
#[test]
fn ga_experiment_cell_end_to_end() {
    let exp = GaExperiment {
        generations: 60,
        runs: 2,
        cost: CostModel::deterministic(),
        ..GaExperiment::new(TestFn::F1Sphere, 2)
    };
    let res = run_ga_experiment(&exp).expect("cell runs");
    assert_eq!(res.modes.len(), 7);
    assert!(res.serial_time > SimTime::ZERO);
    // Sync always completes its fixed budget.
    assert_eq!(res.modes[0].label, "sync");
    assert!(res.modes[0].success_rate >= 1.0);
    for m in &res.modes {
        assert!(m.mean_messages > 0.0, "{} sent no messages", m.label);
    }
}

/// The Bayes pipeline: the controlled disciplines agree with exact
/// inference on the Figure 1 network across the full stack. (Fully
/// asynchronous is exercised by its dedicated pathology test in
/// `nscc-bayes`: on this unequal partition split it strays without bound
/// and starves, which is the point of `Global_Read`.)
#[test]
fn bayes_disciplines_agree_with_exact_inference() {
    let net = Arc::new(figure1());
    let query = Query {
        node: nscc::bayes::fig1::B,
        evidence: vec![(nscc::bayes::fig1::E, 1)],
    };
    let exact = exact_posterior(&net, query.node, &query.evidence);
    for mode in [
        Coherence::Synchronous,
        Coherence::PartialAsync { age: 4 },
        Coherence::PartialAsync { age: 16 },
    ] {
        let cfg = ParallelBayesConfig {
            stop: StopRule {
                halfwidth: 0.02,
                ..StopRule::default()
            },
            cost: BayesCost::deterministic(),
            block: 4,
            max_iterations: 40_000,
            ..ParallelBayesConfig::new(mode)
        };
        let res = run_parallel_inference(
            Arc::clone(&net),
            query.clone(),
            2,
            cfg,
            Network::new(EthernetBus::ten_mbps(9)),
            MsgConfig::default(),
            9,
        )
        .expect("inference runs");
        assert!(res.converged, "{mode} did not converge");
        for (e, p) in exact.iter().zip(&res.posterior) {
            assert!(
                (e - p).abs() < 0.06,
                "{mode}: {:?} vs exact {:?}",
                res.posterior,
                exact
            );
        }
    }
}

/// The SP2 switch platform runs the same programs with faster outcomes
/// than the Ethernet (the paper's §4.1 remark).
#[test]
fn switch_beats_ethernet_for_the_same_workload() {
    let run = |net: Network| {
        let ranks = 4;
        let mut dir = Directory::new();
        let locs = dir.add_per_rank("v", ranks);
        let mut world: DsmWorld<Vec<u8>> = DsmWorld::new(net, ranks, MsgConfig::default(), dir);
        for &l in &locs {
            world.set_initial(l, vec![0; 900]);
        }
        let mut sim = SimBuilder::new(5);
        for r in 0..ranks {
            let mut node = world.node(r);
            let locs = locs.clone();
            sim.spawn(format!("rank{r}"), move |ctx| {
                for iter in 1..=30u64 {
                    ctx.advance(SimTime::from_micros(200));
                    node.write(ctx, locs[r], vec![0; 900], iter);
                    for (q, &l) in locs.iter().enumerate() {
                        if q != r {
                            let _ = node.global_read(ctx, l, iter, 1);
                        }
                    }
                }
                node.retire(ctx, locs[r], Vec::new());
            });
        }
        sim.run().expect("runs").end_time
    };
    let eth = run(Network::new(EthernetBus::ten_mbps(5)));
    let sw = run(Network::new(Sp2Switch::sp2()));
    assert!(
        sw < eth,
        "switch ({sw}) should complete before Ethernet ({eth})"
    );
}

/// Determinism across the whole stack: same seed, same results.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let exp = GaExperiment {
            generations: 40,
            runs: 1,
            ..GaExperiment::new(TestFn::F3Step, 2)
        };
        let res = run_ga_experiment(&exp).expect("cell runs");
        (
            res.serial_time,
            res.modes
                .iter()
                .map(|m| (m.mean_time, m.mean_messages as u64))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

/// Platform presets build and run with loaders attached.
#[test]
fn loaded_platform_builds_and_runs() {
    let p = Platform::loaded_ethernet(2, 1.0);
    assert_eq!(p.interconnect, Interconnect::Ethernet10);
    let mut sim = SimBuilder::new(1);
    let net = p.build(&mut sim, 1);
    sim.spawn("clock", |ctx| ctx.advance(SimTime::from_secs(2)));
    sim.run().expect("runs");
    assert!(net.stats().medium.frames > 0, "loaders injected traffic");
}

/// Bayes experiment over a Table 2 network through the facade, checking
/// rollback accounting is visible at the top level.
#[test]
fn hailfinder_parallel_run_reports_rollbacks() {
    let net = Arc::new(Table2Net::Hailfinder.build());
    let query = Query {
        node: net.len() - 1,
        evidence: vec![],
    };
    let cfg = ParallelBayesConfig {
        stop: StopRule {
            halfwidth: 0.04,
            ..StopRule::default()
        },
        ..ParallelBayesConfig::new(Coherence::FullyAsync)
    };
    let res = run_parallel_inference(
        Arc::clone(&net),
        query,
        2,
        cfg,
        Network::new(EthernetBus::ten_mbps(4)),
        MsgConfig::default(),
        4,
    )
    .expect("inference runs");
    assert!(res.converged);
    let rollbacks: u64 = res.per_part.iter().map(|p| p.rollbacks).sum();
    assert!(rollbacks > 0, "speculation must be visible in the stats");
}
