//! Live-feed integration tests: the `NSCC_LIVE` stream's contract with
//! the deterministic run report.
//!
//! Three guarantees, property-tested across seeds and coherence modes:
//!
//! 1. The feed's closing `final` line carries exactly the counter values
//!    of the `HubSummary` embedded in the end-of-run report — the
//!    dashboard's last frame and the committed `BENCH_*.json` can never
//!    disagree.
//! 2. Attaching a feed changes nothing about the report itself:
//!    same-seed runs with the feed on and off serialize byte-identically.
//! 3. `sample_every(0)` is an explicit disable: the feed then carries
//!    only the `start` header and the `final` line.

use std::io::Write;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use nscc::analyze::json::{parse, Json};
use nscc::core::RunReport;
use nscc::dsm::{Coherence, Directory, DsmWorld};
use nscc::msg::MsgConfig;
use nscc::net::{EthernetBus, Network};
use nscc::obs::Hub;
use nscc::sim::{SimBuilder, SimTime};

/// A `Write` sink the test can read back after the hub is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .expect("feed is UTF-8")
            .lines()
            .map(str::to_string)
            .collect()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run the all-to-all read/write workload from `tests/observability.rs`
/// against a caller-configured hub and return the finished report.
fn reported_run(hub: &Hub, seed: u64, ranks: usize, iters: u64, mode: Coherence) -> RunReport {
    let net = Network::new(EthernetBus::ten_mbps(seed));
    net.attach_obs(hub.clone());
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world: DsmWorld<u64> =
        DsmWorld::new(net, ranks, MsgConfig::default(), dir).with_obs(hub.clone());
    for &l in &locs {
        world.set_initial(l, 0);
    }
    let mut sim = SimBuilder::new(seed);
    sim.attach_obs(hub.clone());
    if hub.wants_wall() {
        sim.attach_wall(hub.clone());
    }
    for r in 0..ranks {
        let mut node = world.node(r);
        let locs = locs.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            for iter in 1..=iters {
                ctx.advance(SimTime::from_micros(300 + 100 * r as u64));
                node.write(ctx, locs[r], iter, iter);
                for (q, &l) in locs.iter().enumerate() {
                    if q != r {
                        let _ = node.read(ctx, l, iter, mode);
                    }
                }
            }
            node.retire(ctx, locs[r], 0);
        });
    }
    sim.run().expect("instrumented run completes");
    let mut rep = RunReport::new("live_test", hub);
    rep.param("ranks", ranks as f64).metric("ok", 1.0);
    rep
}

fn counter(line: &Json, name: &str) -> u64 {
    line.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("final line has no counter `{name}`"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Guarantee 1: the `final` feed line equals the report's counters.
    #[test]
    fn final_feed_line_matches_the_report_counters(
        seed in 0u64..500,
        age in 0u64..=4,
        ranks in 2usize..=3,
        iters in 4u64..=10,
    ) {
        let buf = SharedBuf::default();
        let hub = Hub::new();
        hub.sample_every(1_000_000);
        hub.enable_wall();
        hub.set_live(Box::new(buf.clone()), "live_test");
        let rep = reported_run(&hub, seed, ranks, iters, Coherence::PartialAsync { age });
        hub.live_final(&rep.obs);

        let lines = buf.lines();
        prop_assert!(lines.len() >= 2, "feed too short: {lines:?}");
        let last = parse(lines.last().unwrap()).expect("final line parses");
        prop_assert_eq!(last.get("kind").and_then(Json::as_str), Some("final"));
        for (name, want) in [
            ("events", rep.obs.events),
            ("spans", rep.obs.spans),
            ("reads", rep.obs.reads),
            ("writes", rep.obs.writes),
            ("messages", rep.obs.messages),
            ("stale_discards", rep.obs.stale_discards),
            ("barriers", rep.obs.barriers),
            ("anti_messages", rep.obs.anti_messages),
            ("faults_dropped", rep.obs.faults_dropped),
            ("retransmits", rep.obs.retransmits),
            ("degraded_reads", rep.obs.degraded_reads),
            ("checkpoints", rep.obs.checkpoints),
            ("restores", rep.obs.restores),
        ] {
            prop_assert_eq!(counter(&last, name), want, "counter {} diverged", name);
        }
        // Every snap line's cumulative counters are monotone toward the
        // final totals (the feed never overshoots the report).
        for line in &lines[1..lines.len() - 1] {
            let v = parse(line).expect("snap line parses");
            prop_assert_eq!(v.get("kind").and_then(Json::as_str), Some("snap"));
            let reads = v
                .get("snap")
                .and_then(|s| s.get("reads"))
                .and_then(Json::as_u64)
                .unwrap();
            prop_assert!(reads <= rep.obs.reads);
        }
    }

    /// Guarantee 2: the feed is purely additive — attaching it (plus the
    /// wall accounting it implies) must not move a byte of the report.
    #[test]
    fn feed_on_and_off_reports_are_byte_identical(
        seed in 0u64..500,
        age in 0u64..=4,
        iters in 4u64..=10,
    ) {
        let plain = {
            let hub = Hub::new();
            hub.sample_every(1_000_000);
            reported_run(&hub, seed, 3, iters, Coherence::PartialAsync { age }).to_json()
        };
        let fed = {
            let hub = Hub::new();
            hub.sample_every(1_000_000);
            hub.enable_wall();
            hub.set_live(Box::new(SharedBuf::default()), "live_test");
            let rep = reported_run(&hub, seed, 3, iters, Coherence::PartialAsync { age });
            hub.live_final(&rep.obs);
            rep.to_json()
        };
        prop_assert_eq!(plain, fed, "NSCC_LIVE perturbed the report bytes");
    }
}

/// Guarantee 3: snapshots explicitly disabled → start + final only.
#[test]
fn disabled_cadence_yields_start_and_final_only() {
    let buf = SharedBuf::default();
    let hub = Hub::new();
    hub.sample_every(0);
    hub.set_live(Box::new(buf.clone()), "live_test");
    let rep = reported_run(&hub, 7, 2, 8, Coherence::FullyAsync);
    hub.live_final(&rep.obs);

    let lines = buf.lines();
    assert_eq!(lines.len(), 2, "expected start+final only: {lines:?}");
    let start = parse(&lines[0]).unwrap();
    assert_eq!(start.get("kind").and_then(Json::as_str), Some("start"));
    assert_eq!(
        start.get("snap_every_ns").and_then(Json::as_u64),
        Some(0),
        "disabled cadence must be advertised as 0 in the header"
    );
    let fin = parse(&lines[1]).unwrap();
    assert_eq!(fin.get("kind").and_then(Json::as_str), Some("final"));
    assert_eq!(counter(&fin, "reads"), rep.obs.reads);
}
