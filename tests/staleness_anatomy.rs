//! Staleness-anatomy integration tests: the conservation contract (every
//! traced read's age decomposes exactly into named stage durations) under
//! arbitrary fault pressure, the tracer-on/tracer-off byte-identity
//! guarantee, the Perfetto write→apply→release flow export, and the
//! golden `nscc anatomy` rendering of a captured fig2 report.

use proptest::prelude::*;

use nscc::core::RunReport;
use nscc::dsm::{Directory, DsmWorld};
use nscc::faults::{FaultPlan, FaultyMedium};
use nscc::msg::{MsgConfig, ReliableConfig};
use nscc::net::{EthernetBus, Network};
use nscc::obs::{json, Hub};
use nscc::sim::{SimBuilder, SimTime};

/// All-to-all read/write over a (possibly faulty) Ethernet with the
/// reliable layer on, a read timeout bounding every wait, and the given
/// hub observing every layer. Returns the network handle so callers can
/// read fault counters.
fn traced_run(
    hub: Hub,
    seed: u64,
    ranks: usize,
    iters: u64,
    age: u64,
    loss: f64,
    dup: f64,
    delay: f64,
) -> Network {
    let plan = FaultPlan::new(seed)
        .loss(loss)
        .duplication(dup)
        .delay(delay, SimTime::from_millis(5));
    let net = Network::new(FaultyMedium::new(EthernetBus::ten_mbps(seed), plan));
    let mut cfg = MsgConfig::default();
    cfg.reliable = Some(ReliableConfig::default());
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", ranks);
    let mut world: DsmWorld<u64> = DsmWorld::new(net.clone(), ranks, cfg, dir)
        .with_read_timeout(SimTime::from_millis(30))
        .with_obs(hub);
    for &l in &locs {
        world.set_initial(l, 0);
    }
    let mut sim = SimBuilder::new(seed);
    for r in 0..ranks {
        let mut node = world.node(r);
        let locs = locs.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            for iter in 1..=iters {
                ctx.advance(SimTime::from_micros(400 + 130 * r as u64));
                node.write(ctx, locs[r], iter, iter);
                for (q, &l) in locs.iter().enumerate() {
                    if q != r {
                        let _ = node.global_read_ex(ctx, l, iter, age);
                    }
                }
            }
            if r == 0 {
                // Quiescent tail: let the longest retransmit backoff chain
                // resolve before the run ends.
                ctx.advance(SimTime::from_secs(1));
            }
        });
    }
    sim.run().expect("traced run completes");
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant, chaos-tested: whatever the fault plan does
    /// to the wire — drops forcing retransmits, duplicates forcing dedup,
    /// injected delays — every traced release's stage durations sum
    /// exactly to its observed age. Conservation is checked per release
    /// inside the hub; a single leaked nanosecond shows up here.
    #[test]
    fn stage_sums_equal_observed_age_under_any_fault_plan(
        seed in 0u64..500,
        ranks in 2usize..=3,
        iters in 6u64..=12,
        age in 0u64..=4,
        loss in 0.0f64..0.25,
        dup in 0.0f64..0.15,
        delay in 0.0f64..0.20,
    ) {
        let hub = Hub::new();
        hub.enable_staleness();
        traced_run(hub.clone(), seed, ranks, iters, age, loss, dup, delay);
        let s = hub.staleness_summary();
        prop_assert_eq!(
            s.conservation_checked, s.released,
            "every traced release must be conservation-checked"
        );
        prop_assert_eq!(
            s.conservation_violations, 0,
            "stage sums must equal observed ages exactly (released {})",
            s.released
        );
        // The decomposition is complete, not just per-release: the global
        // stage histograms account for every nanosecond of observed age.
        let st = &s.stages;
        let stage_total = st.wait_ns.sum()
            + st.publish_ns.sum()
            + st.transit_ns.sum()
            + st.fault_ns.sum()
            + st.retrans_ns.sum()
            + st.queue_ns.sum()
            + st.apply_ns.sum();
        prop_assert_eq!(stage_total, s.age_ns.sum(), "aggregate conservation");
    }

    /// The byte-identity discipline (same contract PR 7 pinned for audit
    /// and PR 8 for recovery): arming the hop tracer must not perturb the
    /// run it is tracing. The rendered reports agree byte-for-byte
    /// outside the `staleness` section, for any seed and fault mix.
    #[test]
    fn tracer_on_reports_are_byte_identical_outside_staleness(
        seed in 1u64..5000,
        loss in 0.0f64..0.15,
        dup in 0.0f64..0.10,
    ) {
        let render = |traced: bool| -> String {
            let hub = Hub::new();
            if traced {
                hub.enable_staleness();
            }
            traced_run(hub.clone(), seed, 3, 8, 1, loss, dup, 0.0);
            let mut rep = RunReport::new("anatomy_det", &hub);
            if traced {
                rep.staleness = Some(hub.staleness_summary());
            }
            rep.to_json()
        };
        let on = render(true);
        let off = render(false);
        // `staleness` is the report's last field; cut both at its key and
        // the prefixes must match to the byte.
        let cut = |s: &str| {
            let at = s.rfind(",\"staleness\":").expect("report carries a staleness key");
            s[..at].to_string()
        };
        prop_assert_eq!(cut(&on), cut(&off), "the tracer perturbed the run it was tracing");
        prop_assert!(off.ends_with("\"staleness\":null}"), "{}", off);
        prop_assert!(on.contains("\"staleness\":{"), "{}", on);
    }
}

/// The fault-free anchor for the properties above: a lossless age=0 run
/// must actually block and trace (the readers outrun the staggered
/// writers), so conservation is exercised, not vacuously passed — and the
/// same seed reproduces the same anatomy byte for byte.
#[test]
fn traced_releases_are_recorded_and_deterministic() {
    let run = || {
        let hub = Hub::new();
        hub.enable_staleness();
        traced_run(hub.clone(), 11, 3, 10, 0, 0.0, 0.0, 0.0);
        hub.staleness_summary()
    };
    let s = run();
    assert!(
        s.released > 0,
        "age=0 run never blocked — anatomy is vacuous"
    );
    assert_eq!(s.conservation_checked, s.released);
    assert_eq!(s.conservation_violations, 0);
    assert!(s.flows_kept > 0, "no flow records kept for Perfetto export");
    let again = run();
    assert_eq!(
        format!("{s:?}"),
        format!("{again:?}"),
        "same seed must produce identical anatomy"
    );
}

/// Retransmit coverage for the conservation contract: find a seed whose
/// lossy run demonstrably dropped and retransmitted frames while blocked
/// reads were traced, then hold the invariant there. The seed search makes
/// the test robust to RNG stream differences across rand versions.
#[test]
fn conservation_survives_retransmitted_provenance() {
    let mut exercised = false;
    for seed in 0..50u64 {
        let hub = Hub::new();
        hub.enable_staleness();
        let net = traced_run(hub.clone(), seed, 3, 10, 1, 0.20, 0.05, 0.0);
        let s = hub.staleness_summary();
        assert_eq!(
            s.conservation_violations, 0,
            "seed {seed}: retransmitted provenance leaked the decomposition"
        );
        if net.stats().dropped > 0 && s.released > 0 {
            exercised = true;
            break;
        }
    }
    assert!(
        exercised,
        "no seed in 0..50 produced both dropped frames and traced releases"
    );
}

/// The Perfetto export carries write→apply→release flow events binding
/// the existing spans: one `ph:"s"` (writer publish), one `ph:"t"`
/// (receiver apply) and one `ph:"f"` (reader release) per kept flow, all
/// under the `staleness` category — and a tracer-off export carries none.
#[test]
fn perfetto_export_links_write_apply_release_flows() {
    let run = |traced: bool| {
        let hub = Hub::new();
        if traced {
            hub.enable_staleness();
        }
        traced_run(hub.clone(), 7, 3, 10, 1, 0.0, 0.0, 0.0);
        hub
    };

    let hub = run(true);
    let trace = hub.perfetto();
    json::validate(&trace).expect("Perfetto JSON validates");
    let count = |needle: &str| trace.matches(needle).count();
    let flows = hub.staleness_flows();
    assert!(!flows.is_empty(), "traced run kept no flow records");
    assert_eq!(
        count("\"ph\":\"s\""),
        flows.len(),
        "one flow-start per flow"
    );
    assert_eq!(count("\"ph\":\"t\""), flows.len(), "one flow-step per flow");
    assert_eq!(count("\"ph\":\"f\""), flows.len(), "one flow-end per flow");
    assert_eq!(
        count("\"cat\":\"staleness\""),
        3 * flows.len(),
        "flow events carry the staleness category"
    );
    // Flow timestamps telescope: publish ≤ apply ≤ release.
    for f in &flows {
        assert!(f.write_ns <= f.recv_ns, "{f:?}");
        assert!(f.recv_ns <= f.release_ns, "{f:?}");
    }

    let off = run(false).perfetto();
    json::validate(&off).expect("tracer-off Perfetto JSON validates");
    assert_eq!(
        off.matches("\"cat\":\"staleness\"").count(),
        0,
        "tracer-off export must carry no flow events"
    );
}

/// Golden rendering: `nscc anatomy` on a captured fig2 report (committed
/// fixture, `NSCC_STALENESS=1 NSCC_MODES=age=5 NSCC_RUNS=1
/// NSCC_GENERATIONS=8`). The first output line carries the load path, so
/// the golden file pins everything after it: conservation verdict,
/// observed-age quantiles, the ranked stage table and the top
/// location/link tables with their guilty stages.
#[test]
fn anatomy_rendering_of_a_captured_fig2_report_matches_the_golden() {
    let rep =
        nscc::analyze::Report::load(std::path::Path::new("tests/fixtures/fig2_staleness.json"))
            .expect("committed fixture parses");
    let (text, violations) = nscc::analyze::anatomy(&rep);
    assert_eq!(violations, 0, "the captured run leaked its decomposition");
    let body = text
        .split_once('\n')
        .expect("anatomy output has a header line")
        .1;
    let golden = include_str!("fixtures/fig2_anatomy.golden");
    assert_eq!(
        body, golden,
        "anatomy rendering drifted from the golden fixture; if the change \
         is intentional, regenerate tests/fixtures/fig2_anatomy.golden"
    );
    // Rendering is a pure function of the report: byte-stable on re-run.
    assert_eq!(text, nscc::analyze::anatomy(&rep).0);
}
