//! Parallel probabilistic inference with rollback: logic sampling over a
//! partitioned belief network under the three coherence disciplines.
//!
//! Run with `cargo run --release --example bayes_inference`.

use std::sync::Arc;

use nscc::bayes::{
    exact_posterior, run_parallel_inference, ParallelBayesConfig, Plan, Query, StopRule, Table2Net,
};
use nscc::core::Platform;
use nscc::dsm::Coherence;
use nscc::msg::MsgConfig;

fn main() {
    let netid = Table2Net::Hailfinder;
    let net = Arc::new(netid.build());
    let query = Query {
        node: net.len() - 1,
        evidence: vec![],
    };
    let plan = Plan::new(&net, 2, 42, &query);
    println!(
        "{}-like network: {} nodes, {:.1} edges/node, 2-way edge-cut {}",
        netid.name(),
        net.len(),
        net.edges_per_node(),
        plan.edge_cut
    );
    let exact = exact_posterior(&net, query.node, &query.evidence);
    println!(
        "exact posterior of node {}: {:?}\n",
        query.node,
        round3(&exact)
    );

    println!(
        "{:<8} {:>9} {:>8} {:>10} {:>10} {:>10}  posterior",
        "mode", "time (s)", "samples", "rollbacks", "discarded", "conv"
    );
    for mode in [
        Coherence::Synchronous,
        Coherence::FullyAsync,
        Coherence::PartialAsync { age: 0 },
        Coherence::PartialAsync { age: 10 },
        Coherence::PartialAsync { age: 30 },
    ] {
        let cfg = ParallelBayesConfig {
            stop: StopRule {
                halfwidth: 0.015,
                ..StopRule::default()
            },
            ..ParallelBayesConfig::new(mode)
        };
        let res = run_parallel_inference(
            Arc::clone(&net),
            query.clone(),
            2,
            cfg,
            Platform::paper_ethernet(2).build_network_only(11),
            MsgConfig::default(),
            11,
        )
        .expect("inference runs");
        let rollbacks: u64 = res.per_part.iter().map(|p| p.rollbacks).sum();
        let discarded: u64 = res.per_part.iter().map(|p| p.discarded).sum();
        println!(
            "{:<8} {:>9.2} {:>8} {:>10} {:>10} {:>10}  {:?}",
            mode.label(),
            res.completion.as_secs_f64(),
            res.drawn,
            rollbacks,
            discarded,
            res.converged,
            round3(&res.posterior)
        );
    }
    println!(
        "\nsync never speculates (0 rollbacks) but stalls; full async speculates \
         without bound and wastes discarded work when it strays; Global_Read \
         bounds the staleness window and keeps both costs small."
    );
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
