//! Island-model parallel GA under the four coherence disciplines the
//! paper compares: serial, synchronous, fully asynchronous, and
//! `Global_Read` partially asynchronous.
//!
//! Run with `cargo run --release --example ga_island`.

use nscc::core::{run_ga_experiment, GaExperiment};
use nscc::ga::TestFn;

fn main() {
    let func = TestFn::F1Sphere;
    let procs = 4;
    println!(
        "Island GA on {} with {procs} islands of 50 over a 10 Mbps Ethernet",
        func.name()
    );
    println!("(speedups are against a serial GA running the total population)\n");

    let exp = GaExperiment {
        generations: 120,
        runs: 3,
        ..GaExperiment::new(func, procs)
    };
    let res = run_ga_experiment(&exp).expect("experiment runs");

    println!(
        "serial baseline: {:.2} virtual s (best fitness {:.4})",
        res.serial_time.as_secs_f64(),
        res.serial_best
    );
    println!(
        "{:<8} {:>8} {:>9} {:>12} {:>10} {:>9}",
        "mode", "speedup", "time (s)", "generations", "messages", "warp"
    );
    for m in &res.modes {
        println!(
            "{:<8} {:>8.2} {:>9.2} {:>12.0} {:>10.0} {:>9.2}",
            m.label,
            m.speedup,
            m.mean_time.as_secs_f64(),
            m.mean_generations,
            m.mean_messages,
            m.mean_warp
        );
    }
    let best = res.best_partial();
    println!(
        "\nbest partially-asynchronous setting: {} at {:.2}x \
         ({:+.0}% over the best competitor)",
        best.label,
        best.speedup,
        res.improvement() * 100.0
    );
}
