//! Dynamic staleness control (the paper's §6 future work): an island GA
//! where each `Global_Read`'s age bound adapts at runtime to blocking
//! pressure and slack, compared with fixed-age settings under heavy load
//! skew.
//!
//! Run with `cargo run --release --example adaptive_age`.

use std::sync::Arc;

use std::sync::Mutex;

use nscc::dsm::{Coherence, DsmWorld};
use nscc::ga::{
    run_island, ConvergenceBoard, CostModel, IslandConfig, IslandOutcome, MigrantBatch, StopPolicy,
    TestFn, Topology,
};
use nscc::msg::MsgConfig;
use nscc::net::{EthernetBus, Network};
use nscc::sim::{SimBuilder, SimTime};

fn main() {
    println!("Island GA (rastrigin, 4 islands) under heavy load skew");
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "setting", "best", "time (s)", "blocked (s)"
    );
    for (name, mode, adaptive) in [
        ("age=2 fixed", Coherence::PartialAsync { age: 2 }, None),
        ("age=30 fixed", Coherence::PartialAsync { age: 30 }, None),
        (
            "adaptive 0..40",
            Coherence::PartialAsync { age: 2 },
            Some((0u64, 40u64)),
        ),
    ] {
        let (outs, blocked) = run(mode, adaptive);
        let best = outs.iter().map(|o| o.best).fold(f64::INFINITY, f64::min);
        let end = outs
            .iter()
            .map(|o| o.end_time)
            .max()
            .expect("outcomes nonempty");
        println!(
            "{:<16} {:>10.4} {:>12.3} {:>12.3}",
            name,
            best,
            end.as_secs_f64(),
            blocked.as_secs_f64()
        );
    }
    println!(
        "\nThe controller starts tight (age 2), widens when a stalled peer \
         makes reads block, and tightens again when slack returns — \
         tracking the best fixed setting without knowing the load in \
         advance."
    );
}

fn run(mode: Coherence, adaptive: Option<(u64, u64)>) -> (Vec<IslandOutcome>, SimTime) {
    let ranks = 4;
    let (dir, locs) = Topology::AllToAll.build_directory(ranks, 1);
    let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
        Network::new(EthernetBus::ten_mbps(1)),
        ranks,
        MsgConfig::default(),
        dir,
    );
    for &l in &locs {
        world.set_initial(l, Vec::new());
    }
    let board = ConvergenceBoard::new(ranks);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let mut sim = SimBuilder::new(1);
    for r in 0..ranks {
        let node = world.node(r);
        let locs = locs.clone();
        let board = board.clone();
        let outcomes = Arc::clone(&outcomes);
        let cfg = IslandConfig {
            cost: CostModel {
                hiccup_rate_per_sec: 2.0,
                hiccup_stall: SimTime::from_millis(250),
                ..CostModel::default()
            },
            adaptive,
            ..IslandConfig::paper(TestFn::F6Rastrigin, mode, StopPolicy::FixedGenerations(150))
        };
        sim.spawn(format!("island{r}"), move |ctx| {
            let out = run_island(ctx, node, &locs, &cfg, &board);
            outcomes.lock().expect("lock").push(out);
        });
    }
    sim.run().expect("simulation runs");
    let outs = outcomes.lock().expect("lock").clone();
    (outs, world.total_stats().block_time)
}
