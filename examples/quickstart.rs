//! Quickstart: the `Global_Read` primitive in thirty lines, plus the
//! paper's Figure 1 belief network with exact and sampled inference.
//!
//! Run with `cargo run --example quickstart`. The `Global_Read` demo is
//! fully instrumented: it prints a per-process utilization summary and
//! exports `quickstart_trace.json`, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.

use nscc::bayes::{
    exact_posterior, fig1, figure1, sequential_inference, BayesCost, Query, StopRule,
};
use nscc::dsm::{Directory, DsmWorld};
use nscc::msg::MsgConfig;
use nscc::net::{EthernetBus, Network};
use nscc::obs::Hub;
use nscc::sim::{SimBuilder, SimTime};

fn main() {
    global_read_demo();
    figure1_demo();
}

/// A fast reader throttled by `Global_Read` to at most 2 iterations of
/// staleness behind a slow writer, over a simulated 10 Mbps Ethernet.
fn global_read_demo() {
    println!("-- Global_Read demo --");
    let hub = Hub::new();
    let net = Network::new(EthernetBus::ten_mbps(1));
    net.attach_obs(hub.clone());
    let mut dir = Directory::new();
    let loc = dir.add("shared", 0, [1]);
    let mut world: DsmWorld<u64> =
        DsmWorld::new(net, 2, MsgConfig::default(), dir).with_obs(hub.clone());
    world.set_initial(loc, 0);

    let mut writer = world.node(0);
    let mut reader = world.node(1);
    let mut sim = SimBuilder::new(1);
    sim.attach_obs(hub.clone());
    sim.spawn("writer", move |ctx| {
        for iter in 1..=10u64 {
            ctx.advance(SimTime::from_millis(20)); // slow compute
            writer.write(ctx, loc, iter * iter, iter);
        }
    });
    sim.spawn("reader", move |ctx| {
        for iter in 1..=10u64 {
            ctx.advance(SimTime::from_millis(1)); // fast compute
            let (age, value) = reader.global_read(ctx, loc, iter, 2);
            println!(
                "  t={:<12} reader iter {iter:>2} sees value {value:>3} from writer iter {age} \
                 (staleness {})",
                format!("{}", ctx.now()),
                iter - age.min(iter)
            );
            assert!(age + 2 >= iter, "staleness bound violated");
        }
    });
    let report = sim.run().expect("simulation runs");
    println!(
        "  done at t={} — the reader was throttled to the writer's pace",
        report.end_time
    );
    print!("{}", hub.trace().summary(&[0, 1]));
    match std::fs::write("quickstart_trace.json", hub.perfetto()) {
        Ok(()) => println!("  trace exported to quickstart_trace.json (open in ui.perfetto.dev)\n"),
        Err(e) => println!("  trace export failed: {e}\n"),
    }
}

/// Figure 1's medical-diagnosis network: p(A | D=true) exactly and by
/// logic sampling with the paper's 90% CI ± 0.01 stopping rule.
fn figure1_demo() {
    println!("-- Figure 1 belief network --");
    let net = figure1();
    let query = Query {
        node: fig1::A,
        evidence: vec![(fig1::D, 1)],
    };
    let exact = exact_posterior(&net, query.node, &query.evidence);
    let sampled = sequential_inference(
        &net,
        &query,
        &StopRule::default(),
        &BayesCost::deterministic(),
        7,
        10_000_000,
    );
    println!(
        "  p(A | D=true): exact = {:.4}, sampled = {:.4}",
        exact[1], sampled.posterior[1]
    );
    println!(
        "  {} samples ({} accepted), {:.2} virtual seconds on one 77 MHz node",
        sampled.samples,
        sampled.accepted,
        sampled.time.as_secs_f64()
    );
    assert!((exact[1] - sampled.posterior[1]).abs() < 0.03);
}
