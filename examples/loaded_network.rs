//! Flooding versus throttling on a loaded Ethernet: reproduce the
//! feedback-loop pathology (§3.1) that motivates `Global_Read`, and show
//! the warp metric detecting it.
//!
//! Two processes exchange updates over the shared 10 Mbps bus while a
//! loader pair injects background traffic. The fully asynchronous pair
//! sends at its own (fast) pace; the `Global_Read` pair is throttled by
//! the staleness bound. Watch queueing delay and warp.
//!
//! Run with `cargo run --release --example loaded_network`.

use nscc::dsm::{Coherence, Directory, DsmWorld};
use nscc::msg::MsgConfig;
use nscc::net::{spawn_loaders, EthernetBus, LoaderConfig, Network, NodeId, WarpMeter};
use nscc::sim::{SimBuilder, SimTime};

fn main() {
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "mode", "load Mbps", "iters/s", "delay (ms)", "warp p95", "blocked s"
    );
    for &load in &[0.0, 4.0, 8.0] {
        for mode in [Coherence::FullyAsync, Coherence::PartialAsync { age: 3 }] {
            run_pair(mode, load);
        }
    }
    println!(
        "\nUnder load, the asynchronous pair floods the bus: delays and warp \
         explode while useful progress stalls. The Global_Read pair throttles \
         itself (reader blocks, so its own sends slow down) and keeps the \
         network stable — the paper's program-level flow control."
    );
}

fn run_pair(mode: Coherence, load_mbps: f64) {
    let net = Network::new(EthernetBus::ten_mbps(3));
    let warp = WarpMeter::new();
    let mut dir = Directory::new();
    let locs = dir.add_per_rank("v", 2);
    let mut world: DsmWorld<Vec<u8>> =
        DsmWorld::new(net.clone(), 2, MsgConfig::default(), dir).with_warp(warp.clone());
    for &l in &locs {
        world.set_initial(l, vec![0; 256]);
    }

    let mut sim = SimBuilder::new(3);
    if load_mbps > 0.0 {
        spawn_loaders(
            &mut sim,
            &net,
            &LoaderConfig::mbps(load_mbps, NodeId(2), NodeId(3)),
        );
    }
    let horizon = SimTime::from_secs(5);
    let iters_done = std::sync::Arc::new(std::sync::Mutex::new([0u64; 2]));
    for rank in 0..2 {
        let mut node = world.node(rank);
        let locs = locs.clone();
        let iters_done = std::sync::Arc::clone(&iters_done);
        // Rank 0 computes fast, rank 1 slowly: the classic skewed pair.
        let compute = SimTime::from_millis(if rank == 0 { 2 } else { 8 });
        sim.spawn(format!("peer{rank}"), move |ctx| {
            let mut iter = 0u64;
            while ctx.now() < horizon {
                iter += 1;
                ctx.advance(compute);
                node.write(ctx, locs[rank], vec![iter as u8; 256], iter);
                let _ = node.read(ctx, locs[1 - rank], iter, mode);
                iters_done.lock().expect("lock")[rank] = iter;
            }
            // Unblock a potentially waiting peer before leaving.
            node.retire(ctx, locs[rank], Vec::new());
        });
    }
    sim.run().expect("simulation runs");
    let iters = iters_done.lock().expect("lock");
    let total_iters = iters[0] + iters[1];
    let stats = net.stats();
    let dsm = world.total_stats();
    println!(
        "{:<10} {:>10} {:>12.1} {:>12.2} {:>10.2} {:>10.2}",
        mode.label(),
        load_mbps,
        total_iters as f64 / horizon.as_secs_f64(),
        stats.mean_delay().as_secs_f64() * 1e3,
        warp.percentile(95.0),
        dsm.block_time.as_secs_f64(),
    );
}
