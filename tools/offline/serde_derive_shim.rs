//! Offline stand-in for `serde_derive` (see tools/offline/README.md).
//!
//! A `#[derive(Serialize)]` that handles exactly the shapes this workspace
//! uses — non-generic structs (named, tuple, unit) and enums (unit,
//! newtype, tuple, struct variants), plus `#[serde(rename = "…")]` on
//! fields and `#[serde(untagged)]` on enums of newtype variants. Anything
//! else panics loudly at expansion time rather than miscompiling.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let item_attrs = collect_attrs(&tokens, &mut i);
    let untagged = item_attrs.iter().any(|a| a.contains("untagged"));
    skip_visibility(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let (impl_generics, ty_generics) = parse_generics(&tokens, &mut i, &name);

    let body = match kind.as_str() {
        "struct" => gen_struct(&name, tokens.get(i)),
        "enum" => gen_enum(&name, tokens.get(i), untagged),
        other => panic!("offline serde derive: unsupported item kind `{other}`"),
    };

    let out = format!(
        "impl{impl_generics} serde::ser::Serialize for {name}{ty_generics} {{\n\
             fn serialize<__S: serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> std::result::Result<__S::Ok, __S::Error> {{\n\
                 #[allow(unused_imports)]\n\
                 use serde::ser::{{SerializeStruct as _, SerializeStructVariant as _,\n\
                     SerializeTupleStruct as _, SerializeTupleVariant as _}};\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("offline serde derive: generated code failed to parse")
}

/// Parse an optional `<'a, T, U: Clone>` generics group after the type
/// name. Returns `(impl_generics, ty_generics)`: the impl side carries any
/// declared bounds plus `serde::ser::Serialize` on every type parameter;
/// the type side is just the parameter names. Const parameters and
/// defaults are rejected — nothing in the workspace derives on them.
fn parse_generics(tokens: &[TokenTree], i: &mut usize, name: &str) -> (String, String) {
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (String::new(), String::new());
    }
    *i += 1;
    let mut impl_side = Vec::new();
    let mut ty_side = Vec::new();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                *i += 1;
                let lt = format!("'{}", expect_ident(tokens, i));
                // Lifetime bounds (`'a: 'b`) would need the same skip as
                // type bounds; none exist in the workspace.
                impl_side.push(lt.clone());
                ty_side.push(lt);
            }
            Some(TokenTree::Ident(_)) => {
                let param = expect_ident(tokens, i);
                let mut bounds = String::new();
                if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    *i += 1;
                    let mut depth = 0i32;
                    while let Some(tt) = tokens.get(*i) {
                        match tt {
                            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                            TokenTree::Punct(p)
                                if depth == 0 && (p.as_char() == ',' || p.as_char() == '>') =>
                            {
                                break;
                            }
                            _ => {}
                        }
                        bounds += &tt.to_string();
                        bounds.push(' ');
                        *i += 1;
                    }
                    bounds = format!("{} + ", bounds.trim());
                }
                impl_side.push(format!("{param}: {bounds}serde::ser::Serialize"));
                ty_side.push(param);
            }
            other => panic!("offline serde derive: `{name}` has unsupported generics ({other:?})"),
        }
    }
    (
        format!("<{}>", impl_side.join(", ")),
        format!("<{}>", ty_side.join(", ")),
    )
}

/// Collect the string forms of leading `#[…]` attribute groups.
fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut attrs = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            attrs.push(g.to_string());
            *i += 2;
        } else {
            break;
        }
    }
    attrs
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("offline serde derive: expected identifier, got {other:?}"),
    }
}

/// `#[serde(rename = "x")]` → `Some("x")`, scanning a list of attr strings.
fn rename_of(attrs: &[String]) -> Option<String> {
    for a in attrs {
        if let Some(pos) = a.find("rename") {
            let rest = &a[pos..];
            let q1 = rest.find('"')?;
            let q2 = rest[q1 + 1..].find('"')?;
            return Some(rest[q1 + 1..q1 + 1 + q2].to_string());
        }
    }
    None
}

/// Split a brace/paren body on top-level commas (angle-bracket aware, so
/// `BTreeMap<String, Vec<i32>>` stays one chunk).
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Named field chunk → `(field_ident, serialized_key)`.
fn parse_named_field(chunk: &[TokenTree]) -> (String, String) {
    let mut i = 0;
    let attrs = collect_attrs(chunk, &mut i);
    skip_visibility(chunk, &mut i);
    let field = expect_ident(chunk, &mut i);
    match chunk.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
        other => panic!("offline serde derive: expected `:` after field, got {other:?}"),
    }
    let key = rename_of(&attrs).unwrap_or_else(|| field.clone());
    (field, key)
}

fn gen_struct(name: &str, body: Option<&TokenTree>) -> String {
    match body {
        // Unit struct: `struct S;`
        None | Some(TokenTree::Punct(_)) => {
            format!("__serializer.serialize_unit_struct(\"{name}\")")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields: Vec<(String, String)> = split_top_commas(g.stream())
                .iter()
                .map(|c| parse_named_field(c))
                .collect();
            let mut s = format!(
                "let mut __state = __serializer.serialize_struct(\"{name}\", {})?;\n",
                fields.len()
            );
            for (field, key) in &fields {
                s += &format!("__state.serialize_field(\"{key}\", &self.{field})?;\n");
            }
            s += "__state.end()";
            s
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_commas(g.stream()).len();
            match n {
                0 => format!("__serializer.serialize_unit_struct(\"{name}\")"),
                1 => format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)"),
                _ => {
                    let mut s = format!(
                        "let mut __state = __serializer.serialize_tuple_struct(\"{name}\", {n})?;\n"
                    );
                    for i in 0..n {
                        s += &format!("__state.serialize_field(&self.{i})?;\n");
                    }
                    s += "__state.end()";
                    s
                }
            }
        }
        other => panic!("offline serde derive: unexpected struct body {other:?}"),
    }
}

fn gen_enum(name: &str, body: Option<&TokenTree>, untagged: bool) -> String {
    let g = match body {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("offline serde derive: unexpected enum body {other:?}"),
    };
    let mut arms = String::new();
    for (idx, chunk) in split_top_commas(g.stream()).iter().enumerate() {
        let mut i = 0;
        let attrs = collect_attrs(chunk, &mut i);
        let variant = expect_ident(chunk, &mut i);
        let vname = rename_of(&attrs).unwrap_or_else(|| variant.clone());
        let arm = match chunk.get(i) {
            // Unit variant.
            None => {
                if untagged {
                    panic!("offline serde derive: untagged unit variant unsupported");
                }
                format!(
                    "{name}::{variant} => __serializer.serialize_unit_variant(\
                         \"{name}\", {idx}u32, \"{vname}\"),\n"
                )
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                let n = split_top_commas(vg.stream()).len();
                let binds: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                let pat = binds.join(", ");
                if n == 1 {
                    if untagged {
                        format!(
                            "{name}::{variant}({pat}) => \
                                 serde::ser::Serialize::serialize({pat}, __serializer),\n"
                        )
                    } else {
                        format!(
                            "{name}::{variant}({pat}) => __serializer.\
                                 serialize_newtype_variant(\"{name}\", {idx}u32, \"{vname}\", {pat}),\n"
                        )
                    }
                } else {
                    if untagged {
                        panic!("offline serde derive: untagged tuple variant unsupported");
                    }
                    let mut s = format!(
                        "{name}::{variant}({pat}) => {{\n\
                             let mut __state = __serializer.serialize_tuple_variant(\
                                 \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                    );
                    for b in &binds {
                        s += &format!("__state.serialize_field({b})?;\n");
                    }
                    s += "__state.end()\n},\n";
                    s
                }
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                if untagged {
                    panic!("offline serde derive: untagged struct variant unsupported");
                }
                let fields: Vec<(String, String)> = split_top_commas(vg.stream())
                    .iter()
                    .map(|c| parse_named_field(c))
                    .collect();
                let pat: Vec<String> = fields.iter().map(|(f, _)| f.clone()).collect();
                let mut s = format!(
                    "{name}::{variant} {{ {} }} => {{\n\
                         let mut __state = __serializer.serialize_struct_variant(\
                             \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    pat.join(", "),
                    fields.len()
                );
                for (field, key) in &fields {
                    s += &format!("__state.serialize_field(\"{key}\", {field})?;\n");
                }
                s += "__state.end()\n},\n";
                s
            }
            other => panic!("offline serde derive: unexpected variant body {other:?}"),
        };
        arms += &arm;
    }
    format!("match self {{\n{arms}}}")
}
