//! Offline stand-in for the `parking_lot` crate (see tools/offline/README.md).
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API surface so
//! the workspace can be type-checked and unit-tested in a container with an
//! empty cargo registry. Only the API actually used by this workspace is
//! provided.

use std::fmt;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}
