//! Minimal offline stand-in for the `proptest` crate, good enough to
//! compile and smoke-run this repo's property tests without the real
//! dependency tree. Instead of random exploration, each property runs
//! three deterministic samples per axis: the low end, the midpoint and
//! the high end of every range strategy. That exercises the property's
//! code path and boundary values; the real proptest (in CI / tier-1)
//! does the actual searching.
//!
//! Supported surface (all this repo uses):
//! - `proptest! { #![proptest_config(...)] #[test] fn name(x in range, ...) { .. } }`
//! - `Range`/`RangeInclusive` strategies over common numeric types
//! - `prop_assert!`, `prop_assert_eq!`, `ProptestConfig::with_cases`

/// Configuration accepted (and ignored) for API compatibility.
pub struct ProptestConfig {
    /// Number of cases the real proptest would run.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A deterministic three-point sampler standing in for `Strategy`.
pub trait Sample {
    type Value;
    /// `which` ∈ {0, 1, 2}: low, midpoint, high.
    fn pick(&self, which: usize) -> Self::Value;
}

macro_rules! int_sample {
    ($($t:ty),*) => {$(
        impl Sample for core::ops::Range<$t> {
            type Value = $t;
            fn pick(&self, which: usize) -> $t {
                let hi = self.end - 1;
                match which {
                    0 => self.start,
                    1 => self.start + (hi - self.start) / 2,
                    _ => hi,
                }
            }
        }
        impl Sample for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, which: usize) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                match which {
                    0 => lo,
                    1 => lo + (hi - lo) / 2,
                    _ => hi,
                }
            }
        }
    )*};
}
int_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for core::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, which: usize) -> f64 {
        match which {
            0 => self.start,
            1 => 0.5 * (self.start + self.end),
            _ => self.start + 0.99 * (self.end - self.start),
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let _ = $cfg;
                for __which in 0..3usize {
                    $(let $arg = $crate::Sample::pick(&($strat), __which);)*
                    { $body }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Sample};
}
