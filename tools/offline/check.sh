#!/usr/bin/env bash
# Offline build + test of the NSCC workspace in a container with no cargo
# registry. External deps are replaced by the API-compatible shims in this
# directory; workspace crates are compiled with plain rustc in dependency
# order, and each crate's unit tests are built and run.
#
# This is NOT the real tier-1 build (`cargo build --release && cargo test
# -q`) — criterion benches are skipped, proptest-based integration tests
# run against a deterministic 3-samples-per-axis shim instead of a random
# search, and the rand shim's streams differ from real rand, so anything
# asserting exact golden values from RNG draws cannot be checked here.
# Everything else — full typecheck, borrowck, unit tests including the
# serde-driven JSON reports — runs for real.
#
# Usage: tools/offline/check.sh [--no-test] [crate ...]
#   With crate names, only those crates (plus everything they need) are
#   rebuilt; with none, the whole workspace is processed.

set -u
cd "$(dirname "$0")/../.."
OUT="${NSCC_OFFLINE_OUT:-/tmp/nscc-offline}"
mkdir -p "$OUT"
RUSTC="rustc --edition 2021 -L $OUT"
RUN_TESTS=1
ONLY=()
for arg in "$@"; do
    case "$arg" in
        --no-test) RUN_TESTS=0 ;;
        *) ONLY+=("$arg") ;;
    esac
done

want() { # crate selected (or no filter)?
    [ ${#ONLY[@]} -eq 0 ] && return 0
    for o in "${ONLY[@]}"; do [ "$o" = "$1" ] && return 0; done
    return 1
}

fail=0

step() {
    echo "--- $*" >&2
}

# --- stubs (always built; cheap) ---
step stub serde_derive
$RUSTC --crate-type proc-macro --crate-name serde_derive \
    tools/offline/serde_derive_shim.rs --out-dir "$OUT" || exit 1
step stub serde
$RUSTC --crate-type rlib --crate-name serde tools/offline/serde_shim.rs \
    --extern serde_derive="$OUT/libserde_derive.so" --out-dir "$OUT" || exit 1
step stub parking_lot
$RUSTC --crate-type rlib --crate-name parking_lot \
    tools/offline/parking_lot_shim.rs --out-dir "$OUT" || exit 1
step stub crossbeam
$RUSTC --crate-type rlib --crate-name crossbeam \
    tools/offline/crossbeam_shim.rs --out-dir "$OUT" || exit 1
step stub rand
$RUSTC --crate-type rlib --crate-name rand tools/offline/rand_shim.rs \
    --out-dir "$OUT" || exit 1
step stub proptest
$RUSTC --crate-type rlib --crate-name proptest tools/offline/proptest_shim.rs \
    --out-dir "$OUT" || exit 1

EXT_SERDE="--extern serde=$OUT/libserde.rlib"
EXT_PL="--extern parking_lot=$OUT/libparking_lot.rlib"
EXT_CB="--extern crossbeam=$OUT/libcrossbeam.rlib"
EXT_RAND="--extern rand=$OUT/librand.rlib"

# build <crate> <src> <externs...>: rlib + unit-test binary (run).
build() {
    local crate="$1" src="$2"
    shift 2
    want "$crate" || return 0
    step "build $crate"
    $RUSTC --crate-type rlib --crate-name "$crate" "$src" "$@" \
        --out-dir "$OUT" || { fail=1; return 1; }
    if [ "$RUN_TESTS" = 1 ]; then
        step "test $crate"
        $RUSTC --test --crate-name "${crate}_unit" "$src" "$@" \
            -o "$OUT/test_$crate" || { fail=1; return 1; }
        "$OUT/test_$crate" -q || fail=1
    fi
}

# itest <crate> <src> <externs...>: an integration-test file, built and run.
itest() {
    local crate="$1" src="$2"
    shift 2
    want "$crate" || return 0
    [ "$RUN_TESTS" = 1 ] || return 0
    step "itest $crate $(basename "$src")"
    local name
    name="$(basename "$src" .rs)"
    $RUSTC --test --crate-name "${crate}_it_${name}" "$src" "$@" \
        -o "$OUT/itest_${crate}_${name}" || { fail=1; return 1; }
    "$OUT/itest_${crate}_${name}" -q || fail=1
}

# binary <name> <src> <externs...>: plain executable, not run.
binary() {
    local name="$1" src="$2"
    shift 2
    step "bin $name"
    $RUSTC --crate-name "${name//-/_}" "$src" "$@" -o "$OUT/bin_$name" \
        || fail=1
}

E_CKPT="--extern nscc_ckpt=$OUT/libnscc_ckpt.rlib"
E_OBS="--extern nscc_obs=$OUT/libnscc_obs.rlib"
E_AUDIT="--extern nscc_audit=$OUT/libnscc_audit.rlib"
E_SIM="--extern nscc_sim=$OUT/libnscc_sim.rlib"
E_NET="--extern nscc_net=$OUT/libnscc_net.rlib"
E_FAULTS="--extern nscc_faults=$OUT/libnscc_faults.rlib"
E_MSG="--extern nscc_msg=$OUT/libnscc_msg.rlib"
E_DSM="--extern nscc_dsm=$OUT/libnscc_dsm.rlib"
E_PART="--extern nscc_partition=$OUT/libnscc_partition.rlib"
E_GA="--extern nscc_ga=$OUT/libnscc_ga.rlib"
E_BAYES="--extern nscc_bayes=$OUT/libnscc_bayes.rlib"
E_CORE="--extern nscc_core=$OUT/libnscc_core.rlib"
E_BENCH="--extern nscc_bench=$OUT/libnscc_bench.rlib"
E_HUNT="--extern nscc_hunt=$OUT/libnscc_hunt.rlib"
E_ANALYZE="--extern nscc_analyze=$OUT/libnscc_analyze.rlib"

build nscc_ckpt crates/ckpt/src/lib.rs
build nscc_obs crates/obs/src/lib.rs $EXT_PL $EXT_SERDE $E_CKPT
build nscc_audit crates/audit/src/lib.rs $EXT_PL $EXT_SERDE $E_OBS
build nscc_sim crates/sim/src/lib.rs $EXT_CB $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS
build nscc_net crates/net/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS $E_SIM
build nscc_faults crates/faults/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_SIM $E_NET
build nscc_msg crates/msg/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS $E_SIM $E_NET $E_FAULTS
build nscc_dsm crates/dsm/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS $E_SIM $E_NET $E_MSG
itest nscc_dsm crates/dsm/tests/global_read.rs $EXT_PL $E_DSM $E_MSG $E_NET $E_SIM
itest nscc_dsm crates/dsm/tests/resilience.rs $E_DSM $E_MSG $E_NET $E_SIM
build nscc_partition crates/partition/src/lib.rs $EXT_RAND
build nscc_ga crates/ga/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_SIM $E_NET $E_MSG $E_DSM
build nscc_bayes crates/bayes/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS $E_SIM $E_NET $E_MSG $E_DSM $E_PART
build nscc_core crates/core/src/lib.rs $EXT_PL $EXT_RAND $EXT_SERDE $E_CKPT $E_OBS $E_AUDIT $E_SIM $E_NET $E_FAULTS $E_MSG $E_DSM $E_PART $E_GA $E_BAYES
build nscc_bench crates/bench/src/lib.rs $EXT_PL $EXT_RAND $E_CKPT $E_OBS $E_AUDIT $E_SIM $E_NET $E_FAULTS $E_MSG $E_DSM $E_PART $E_GA $E_BAYES $E_CORE
build nscc_hunt crates/hunt/src/lib.rs $EXT_PL $EXT_RAND $E_CKPT $E_OBS $E_AUDIT $E_SIM $E_NET $E_FAULTS $E_MSG $E_DSM $E_PART $E_GA $E_BAYES $E_CORE $E_BENCH
build nscc_analyze crates/analyze/src/lib.rs $E_CKPT
build nscc src/lib.rs $EXT_RAND $E_CKPT $E_OBS $E_AUDIT $E_SIM $E_NET $E_FAULTS $E_MSG $E_DSM $E_PART $E_GA $E_BAYES $E_CORE $E_ANALYZE
# Root integration tests (proptest-based ones run against the shim: three
# deterministic samples per axis instead of a random search).
E_NSCC="--extern nscc=$OUT/libnscc.rlib"
E_PROPTEST="--extern proptest=$OUT/libproptest.rlib"
for t in tests/*.rs; do
    itest nscc "$t" $E_NSCC $E_PROPTEST $EXT_RAND
done

ALL="$EXT_PL $EXT_RAND $EXT_SERDE $EXT_CB $E_CKPT $E_OBS $E_AUDIT $E_SIM $E_NET $E_FAULTS $E_MSG $E_DSM $E_PART $E_GA $E_BAYES $E_CORE $E_BENCH"
if want nscc_bench; then
    for b in crates/bench/src/bin/*.rs; do
        binary "bench-$(basename "$b" .rs)" "$b" $ALL
    done
fi
if want nscc_hunt; then
    binary nscc-hunt crates/hunt/src/bin/nscc-hunt.rs $ALL $E_HUNT
fi
if want nscc_analyze; then
    binary nscc-cli crates/analyze/src/bin/nscc.rs $E_ANALYZE $E_CKPT
fi

if [ "$fail" = 0 ]; then
    echo "offline check OK"
else
    echo "offline check FAILED" >&2
fi
exit $fail
