//! Offline stand-in for the `crossbeam` crate (see tools/offline/README.md).
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by the
//! workspace; wrap `std::sync::mpsc` behind that surface.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}
