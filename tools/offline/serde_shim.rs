//! Offline stand-in for `serde`'s serialization half (see
//! tools/offline/README.md).
//!
//! Mirrors the `serde::ser` API surface this workspace uses — the
//! `Serialize`/`Serializer` traits, the seven compound traits,
//! `Impossible`, `ser::Error` — with `Serialize` impls for the std types
//! that appear in reports. The real derive is provided by the sibling
//! `serde_derive_shim` proc macro, re-exported here like real serde does.

extern crate serde_derive;

pub use serde_derive::Serialize;

pub use ser::{Serialize, Serializer};

pub mod ser {
    use std::fmt::Display;
    use std::marker::PhantomData;

    pub trait Error: Sized + std::error::Error {
        fn custom<T: Display>(msg: T) -> Self;
    }

    pub trait Serialize {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T)
            -> Result<Self::Ok, Self::Error>;
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;

        fn serialize_i128(self, _v: i128) -> Result<Self::Ok, Self::Error> {
            Err(Error::custom("i128 is not supported"))
        }
        fn serialize_u128(self, _v: u128) -> Result<Self::Ok, Self::Error> {
            Err(Error::custom("u128 is not supported"))
        }
        fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
            self.serialize_str(&value.to_string())
        }
        fn is_human_readable(&self) -> bool {
            true
        }
    }

    pub trait SerializeSeq {
        type Ok;
        type Error: Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTuple {
        type Ok;
        type Error: Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTupleStruct {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeTupleVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    pub trait SerializeMap {
        type Ok;
        type Error: Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T)
            -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;

        fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
            &mut self,
            key: &K,
            value: &V,
        ) -> Result<(), Self::Error> {
            self.serialize_key(key)?;
            self.serialize_value(value)
        }
    }

    pub trait SerializeStruct {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;

        fn skip_field(&mut self, _key: &'static str) -> Result<(), Self::Error> {
            Ok(())
        }
    }

    pub trait SerializeStructVariant {
        type Ok;
        type Error: Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Uninhabitable placeholder for unsupported compound types.
    pub struct Impossible<Ok, E> {
        never: Never,
        _marker: PhantomData<(Ok, E)>,
    }

    enum Never {}

    macro_rules! impossible {
        ($($trait:ident { $($method:ident($($arg:ty),*));+ })+) => {
            $(
                impl<Ok, E: Error> $trait for Impossible<Ok, E> {
                    type Ok = Ok;
                    type Error = E;
                    $(
                        fn $method<T: Serialize + ?Sized>(
                            &mut self,
                            $(_: $arg,)*
                            _: &T,
                        ) -> Result<(), E> {
                            match self.never {}
                        }
                    )+
                    fn end(self) -> Result<Ok, E> {
                        match self.never {}
                    }
                }
            )+
        };
    }

    impossible! {
        SerializeSeq { serialize_element() }
        SerializeTuple { serialize_element() }
        SerializeTupleStruct { serialize_field() }
        SerializeTupleVariant { serialize_field() }
        SerializeStruct { serialize_field(&'static str) }
        SerializeStructVariant { serialize_field(&'static str) }
    }

    impl<Ok, E: Error> SerializeMap for Impossible<Ok, E> {
        type Ok = Ok;
        type Error = E;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), E> {
            match self.never {}
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, _: &T) -> Result<(), E> {
            match self.never {}
        }
        fn end(self) -> Result<Ok, E> {
            match self.never {}
        }
    }

    // ---- Serialize impls for std types used in this workspace ----

    macro_rules! primitive {
        ($($ty:ty => $method:ident),+) => {
            $(
                impl Serialize for $ty {
                    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                        s.$method(*self)
                    }
                }
            )+
        };
    }

    primitive!(
        bool => serialize_bool,
        i8 => serialize_i8,
        i16 => serialize_i16,
        i32 => serialize_i32,
        i64 => serialize_i64,
        u8 => serialize_u8,
        u16 => serialize_u16,
        u32 => serialize_u32,
        u64 => serialize_u64,
        f32 => serialize_f32,
        f64 => serialize_f64,
        char => serialize_char
    );

    impl Serialize for isize {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_i64(*self as i64)
        }
    }

    impl Serialize for usize {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_u64(*self as u64)
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(self)
        }
    }

    impl Serialize for () {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_unit()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &mut T {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<'a, T: Serialize + ToOwned + ?Sized> Serialize for std::borrow::Cow<'a, T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(s)
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Some(v) => s.serialize_some(v),
                None => s.serialize_none(),
            }
        }
    }

    impl<T: Serialize> Serialize for [T] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut seq = s.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }

    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            self.as_slice().serialize(s)
        }
    }

    impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut seq = s.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }

    macro_rules! count {
        ($a:ident) => { 1 };
        ($a:ident $b:ident) => { 2 };
        ($a:ident $b:ident $c:ident) => { 3 };
        ($a:ident $b:ident $c:ident $d:ident) => { 4 };
    }

    macro_rules! tuple {
        ($(($($idx:tt $ty:ident),+))+) => {
            $(
                impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
                    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                        let mut tup = s.serialize_tuple(count!($($ty)+))?;
                        $(tup.serialize_element(&self.$idx)?;)+
                        tup.end()
                    }
                }
            )+
        };
    }

    tuple!(
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    );

    impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut map = s.serialize_map(Some(self.len()))?;
            for (k, v) in self {
                map.serialize_entry(k, v)?;
            }
            map.end()
        }
    }

    impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            let mut map = s.serialize_map(Some(self.len()))?;
            for (k, v) in self {
                map.serialize_entry(k, v)?;
            }
            map.end()
        }
    }
}
