//! Offline stand-in for the `rand` crate (see tools/offline/README.md).
//!
//! A SplitMix64-backed `StdRng` behind rand's trait names. The *statistics*
//! match rand closely enough for the workspace's tolerance-based tests; the
//! exact streams of course do not, so golden values derived from real
//! `rand::StdRng` cannot be checked here (the workspace has none).

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling of a "standard" value (rand's `Standard` distribution).
pub trait Standard01: Sized {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std01_int {
    ($($ty:ty),+) => {
        $(
            impl Standard01 for $ty {
                fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

std01_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard01 for bool {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard01 for f64 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1), like rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($ty:ty),+) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every value is fair game.
                        return rng.next_u64() as $ty;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }
        )+
    };
}

range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample01(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample01(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample01(rng) * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard01>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample01(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample01(self) < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, decent equidistribution, plenty for simulations.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}
