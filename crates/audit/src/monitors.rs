//! The seven standard invariant monitors.
//!
//! Each monitor audits one clause of the non-strict coherence contract.
//! They are deliberately conservative: a monitor only flags conditions
//! that are impossible under a correct runtime, never conditions that are
//! merely unusual (graceful degradation, retirement sentinels and
//! Time-Warp corrections are all modeled explicitly).

use std::collections::{HashMap, HashSet};

use nscc_obs::ObsEvent;

use crate::{Monitor, Violation};

/// Checks the paper's core promise on every released read: a `ReadDone`
/// with a finite requested bound must deliver `staleness ≤ requested`.
///
/// `ReadDegraded` events are exempt — degradation is the runtime
/// *intentionally* exceeding the bound after a timeout, and is reported
/// through its own channel.
#[derive(Debug, Default)]
pub struct StalenessMonitor {
    checked: u64,
}

impl Monitor for StalenessMonitor {
    fn name(&self) -> &'static str {
        "staleness"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        if let ObsEvent::ReadDone {
            t_ns,
            rank,
            loc,
            requested,
            staleness,
            ..
        } = *ev
        {
            if requested == u64::MAX {
                return; // relaxed read: no bound to check
            }
            self.checked += 1;
            if staleness > requested {
                out.push(Violation {
                    monitor: self.name(),
                    t_ns,
                    rank,
                    detail: format!(
                        "read of loc {loc} delivered staleness {staleness} > requested bound {requested}"
                    ),
                });
            }
        }
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks that per-location write generations never move backwards
/// without an announced cause.
///
/// Watermark rules: a `Write{rank, loc, age}` must satisfy
/// `age ≥ watermark(rank, loc)`; `Restore{rank, to_iter}` lowers every
/// watermark of that rank to `to_iter` (re-execution legitimately
/// re-publishes the rolled-back range); `AntiMessage{rank, loc, age}`
/// lowers that location's watermark to `age − 1` (the Time-Warp
/// correction it announces re-publishes at `age`). Writes tagged
/// `u64::MAX` (the retirement sentinel) are skipped.
#[derive(Debug, Default)]
pub struct MonotonicityMonitor {
    checked: u64,
    /// Highest un-retracted write age per (rank, loc).
    watermark: HashMap<(u32, u32), u64>,
}

impl Monitor for MonotonicityMonitor {
    fn name(&self) -> &'static str {
        "monotonicity"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        match *ev {
            ObsEvent::Write {
                t_ns,
                rank,
                loc,
                age,
            } => {
                if age == u64::MAX {
                    return; // retirement sentinel, not a generation
                }
                self.checked += 1;
                let w = self.watermark.entry((rank, loc)).or_insert(age);
                if age < *w {
                    out.push(Violation {
                        monitor: "monotonicity",
                        t_ns,
                        rank,
                        detail: format!(
                            "write of loc {loc} at age {age} regressed below watermark {w} \
                             with no restore or anti-message"
                        ),
                    });
                } else {
                    *w = age;
                }
            }
            ObsEvent::Restore { rank, to_iter, .. } => {
                for (key, w) in self.watermark.iter_mut() {
                    if key.0 == rank && *w > to_iter {
                        *w = to_iter;
                    }
                }
            }
            ObsEvent::AntiMessage { rank, loc, age, .. } => {
                if let Some(w) = self.watermark.get_mut(&(rank, loc)) {
                    *w = (*w).min(age.saturating_sub(1));
                }
            }
            _ => {}
        }
    }

    fn on_run_boundary(&mut self) {
        self.watermark.clear();
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks that the reliable-delivery layer never hands the same frame to
/// the application twice: no `(src, dst, seq)` triple may survive the
/// receiver's dedup more than once per program run.
///
/// Gaps are *not* violations — the scheduler exits as soon as every
/// non-daemon process finishes, legitimately abandoning queued frames.
#[derive(Debug, Default)]
pub struct SequenceMonitor {
    checked: u64,
    accepted: HashSet<(u32, u32, u64)>,
}

impl Monitor for SequenceMonitor {
    fn name(&self) -> &'static str {
        "sequence"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        if let ObsEvent::SeqAccept {
            t_ns,
            src,
            dst,
            seq,
        } = *ev
        {
            self.checked += 1;
            if !self.accepted.insert((src, dst, seq)) {
                out.push(Violation {
                    monitor: self.name(),
                    t_ns,
                    rank: dst,
                    detail: format!(
                        "frame {src}->{dst} seq {seq} accepted twice past receiver dedup"
                    ),
                });
            }
        }
    }

    fn on_run_boundary(&mut self) {
        self.accepted.clear();
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks barrier-epoch ordering: per rank, barrier epochs advance by
/// exactly one per barrier, and every exit matches the pending enter.
///
/// Degraded exits (a rank timing out of a barrier and proceeding without
/// suspected peers) still emit a `BarrierExit` for the entered epoch, so
/// they pass; what cannot happen under a correct runtime is a skipped,
/// repeated or regressed epoch.
#[derive(Debug, Default)]
pub struct BarrierMonitor {
    checked: u64,
    /// Last *entered* epoch per rank.
    last_enter: HashMap<u32, u64>,
    /// Entered-but-not-exited epoch per rank.
    pending: HashMap<u32, u64>,
}

impl Monitor for BarrierMonitor {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        match *ev {
            ObsEvent::BarrierEnter { t_ns, rank, epoch } => {
                self.checked += 1;
                if let Some(open) = self.pending.get(&rank) {
                    out.push(Violation {
                        monitor: "barrier",
                        t_ns,
                        rank,
                        detail: format!(
                            "rank entered barrier epoch {epoch} with epoch {open} still open"
                        ),
                    });
                }
                if let Some(&last) = self.last_enter.get(&rank) {
                    if epoch != last + 1 {
                        out.push(Violation {
                            monitor: "barrier",
                            t_ns,
                            rank,
                            detail: format!(
                                "barrier epoch jumped from {last} to {epoch} (must advance by 1)"
                            ),
                        });
                    }
                }
                self.last_enter.insert(rank, epoch);
                self.pending.insert(rank, epoch);
            }
            ObsEvent::BarrierExit {
                t_ns, rank, epoch, ..
            } => {
                self.checked += 1;
                match self.pending.remove(&rank) {
                    Some(open) if open == epoch => {}
                    Some(open) => out.push(Violation {
                        monitor: "barrier",
                        t_ns,
                        rank,
                        detail: format!(
                            "barrier exit at epoch {epoch} does not match open epoch {open}"
                        ),
                    }),
                    None => out.push(Violation {
                        monitor: "barrier",
                        t_ns,
                        rank,
                        detail: format!("barrier exit at epoch {epoch} with no matching enter"),
                    }),
                }
            }
            _ => {}
        }
    }

    fn on_run_boundary(&mut self) {
        self.last_enter.clear();
        self.pending.clear();
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks the crash-recovery promise: a restore may never roll a node
/// back further than the coherence mode's bound (`max(age, 1)` under
/// `PartialAsync{age}`; unbounded modes carry `u64::MAX`).
///
/// This absorbs what used to be a hard `assert!` in the GA experiment
/// runner — the invariant is now audited as a structured violation
/// instead of a panic, so a violating run still produces its report,
/// flight dump and gate failure.
#[derive(Debug, Default)]
pub struct RollbackMonitor {
    checked: u64,
}

impl Monitor for RollbackMonitor {
    fn name(&self) -> &'static str {
        "rollback"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        if let ObsEvent::Restore {
            t_ns,
            rank,
            from_iter,
            to_iter,
            rollback,
            bound,
        } = *ev
        {
            self.checked += 1;
            if rollback > bound {
                out.push(Violation {
                    monitor: self.name(),
                    t_ns,
                    rank,
                    detail: format!(
                        "restore {from_iter}->{to_iter} rolled back {rollback} iterations, \
                         past the mode's bound {bound}"
                    ),
                });
            }
        }
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks the consistent-snapshot protocol's contract: marker waves are
/// well-formed per `(cut id, rank)` — at most one `SnapshotStart` before
/// the matching `SnapshotComplete`, no completion without a start — and
/// **snapshots never pause anyone**: a `SnapshotComplete` must report
/// `pause_ns == 0`, because the whole point of the marker protocol here
/// is that islands keep computing while the cut is recorded.
#[derive(Debug, Default)]
pub struct SnapshotMonitor {
    checked: u64,
    /// Open recordings: (rank, cut id) started but not yet completed.
    open: HashSet<(u32, u64)>,
}

impl Monitor for SnapshotMonitor {
    fn name(&self) -> &'static str {
        "snapshot"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        match *ev {
            ObsEvent::SnapshotStart { t_ns, rank, id, .. } => {
                self.checked += 1;
                if !self.open.insert((rank, id)) {
                    out.push(Violation {
                        monitor: "snapshot",
                        t_ns,
                        rank,
                        detail: format!("cut {id} started twice without completing"),
                    });
                }
            }
            ObsEvent::SnapshotComplete {
                t_ns,
                rank,
                id,
                pause_ns,
                ..
            } => {
                self.checked += 1;
                if !self.open.remove(&(rank, id)) {
                    out.push(Violation {
                        monitor: "snapshot",
                        t_ns,
                        rank,
                        detail: format!("cut {id} completed with no matching start"),
                    });
                }
                if pause_ns > 0 {
                    out.push(Violation {
                        monitor: "snapshot",
                        t_ns,
                        rank,
                        detail: format!(
                            "cut {id} paused the island for {pause_ns}ns — the marker \
                             protocol must never block application progress"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    fn on_run_boundary(&mut self) {
        self.open.clear();
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

/// Checks the staleness tracer's conservation contract on every
/// `ReadAnatomy` event: the seven named stage durations must sum to
/// *exactly* the observed age. The stages are differences of adjacent
/// virtual-time hop stamps, so any stamping bug — a hop skipped, a
/// retransmit double-counted, an overhead booked twice — breaks the
/// telescoping sum and is flagged here, online.
///
/// Trivially green (zero checks) when the tracer is off: the DSM only
/// emits `ReadAnatomy` when [`nscc_obs::Hub::enable_staleness`] was
/// called.
#[derive(Debug, Default)]
pub struct ConservationMonitor {
    checked: u64,
}

impl Monitor for ConservationMonitor {
    fn name(&self) -> &'static str {
        "conservation"
    }

    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>) {
        if let ObsEvent::ReadAnatomy {
            t_ns,
            reader,
            loc,
            age_ns,
            wait_ns,
            publish_ns,
            transit_ns,
            fault_ns,
            retrans_ns,
            queue_ns,
            apply_ns,
            ..
        } = *ev
        {
            self.checked += 1;
            let sum = wait_ns
                .wrapping_add(publish_ns)
                .wrapping_add(transit_ns)
                .wrapping_add(fault_ns)
                .wrapping_add(retrans_ns)
                .wrapping_add(queue_ns)
                .wrapping_add(apply_ns);
            if sum != age_ns {
                out.push(Violation {
                    monitor: self.name(),
                    t_ns,
                    rank: reader,
                    detail: format!(
                        "read of loc {loc} released with stage sum {sum}ns != observed age \
                         {age_ns}ns (wait {wait_ns} + publish {publish_ns} + transit \
                         {transit_ns} + fault {fault_ns} + retrans {retrans_ns} + queue \
                         {queue_ns} + apply {apply_ns})"
                    ),
                });
            }
        }
    }

    fn checked(&self) -> u64 {
        self.checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(m: &mut dyn Monitor, evs: &[ObsEvent]) -> Vec<Violation> {
        let mut out = Vec::new();
        for ev in evs {
            m.on_event(ev, &mut out);
        }
        out
    }

    fn write(rank: u32, loc: u32, age: u64) -> ObsEvent {
        ObsEvent::Write {
            t_ns: age,
            rank,
            loc,
            age,
        }
    }

    #[test]
    fn staleness_ignores_relaxed_reads() {
        let mut m = StalenessMonitor::default();
        let v = drain(
            &mut m,
            &[ObsEvent::ReadDone {
                t_ns: 1,
                rank: 0,
                loc: 0,
                curr_iter: 50,
                requested: u64::MAX,
                delivered: 1,
                staleness: 49,
                blocked: false,
                block_ns: 0,
            }],
        );
        assert!(v.is_empty());
        assert_eq!(m.checked(), 0);
    }

    #[test]
    fn monotonic_writes_pass_and_regressions_fail() {
        let mut m = MonotonicityMonitor::default();
        assert!(drain(&mut m, &[write(0, 3, 1), write(0, 3, 2), write(0, 3, 2)]).is_empty());
        let v = drain(&mut m, &[write(0, 3, 1)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("regressed"));
    }

    #[test]
    fn restore_licenses_rewrites_for_that_rank_only() {
        let mut m = MonotonicityMonitor::default();
        let restore = ObsEvent::Restore {
            t_ns: 9,
            rank: 0,
            from_iter: 8,
            to_iter: 5,
            rollback: 3,
            bound: 5,
        };
        let evs = [write(0, 1, 8), write(1, 2, 8), restore, write(0, 1, 6)];
        assert!(drain(&mut m, &evs).is_empty());
        // Rank 1 saw no restore: its regression is still a violation.
        assert_eq!(drain(&mut m, &[write(1, 2, 6)]).len(), 1);
    }

    #[test]
    fn anti_message_licenses_one_location() {
        let mut m = MonotonicityMonitor::default();
        let anti = ObsEvent::AntiMessage {
            t_ns: 5,
            rank: 2,
            loc: 7,
            age: 4,
        };
        assert!(drain(&mut m, &[write(2, 7, 6), anti, write(2, 7, 4)]).is_empty());
    }

    #[test]
    fn retired_writes_are_skipped() {
        let mut m = MonotonicityMonitor::default();
        assert!(drain(&mut m, &[write(0, 0, 9), write(0, 0, u64::MAX)]).is_empty());
        assert_eq!(m.checked(), 1);
    }

    #[test]
    fn duplicate_sequence_accept_is_flagged() {
        let mut m = SequenceMonitor::default();
        let acc = ObsEvent::SeqAccept {
            t_ns: 1,
            src: 0,
            dst: 1,
            seq: 5,
        };
        assert!(drain(&mut m, &[acc.clone()]).is_empty());
        let v = drain(&mut m, &[acc]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rank, 1);
    }

    #[test]
    fn barrier_lockstep_passes() {
        let mut m = BarrierMonitor::default();
        let mut evs = Vec::new();
        for epoch in 1..=3u64 {
            for rank in 0..2u32 {
                evs.push(ObsEvent::BarrierEnter {
                    t_ns: epoch,
                    rank,
                    epoch,
                });
            }
            for rank in 0..2u32 {
                evs.push(ObsEvent::BarrierExit {
                    t_ns: epoch,
                    rank,
                    epoch,
                    wait_ns: 0,
                });
            }
        }
        assert!(drain(&mut m, &evs).is_empty());
        assert_eq!(m.checked(), 12);
    }

    #[test]
    fn skipped_epoch_and_orphan_exit_fail() {
        let mut m = BarrierMonitor::default();
        let enter = |epoch| ObsEvent::BarrierEnter {
            t_ns: epoch,
            rank: 0,
            epoch,
        };
        let exit = |epoch| ObsEvent::BarrierExit {
            t_ns: epoch,
            rank: 0,
            epoch,
            wait_ns: 0,
        };
        assert!(drain(&mut m, &[enter(1), exit(1)]).is_empty());
        assert_eq!(drain(&mut m, &[enter(3)]).len(), 1); // skipped 2
        assert_eq!(drain(&mut m, &[exit(4)]).len(), 1); // mismatched exit
        assert_eq!(drain(&mut m, &[exit(4)]).len(), 1); // orphan exit
    }

    #[test]
    fn snapshot_lifecycle_passes_and_pauses_fail() {
        let mut m = SnapshotMonitor::default();
        let start = |rank, id| ObsEvent::SnapshotStart {
            t_ns: 1,
            rank,
            id,
            gen: 10,
        };
        let complete = |rank, id, pause_ns| ObsEvent::SnapshotComplete {
            t_ns: 2,
            rank,
            id,
            inflight: 3,
            pause_ns,
        };
        // A clean wave across two ranks, then a preempted (abandoned)
        // wave: neither is a violation.
        assert!(drain(
            &mut m,
            &[
                start(0, 5),
                start(1, 5),
                complete(0, 5, 0),
                complete(1, 5, 0),
                start(0, 8), // abandoned: never completes
                start(0, 11),
                complete(0, 11, 0),
            ],
        )
        .is_empty());
        // A double start of the same cut, an orphan completion, and any
        // nonzero pause are violations.
        assert_eq!(drain(&mut m, &[start(0, 9), start(0, 9)]).len(), 1);
        assert_eq!(drain(&mut m, &[complete(1, 99, 0)]).len(), 1);
        let v = drain(&mut m, &[start(2, 20), complete(2, 20, 7)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("paused the island"));
    }

    #[test]
    fn rollback_within_bound_passes_and_past_bound_fails() {
        let mut m = RollbackMonitor::default();
        let restore = |rollback, bound| ObsEvent::Restore {
            t_ns: 1,
            rank: 0,
            from_iter: 10,
            to_iter: 10 - rollback,
            rollback,
            bound,
        };
        assert!(drain(&mut m, &[restore(5, 5), restore(0, 1)]).is_empty());
        let v = drain(&mut m, &[restore(6, 5)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("past the mode's bound"));
    }

    #[test]
    fn conserving_anatomy_passes_and_leaks_fail() {
        let anatomy = |transit: u64| ObsEvent::ReadAnatomy {
            t_ns: 50_000,
            reader: 1,
            writer: 0,
            loc: 3,
            write_iter: 7,
            msg_seq: 42,
            age_ns: 10_000,
            wait_ns: 1_000,
            publish_ns: 500,
            transit_ns: transit,
            fault_ns: 2_000,
            retrans_ns: 1_500,
            queue_ns: 700,
            apply_ns: 300,
        };
        let mut m = ConservationMonitor::default();
        // 1000+500+4000+2000+1500+700+300 == 10_000: conserved.
        assert!(drain(&mut m, &[anatomy(4_000)]).is_empty());
        // One nanosecond leaks: flagged, with the full decomposition in
        // the detail so postmortems can name the guilty stage.
        let v = drain(&mut m, &[anatomy(3_999)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rank, 1);
        assert!(v[0]
            .detail
            .contains("stage sum 9999ns != observed age 10000ns"));
        assert_eq!(m.checked(), 2);
    }
}
