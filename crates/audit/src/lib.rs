//! Online coherence auditor and black-box flight recorder.
//!
//! The paper's relaxed coherence contract is easy to state and easy to
//! silently violate: a `Global_Read` must never observe a value more than
//! `age` iterations stale, writes per location must never move backwards
//! in time (outside an explicit rollback), the reliable-delivery layer
//! must never hand the same frame to the application twice, barrier
//! epochs must advance in lockstep, a crash restore must never roll a
//! node back further than the coherence mode promises, a consistent
//! snapshot must never pause the islands it cuts across, and — when the
//! staleness tracer is armed — every released read's named stage
//! durations must sum exactly to its observed age. This crate checks all
//! seven invariants *online*, as a [`nscc_obs::EventSink`] tap on the
//! observability hub, and packages the results two ways:
//!
//! * an [`AuditSummary`] that lands in the run report's `audit` section
//!   (rendered by `nscc audit`, enforced by `nscc gate`), and
//! * a deterministic flight-recorder dump ([`FlightDump`]) built from the
//!   hub's bounded event ring, written when something goes wrong and
//!   analyzed offline by `nscc postmortem`.
//!
//! # Determinism contract
//!
//! Monitors are read-only observers: [`Auditor::on_event`] never touches
//! hub counters, the raw event store, or any simulation state, so a
//! monitors-on run produces byte-identical reports to a monitors-off run
//! apart from the `audit` section itself. The flight ring is likewise a
//! side channel (see [`nscc_obs::Hub::enable_flight`]).

#![warn(missing_docs)]

mod flight;
mod monitors;

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_obs::{EventSink, ObsEvent};

pub use flight::{render_flight_dump, FlightDump};
pub use monitors::{
    BarrierMonitor, ConservationMonitor, MonotonicityMonitor, RollbackMonitor, SequenceMonitor,
    SnapshotMonitor, StalenessMonitor,
};

/// Hard cap on individually recorded violations. Monitors keep exact
/// *counts* past the cap; only the detailed records stop accumulating
/// (`AuditSummary::dropped` says how many were elided).
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// One invariant violation, as recorded by a monitor.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Name of the monitor that flagged it (`staleness`, `monotonicity`,
    /// `sequence`, `barrier`, `rollback`).
    pub monitor: &'static str,
    /// Virtual time of the offending event.
    pub t_ns: u64,
    /// Rank the violation is attributed to (the reader, writer, receiver
    /// or recovering rank, depending on the monitor).
    pub rank: u32,
    /// Human-readable description with the numbers that matter.
    pub detail: String,
}

/// An invariant monitor driven by the observability event stream.
///
/// Monitors are pure observers: they may keep private state but must not
/// mutate anything outside themselves. `on_event` sees *every* hub event
/// in emission order; implementations filter for the kinds they audit.
pub trait Monitor: Send {
    /// Stable monitor name (used in reports and violation records).
    fn name(&self) -> &'static str;
    /// Inspect one event, appending any violations found.
    fn on_event(&mut self, ev: &ObsEvent, out: &mut Vec<Violation>);
    /// A program run boundary: sequence numbers, barrier epochs and
    /// watermarks legitimately restart here. Monitors drop per-run state.
    fn on_run_boundary(&mut self) {}
    /// How many events this monitor actually checked (not just saw).
    fn checked(&self) -> u64;
}

/// Per-monitor statistics for the report's `audit` section.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorStat {
    /// Monitor name.
    pub name: &'static str,
    /// Events the monitor checked.
    pub checked: u64,
    /// Violations it flagged (exact, even past the recording cap).
    pub violations: u64,
}

/// The run report's `audit` section: what was checked, what failed.
#[derive(Debug, Clone, Serialize)]
pub struct AuditSummary {
    /// Per-monitor breakdown, in registration order.
    pub monitors: Vec<MonitorStat>,
    /// Total events checked across all monitors.
    pub checked: u64,
    /// Total violations across all monitors (exact).
    pub violations: u64,
    /// Violations elided from `recorded` past
    /// [`MAX_RECORDED_VIOLATIONS`].
    pub dropped: u64,
    /// The first recorded violations, in detection order.
    pub recorded: Vec<Violation>,
}

impl AuditSummary {
    /// Whether the audited run was clean.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

struct AuditorInner {
    monitors: Vec<Box<dyn Monitor>>,
    recorded: Vec<Violation>,
    /// Exact per-monitor violation counts (keyed by monitor name).
    counts: BTreeMap<&'static str, u64>,
    dropped: u64,
    scratch: Vec<Violation>,
}

/// The auditor: a bundle of [`Monitor`]s behind a [`nscc_obs::EventSink`]
/// facade, suitable for [`nscc_obs::Hub::set_tap`].
///
/// One auditor can serve several hubs in sequence (the bench harness
/// shares one across per-cell hubs), accumulating a single
/// [`AuditSummary`] for the whole run.
pub struct Auditor {
    inner: Mutex<AuditorInner>,
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor {
    /// An auditor with the full standard monitor set: staleness-bound,
    /// write monotonicity, reliable-delivery sequence sanity, barrier
    /// epoch ordering, rollback bound, snapshot lifecycle and staleness
    /// anatomy conservation.
    pub fn new() -> Self {
        Auditor::with_monitors(vec![
            Box::new(StalenessMonitor::default()),
            Box::new(MonotonicityMonitor::default()),
            Box::new(SequenceMonitor::default()),
            Box::new(BarrierMonitor::default()),
            Box::new(RollbackMonitor::default()),
            Box::new(SnapshotMonitor::default()),
            Box::new(ConservationMonitor::default()),
        ])
    }

    /// An auditor over a custom monitor set.
    pub fn with_monitors(monitors: Vec<Box<dyn Monitor>>) -> Self {
        let counts = monitors.iter().map(|m| (m.name(), 0u64)).collect();
        Auditor {
            inner: Mutex::new(AuditorInner {
                monitors,
                recorded: Vec::new(),
                counts,
                dropped: 0,
                scratch: Vec::new(),
            }),
        }
    }

    /// Total violations flagged so far (exact).
    pub fn violation_count(&self) -> u64 {
        self.inner.lock().counts.values().sum()
    }

    /// Snapshot the audit results for the run report.
    pub fn summary(&self) -> AuditSummary {
        let inner = self.inner.lock();
        let monitors: Vec<MonitorStat> = inner
            .monitors
            .iter()
            .map(|m| MonitorStat {
                name: m.name(),
                checked: m.checked(),
                violations: *inner.counts.get(m.name()).unwrap_or(&0),
            })
            .collect();
        let checked = monitors.iter().map(|m| m.checked).sum();
        let violations = monitors.iter().map(|m| m.violations).sum();
        AuditSummary {
            monitors,
            checked,
            violations,
            dropped: inner.dropped,
            recorded: inner.recorded.clone(),
        }
    }

    /// The recorded violations (capped), for flight dumps.
    pub fn recorded(&self) -> Vec<Violation> {
        self.inner.lock().recorded.clone()
    }
}

impl EventSink for Auditor {
    fn on_event(&self, ev: &ObsEvent) {
        let inner = &mut *self.inner.lock();
        for m in &mut inner.monitors {
            m.on_event(ev, &mut inner.scratch);
        }
        for v in inner.scratch.drain(..) {
            *inner.counts.entry(v.monitor).or_insert(0) += 1;
            if inner.recorded.len() < MAX_RECORDED_VIOLATIONS {
                inner.recorded.push(v);
            } else {
                inner.dropped += 1;
            }
        }
    }

    fn on_run_boundary(&self) {
        let mut inner = self.inner.lock();
        for m in &mut inner.monitors {
            m.on_run_boundary();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_done(curr: u64, requested: u64, staleness: u64) -> ObsEvent {
        ObsEvent::ReadDone {
            t_ns: 1,
            rank: 0,
            loc: 0,
            curr_iter: curr,
            requested,
            delivered: curr.saturating_sub(staleness),
            staleness,
            blocked: false,
            block_ns: 0,
        }
    }

    #[test]
    fn clean_stream_audits_clean() {
        let a = Auditor::new();
        a.on_event(&read_done(10, 5, 3));
        a.on_event(&ObsEvent::Write {
            t_ns: 2,
            rank: 0,
            loc: 0,
            age: 1,
        });
        let s = a.summary();
        assert!(s.clean());
        assert_eq!(s.checked, 2);
        assert_eq!(s.monitors.len(), 7);
    }

    #[test]
    fn stale_read_is_flagged() {
        let a = Auditor::new();
        a.on_event(&read_done(10, 5, 7));
        let s = a.summary();
        assert_eq!(s.violations, 1);
        assert_eq!(s.recorded[0].monitor, "staleness");
    }

    #[test]
    fn recording_cap_counts_exactly() {
        let a = Auditor::new();
        for _ in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            a.on_event(&read_done(10, 5, 7));
        }
        let s = a.summary();
        assert_eq!(s.violations, MAX_RECORDED_VIOLATIONS as u64 + 10);
        assert_eq!(s.recorded.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(s.dropped, 10);
    }

    #[test]
    fn run_boundary_resets_sequence_state() {
        let a = Auditor::new();
        let acc = ObsEvent::SeqAccept {
            t_ns: 1,
            src: 0,
            dst: 1,
            seq: 0,
        };
        a.on_event(&acc);
        a.on_run_boundary();
        a.on_event(&acc); // same triple, new program run: legitimate
        assert_eq!(a.violation_count(), 0);
        a.on_event(&acc); // within the same run: duplicate
        assert_eq!(a.violation_count(), 1);
    }
}
