//! The black-box flight-recorder dump.
//!
//! The hub keeps a bounded ring of the most recent events (see
//! [`nscc_obs::Hub::enable_flight`]); when a run ends badly — a monitor
//! violation, an injected fault that stuck, or a scheduler deadlock — the
//! bench harness freezes that ring into a `FLIGHT_<bench>.json` document.
//! The dump is deterministic: it is built entirely from virtual-time
//! events already ordered by the ring, so two runs of the same seed
//! produce byte-identical dumps. `nscc postmortem` reads it offline.

use serde::Serialize;

use nscc_obs::{json::to_json, ObsEvent};

use crate::Violation;

/// The flight-recorder document, serialized as `FLIGHT_<bench>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FlightDump {
    /// Report schema version ([`nscc_obs::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Document kind discriminator, always `"flight"`.
    pub kind: &'static str,
    /// Bench name (`fig2`, `fault_study`, …).
    pub bench: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Why the dump was cut (`violation`, `deadlock`, `fault`).
    pub reason: String,
    /// Ring capacity the recorder ran with (`NSCC_FLIGHT`).
    pub capacity: u64,
    /// Display names for process ranks, index = rank (may be empty).
    pub proc_names: Vec<String>,
    /// Violations known at dump time (capped, detection order).
    pub violations: Vec<Violation>,
    /// The ring contents, oldest first.
    pub events: Vec<ObsEvent>,
}

impl FlightDump {
    /// Assemble a dump from the hub's ring and the auditor's findings.
    pub fn new(
        bench: &str,
        seed: u64,
        reason: &str,
        capacity: u64,
        events: Vec<ObsEvent>,
        violations: Vec<Violation>,
    ) -> Self {
        FlightDump {
            schema_version: nscc_obs::SCHEMA_VERSION,
            kind: "flight",
            bench: bench.to_string(),
            seed,
            reason: reason.to_string(),
            capacity,
            proc_names: Vec::new(),
            violations,
            events,
        }
    }

    /// Attach rank display names (index = rank).
    pub fn with_proc_names(mut self, names: Vec<String>) -> Self {
        self.proc_names = names;
        self
    }
}

/// Render a flight dump as compact JSON (one line, no trailing newline).
pub fn render_flight_dump(dump: &FlightDump) -> String {
    to_json(dump)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_renders_deterministic_json() {
        let dump = FlightDump::new(
            "fault_study",
            7,
            "violation",
            256,
            vec![ObsEvent::Custom {
                t_ns: 42,
                label: "deadlock: pid 3 blocked".into(),
            }],
            vec![Violation {
                monitor: "staleness",
                t_ns: 41,
                rank: 1,
                detail: "read of loc 9 delivered staleness 7 > requested bound 5".into(),
            }],
        )
        .with_proc_names(vec!["rank 0".into(), "rank 1".into()]);
        let a = render_flight_dump(&dump);
        let b = render_flight_dump(&dump);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema_version\":"));
        assert!(a.contains("\"kind\":\"flight\""));
        assert!(a.contains("\"reason\":\"violation\""));
        assert!(a.contains("\"Custom\""));
        nscc_obs::json::validate(&a).expect("dump is valid JSON");
    }
}
