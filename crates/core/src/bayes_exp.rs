//! The Bayes experiment runner: regenerates the data behind Table 2's
//! uniprocessor inference times and Figure 3's parallel speedups.

use std::sync::Arc;

use nscc_bayes::{
    run_parallel_inference, sequential_inference, BayesCost, ParallelBayesConfig, Plan, Query,
    SeqResult, StopRule, Table2Net,
};
use nscc_dsm::{Coherence, DsmStats};
use nscc_net::NetStats;
use nscc_obs::Hub;
use nscc_sim::{SimError, SimTime};

use crate::ga_exp::PAPER_AGES;
use crate::platform::Platform;

/// Configuration of one Bayes experiment cell (network × partitions).
#[derive(Debug, Clone)]
pub struct BayesExperiment {
    /// The benchmark network.
    pub net: Table2Net,
    /// Processor (partition) count; the paper uses 2.
    pub procs: usize,
    /// Stopping rule (paper: 90% CI ± 0.01).
    pub stop: StopRule,
    /// Repetitions (the paper averages 10).
    pub runs: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Platform.
    pub platform: Platform,
    /// Cost model.
    pub cost: BayesCost,
    /// Samples per block message.
    pub block: usize,
    /// Iteration cap per partition.
    pub max_iterations: u64,
    /// Optional observability hub, attached to every run's DSM world and
    /// network (shared across runs and modes: the cell aggregates).
    pub obs: Option<Hub>,
}

impl BayesExperiment {
    /// Paper-like defaults at a bench-friendly scale (looser CI than the
    /// paper's ±0.01 so cells finish quickly; harnesses can tighten it).
    pub fn new(net: Table2Net, procs: usize) -> Self {
        BayesExperiment {
            net,
            procs,
            stop: StopRule {
                halfwidth: 0.02,
                ..StopRule::default()
            },
            runs: 3,
            base_seed: 7000,
            platform: Platform::paper_ethernet(procs),
            cost: BayesCost::default(),
            block: 8,
            max_iterations: 200_000,
            obs: None,
        }
    }

    /// The standard query for this network: evidence on two early nodes
    /// (their default values, keeping the acceptance rate healthy) and a
    /// late query node chosen to reflect each network's character —
    /// *balanced* posteriors for the random networks (whose Table 2
    /// inference times are long) and a *skewed* diagnostic variable for
    /// the Hailfinder-alike (whose Table 2 time is short: skewed
    /// posteriors satisfy the ±0.01 CI with far fewer samples).
    pub fn standard_query(&self) -> Query {
        let net = self.net.build();
        let defaults = net.default_values();
        // Estimate marginals of the last quarter of nodes with a quick
        // deterministic sweep.
        let probe = 2000u64;
        let start = net.len() - net.len() / 4;
        let mut counts = vec![vec![0u64; 8]; net.len()];
        let mut sample = Vec::new();
        for i in 1..=probe {
            nscc_bayes::forward_sample(&net, 0xBEEF, i, &mut sample);
            for v in start..net.len() {
                counts[v][sample[v] as usize] += 1;
            }
        }
        let skewness = |v: usize| -> f64 {
            *counts[v].iter().max().expect("counts nonempty") as f64 / probe as f64
        };
        let candidates = start..net.len();
        let node = match self.net {
            Table2Net::Hailfinder => candidates
                .max_by(|&a, &b| skewness(a).total_cmp(&skewness(b)))
                .expect("candidates nonempty"),
            _ => candidates
                .min_by(|&a, &b| skewness(a).total_cmp(&skewness(b)))
                .expect("candidates nonempty"),
        };
        Query {
            node,
            evidence: vec![(0, defaults[0]), (1, defaults[1])],
        }
    }
}

/// Per-mode measurements, averaged over runs.
#[derive(Debug, Clone)]
pub struct BayesModeResult {
    /// Mode label.
    pub label: String,
    /// Mean completion time.
    pub mean_time: SimTime,
    /// Mean speedup over the sequential baseline.
    pub speedup: f64,
    /// Mean samples drawn to convergence.
    pub mean_samples: f64,
    /// Mean rollbacks per run (all partitions).
    pub mean_rollbacks: f64,
    /// Fraction of runs that converged before the cap.
    pub success_rate: f64,
}

/// Full result of one Bayes experiment cell.
#[derive(Debug, Clone)]
pub struct BayesExpResult {
    /// The network.
    pub net: Table2Net,
    /// Partition count.
    pub procs: usize,
    /// Mean sequential (uniprocessor) inference time — the Table 2 row.
    pub seq_time: SimTime,
    /// Mean sequential samples.
    pub seq_samples: f64,
    /// Edge-cut of the partition plan (Table 2 row).
    pub edge_cut: usize,
    /// One row per mode.
    pub modes: Vec<BayesModeResult>,
    /// Aggregate DSM counters over every parallel run in the cell.
    pub dsm: DsmStats,
    /// Aggregate network counters over every parallel run in the cell
    /// (`net` names the benchmark belief network).
    pub net_stats: NetStats,
}

impl BayesExpResult {
    /// Best partially-asynchronous speedup row.
    pub fn best_partial(&self) -> &BayesModeResult {
        self.modes
            .iter()
            .filter(|m| m.label.starts_with("age="))
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("age rows exist")
    }

    /// Best competitor speedup (serial = 1.0, sync, async).
    pub fn best_competitor_speedup(&self) -> f64 {
        self.modes
            .iter()
            .filter(|m| m.label == "sync" || m.label == "async")
            .map(|m| m.speedup)
            .fold(1.0, f64::max)
    }

    /// Best partial over best competitor, as a ratio − 1.
    pub fn improvement(&self) -> f64 {
        self.best_partial().speedup / self.best_competitor_speedup() - 1.0
    }
}

/// Run the sequential baseline once (no network, pure virtual compute).
pub fn run_sequential(exp: &BayesExperiment, seed: u64) -> SeqResult {
    let net = exp.net.build();
    let query = exp.standard_query();
    sequential_inference(
        &net,
        &query,
        &exp.stop,
        &exp.cost,
        seed,
        exp.max_iterations * exp.block as u64,
    )
}

/// Run the full cell: sequential baseline plus every parallel mode.
pub fn run_bayes_experiment(exp: &BayesExperiment) -> Result<BayesExpResult, SimError> {
    let net = Arc::new(exp.net.build());
    let query = exp.standard_query();
    let plan = Plan::new(&net, exp.procs, 42, &query);

    let modes: Vec<Coherence> = [Coherence::Synchronous, Coherence::FullyAsync]
        .into_iter()
        .chain(
            PAPER_AGES
                .iter()
                .map(|&a| Coherence::PartialAsync { age: a }),
        )
        .collect();

    let mut seq_time_sum = SimTime::ZERO;
    let mut seq_samples_sum = 0.0;
    let mut dsm_total = DsmStats::default();
    let mut net_total = NetStats::default();
    let mut acc: Vec<Vec<(SimTime, u64, u64, bool)>> =
        (0..modes.len()).map(|_| Vec::new()).collect();

    for r in 0..exp.runs {
        let seed = exp.base_seed + r as u64;
        let seq = run_sequential(exp, seed);
        seq_time_sum += seq.time;
        seq_samples_sum += seq.samples as f64;

        for (mi, &mode) in modes.iter().enumerate() {
            // Loaders (if any) need a SimBuilder; run_parallel_inference
            // builds its own, so loaded Bayes runs use the network-only
            // build (the paper's loaded experiments are GA-only anyway).
            let network = exp.platform.build_network_only(seed);
            if let Some(hub) = &exp.obs {
                // Per-program boundary for any attached audit tap (epochs
                // and sequence numbers legitimately restart here).
                hub.note_run_boundary();
                network.attach_obs(hub.clone());
            }
            let cfg = ParallelBayesConfig {
                stop: exp.stop,
                cost: exp.cost.clone(),
                block: exp.block,
                max_iterations: exp.max_iterations,
                sample_seed: seed,
                obs: exp.obs.clone(),
                ..ParallelBayesConfig::new(mode)
            };
            let res = run_parallel_inference(
                Arc::clone(&net),
                query.clone(),
                exp.procs,
                cfg,
                network.clone(),
                exp.platform.msg.clone(),
                seed,
            )?;
            let rollbacks: u64 = res.per_part.iter().map(|p| p.rollbacks).sum();
            dsm_total.merge(&res.dsm);
            net_total.merge(&network.stats());
            acc[mi].push((res.completion, res.drawn, rollbacks, res.converged));
        }
    }

    let runs = exp.runs as f64;
    let seq_time = seq_time_sum / exp.runs as u64;
    let mode_results = modes
        .iter()
        .zip(acc)
        .map(|(mode, ms)| {
            let mean_time: SimTime =
                ms.iter().map(|&(t, _, _, _)| t).sum::<SimTime>() / ms.len() as u64;
            BayesModeResult {
                label: mode.label(),
                mean_time,
                speedup: seq_time.as_secs_f64() / mean_time.as_secs_f64(),
                mean_samples: ms.iter().map(|&(_, s, _, _)| s as f64).sum::<f64>() / runs,
                mean_rollbacks: ms.iter().map(|&(_, _, rb, _)| rb as f64).sum::<f64>() / runs,
                success_rate: ms.iter().filter(|&&(_, _, _, c)| c).count() as f64 / runs,
            }
        })
        .collect();

    Ok(BayesExpResult {
        net: exp.net,
        procs: exp.procs,
        seq_time,
        seq_samples: seq_samples_sum / runs,
        edge_cut: plan.edge_cut,
        modes: mode_results,
        dsm: dsm_total,
        net_stats: net_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_baseline_runs() {
        let exp = BayesExperiment {
            stop: StopRule {
                halfwidth: 0.05,
                ..StopRule::default()
            },
            cost: BayesCost::deterministic(),
            ..BayesExperiment::new(Table2Net::Hailfinder, 2)
        };
        let seq = run_sequential(&exp, 1);
        assert!(seq.samples > 0);
        assert!(seq.time > SimTime::ZERO);
    }

    #[test]
    fn small_cell_produces_rows() {
        let exp = BayesExperiment {
            stop: StopRule {
                halfwidth: 0.05,
                ..StopRule::default()
            },
            runs: 1,
            cost: BayesCost::deterministic(),
            block: 4,
            ..BayesExperiment::new(Table2Net::Hailfinder, 2)
        };
        let res = run_bayes_experiment(&exp).unwrap();
        assert_eq!(res.modes.len(), 7);
        assert!(res.seq_time > SimTime::ZERO);
        for m in &res.modes {
            assert!(m.mean_time > SimTime::ZERO, "{}", m.label);
            assert!(m.success_rate > 0.0, "{} did not converge", m.label);
        }
    }
}
