//! Machine-readable run reports.
//!
//! A [`RunReport`] merges everything one experiment run (or sweep)
//! produced — experiment parameters, headline metrics, aggregate
//! [`DsmStats`], [`NetStats`] and [`CommStats`], and the observability
//! hub's [`HubSummary`] (histograms, warp distribution, event counters) —
//! into one serializable document. The bench binaries write it as
//! `BENCH_<name>.json` next to the working directory when `NSCC_JSON=1`
//! (or `--json`) is set, so sweeps can be diffed and plotted without
//! scraping stdout tables.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::Serialize;

use nscc_dsm::DsmStats;
use nscc_msg::CommStats;
use nscc_net::NetStats;
use nscc_obs::{json, Hub, HubSummary};

/// One run's merged, serializable record.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Export schema version ([`nscc_obs::SCHEMA_VERSION`]); consumers
    /// refuse mismatched files instead of guessing at missing keys.
    pub schema_version: u32,
    /// Report name (`BENCH_<name>.json`).
    pub name: String,
    /// Experiment parameters (procs, generations, ages, …).
    pub params: BTreeMap<String, f64>,
    /// Headline metrics (speedups, times in seconds, success rates, …).
    pub metrics: BTreeMap<String, f64>,
    /// Aggregate DSM counters over every run in the cell/sweep.
    pub dsm: DsmStats,
    /// Aggregate network counters, when a network was involved.
    pub net: Option<NetStats>,
    /// Message-layer counters, when available.
    pub comm: Option<CommStats>,
    /// Parallel runs the watchdog (or deadlock detector) cut short under
    /// fault injection.
    pub fault_reports: u64,
    /// `true` when any graceful-degradation path fired during the run —
    /// reads timing out onto cached values, peers suspected dead, frames
    /// abandoned after retries, or watchdog-cut runs. Recomputed by
    /// [`note_degradation`](RunReport::note_degradation); a fault-free
    /// run stays `false` byte-for-byte.
    pub degraded: bool,
    /// The observability hub's summary: staleness/block/delay histograms,
    /// warp distribution, event and drop counters.
    pub obs: HubSummary,
    /// What the consistent-snapshot protocol and the supervision layer
    /// did ([`nscc_ga::RecoverySummary`]): marker waves, completed cuts,
    /// cut-served restores, approved restarts and give-ups. Populated only
    /// when either subsystem was enabled and serialized as `null`
    /// otherwise — snapshot-on runs stay byte-identical to snapshot-off
    /// runs outside this one section.
    pub recovery: Option<nscc_ga::RecoverySummary>,
    /// Wall-clock scheduler self-accounting ([`nscc_obs::SchedSummary`]):
    /// events/sec throughput, park/unpark counts, per-process executing
    /// vs. parked time. Real host-clock numbers, so nondeterministic —
    /// populated only on explicit request (`NSCC_WALL=1`) and serialized
    /// as `null` otherwise, keeping same-seed reports byte-identical.
    pub wall: Option<nscc_obs::SchedSummary>,
    /// The online coherence auditor's findings
    /// ([`nscc_audit::AuditSummary`]): per-monitor checked/violation
    /// counts plus the first recorded violations. Populated only when the
    /// auditor ran (`NSCC_AUDIT=1`) and serialized as `null` otherwise —
    /// monitors-on runs stay byte-identical to monitors-off runs outside
    /// this one section.
    pub audit: Option<nscc_audit::AuditSummary>,
    /// The staleness tracer's per-hop anatomy
    /// ([`nscc_obs::StalenessSummary`]): observed-age and per-stage log₂
    /// histograms (wait/publish/transit/fault/retrans/queue/apply), broken
    /// down by location and by writer→reader link, plus conservation
    /// counters and Perfetto flow bookkeeping. Populated only when the
    /// tracer was armed (`NSCC_STALENESS=1`) and serialized as `null`
    /// otherwise — tracer-on runs stay byte-identical to tracer-off runs
    /// outside this one section.
    pub staleness: Option<nscc_obs::StalenessSummary>,
}

impl RunReport {
    /// Start a report from a hub's current summary. Layer stats and
    /// metrics are filled in afterwards.
    pub fn new(name: impl Into<String>, hub: &Hub) -> Self {
        RunReport {
            schema_version: nscc_obs::SCHEMA_VERSION,
            name: name.into(),
            params: BTreeMap::new(),
            metrics: BTreeMap::new(),
            dsm: DsmStats::default(),
            net: None,
            comm: None,
            fault_reports: 0,
            degraded: false,
            obs: hub.summary(),
            recovery: None,
            wall: None,
            audit: None,
            staleness: None,
        }
    }

    /// Recompute the [`degraded`](RunReport::degraded) marker from the
    /// merged stats. Call after filling `dsm`/`comm`/`fault_reports`/
    /// `recovery`.
    pub fn note_degradation(&mut self) -> &mut Self {
        let give_ups = self.comm.map_or(0, |c| c.give_ups);
        let retired = self.recovery.as_ref().map_or(0, |r| r.give_ups);
        self.degraded = self.fault_reports > 0
            || give_ups > 0
            || retired > 0
            || self.dsm.degraded_reads > 0
            || self.dsm.suspected_writers > 0
            || self.dsm.barrier_timeouts > 0;
        self
    }

    /// Record an experiment parameter.
    pub fn param(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.params.insert(key.into(), value);
        self
    }

    /// Record a headline metric.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.insert(key.into(), value);
        self
    }

    /// The canonical file name, `BENCH_<name>.json`.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize to a JSON string (hand-rolled serializer; no external
    /// JSON crate in the workspace).
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// A warning line when the hub dropped raw events or spans — the
    /// aggregate counters and histograms in this report stay exact, but
    /// the raw streams (and anything derived from them, like a critical
    /// path) are truncated. `None` when the capture is complete.
    pub fn drop_warning(&self) -> Option<String> {
        if self.obs.events_dropped == 0 && self.obs.spans_dropped == 0 {
            return None;
        }
        Some(format!(
            "warning: {}: raw trace truncated ({} events, {} spans dropped at capacity); \
             counters/histograms stay exact, raw-stream analyses are partial",
            self.filename(),
            self.obs.events_dropped,
            self.obs.spans_dropped
        ))
    }

    /// Write `BENCH_<name>.json` into `dir`, returning the path written.
    /// Prints a stderr warning when the underlying hub dropped events or
    /// spans, so truncated traces can't masquerade as complete.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        if let Some(w) = self.drop_warning() {
            eprintln!("{w}");
        }
        let path = dir.as_ref().join(self.filename());
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_obs::ObsEvent;

    fn sample_report() -> RunReport {
        let hub = Hub::new();
        hub.emit(ObsEvent::ReadDone {
            t_ns: 10,
            rank: 0,
            loc: 0,
            curr_iter: 7,
            requested: 5,
            delivered: 4,
            staleness: 3,
            blocked: false,
            block_ns: 0,
        });
        let mut rep = RunReport::new("unit", &hub);
        rep.param("procs", 4.0).metric("speedup", 2.5);
        rep.dsm.writes = 11;
        rep.net = Some(NetStats::default());
        rep
    }

    #[test]
    fn report_serializes_to_valid_json() {
        let rep = sample_report();
        let s = rep.to_json();
        json::validate(&s).expect("report JSON validates");
        assert!(s.contains(&format!("\"schema_version\":{}", nscc_obs::SCHEMA_VERSION)));
        assert!(s.contains("\"name\":\"unit\""));
        assert!(s.contains("\"speedup\":2.5"));
        assert!(s.contains("\"staleness\""));
    }

    #[test]
    fn wall_section_is_null_unless_requested() {
        let mut rep = sample_report();
        assert!(
            rep.to_json().contains("\"wall\":null"),
            "default reports carry no nondeterministic wall data"
        );
        rep.wall = Some(nscc_obs::SchedSummary {
            events: 10,
            ..Default::default()
        });
        let s = rep.to_json();
        json::validate(&s).expect("report with wall section validates");
        assert!(s.contains("\"wall\":{\"events\":10,"));
    }

    #[test]
    fn audit_section_is_null_unless_requested() {
        let mut rep = sample_report();
        assert!(
            rep.to_json().contains("\"audit\":null"),
            "default reports carry no audit section"
        );
        let auditor = nscc_audit::Auditor::new();
        rep.audit = Some(auditor.summary());
        let s = rep.to_json();
        json::validate(&s).expect("report with audit section validates");
        assert!(s.contains("\"audit\":{\"monitors\":["));
        assert!(s.contains("\"violations\":0"));
    }

    #[test]
    fn staleness_section_is_null_unless_requested() {
        let mut rep = sample_report();
        assert!(
            rep.to_json().contains("\"staleness\":null"),
            "default reports carry no staleness anatomy section"
        );
        let hub = Hub::new();
        hub.enable_staleness();
        rep.staleness = Some(hub.staleness_summary());
        let s = rep.to_json();
        json::validate(&s).expect("report with staleness section validates");
        assert!(s.contains("\"staleness\":{\"released\":0,"));
    }

    #[test]
    fn recovery_section_is_null_unless_requested() {
        let mut rep = sample_report();
        assert!(
            rep.to_json().contains("\"recovery\":null"),
            "default reports carry no recovery section"
        );
        rep.recovery = Some(nscc_ga::RecoverySummary {
            snapshots_completed: 3,
            cut_restores: 1,
            ..Default::default()
        });
        let s = rep.to_json();
        json::validate(&s).expect("report with recovery section validates");
        assert!(s.contains("\"recovery\":{\"snapshots_started\":0,\"snapshots_completed\":3,"));
        // A supervisor give-up marks the whole report degraded.
        rep.note_degradation();
        assert!(!rep.degraded, "restores alone do not degrade the run");
        rep.recovery.as_mut().unwrap().give_ups = 1;
        rep.note_degradation();
        assert!(rep.degraded, "an abandoned island degrades the report");
    }

    #[test]
    fn drop_warning_flags_truncated_traces() {
        let mut rep = sample_report();
        assert!(rep.drop_warning().is_none());
        rep.obs.events_dropped = 7;
        let w = rep.drop_warning().expect("warning for dropped events");
        assert!(w.contains("7 events"));
        rep.obs.events_dropped = 0;
        rep.obs.spans_dropped = 3;
        assert!(rep.drop_warning().unwrap().contains("3 spans"));
    }

    #[test]
    fn degraded_marker_tracks_resilience_counters() {
        let mut rep = sample_report();
        rep.note_degradation();
        assert!(!rep.degraded, "clean run must not be marked degraded");
        assert!(rep.to_json().contains("\"degraded\":false"));

        rep.dsm.degraded_reads = 2;
        rep.note_degradation();
        assert!(rep.degraded);
        assert!(rep.to_json().contains("\"degraded\":true"));

        rep.dsm.degraded_reads = 0;
        rep.fault_reports = 1;
        rep.note_degradation();
        assert!(rep.degraded, "watchdog-cut runs mark the report degraded");
    }

    #[test]
    fn filename_is_bench_prefixed() {
        assert_eq!(sample_report().filename(), "BENCH_unit.json");
    }

    #[test]
    fn write_json_creates_the_file() {
        let dir = std::env::temp_dir().join("nscc_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample_report().write_json(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        json::validate(body.trim()).expect("file contents validate");
        std::fs::remove_file(path).ok();
    }
}
