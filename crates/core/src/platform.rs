//! Platform presets: the simulated equivalents of the paper's testbed.

use nscc_faults::{FaultPlan, FaultStatsHandle, FaultyMedium};
use nscc_msg::MsgConfig;
use nscc_net::{EthernetBus, IdealMedium, LoaderConfig, Medium, Network, NodeId, Sp2Switch};
use nscc_sim::{SimBuilder, SimTime};

/// Which interconnect to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interconnect {
    /// The paper's 10 Mbps shared Ethernet.
    Ethernet10,
    /// The SP2 high-performance switch (contrast platform).
    Sp2Switch,
    /// Fixed-latency ideal medium (for controlled studies).
    Ideal {
        /// One-way latency.
        latency: SimTime,
    },
}

/// A complete platform description for one experiment run.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The interconnect model.
    pub interconnect: Interconnect,
    /// Message-layer CPU overheads.
    pub msg: MsgConfig,
    /// Background load in Mbps offered by the loader pair (0 = none).
    pub load_mbps: f64,
    /// Number of compute ranks (loaders get the two node ids above this).
    pub ranks: usize,
    /// Optional fault plan: when set (and not a no-op), the interconnect
    /// is wrapped in a [`FaultyMedium`] that drops, duplicates, delays
    /// and partitions frames per the plan's own seed. `None` keeps the
    /// paper's fault-free wire byte-for-byte.
    pub faults: Option<FaultPlan>,
}

impl Platform {
    /// The paper's default platform: `ranks` SP2 nodes on the shared
    /// 10 Mbps Ethernet, unloaded.
    pub fn paper_ethernet(ranks: usize) -> Self {
        Platform {
            interconnect: Interconnect::Ethernet10,
            msg: MsgConfig::default(),
            load_mbps: 0.0,
            ranks,
            faults: None,
        }
    }

    /// Inject faults per `plan` into whatever interconnect this platform
    /// builds.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The loaded-network configuration of §5.2 (4 compute nodes plus a
    /// loader pair offering `mbps`).
    pub fn loaded_ethernet(ranks: usize, mbps: f64) -> Self {
        Platform {
            load_mbps: mbps,
            ..Platform::paper_ethernet(ranks)
        }
    }

    /// Build the network for a run and spawn loader daemons when
    /// configured. Call once per simulation.
    pub fn build(&self, sim: &mut SimBuilder, seed: u64) -> Network {
        self.build_instrumented(sim, seed).0
    }

    /// Like [`build`](Platform::build), additionally returning a live
    /// handle onto the fault layer's counters (`None` when the platform
    /// has no effective fault plan).
    pub fn build_instrumented(
        &self,
        sim: &mut SimBuilder,
        seed: u64,
    ) -> (Network, Option<FaultStatsHandle>) {
        let (net, handle) = self.wire(seed);
        if self.load_mbps > 0.0 {
            let a = NodeId(self.ranks as u32);
            let b = NodeId(self.ranks as u32 + 1);
            nscc_net::spawn_loaders(sim, &net, &LoaderConfig::mbps(self.load_mbps, a, b));
        }
        (net, handle)
    }

    /// Build the network without a simulation (no loaders possible).
    pub fn build_network_only(&self, seed: u64) -> Network {
        self.wire(seed).0
    }

    /// The interconnect medium, fault-wrapped when the plan is effective.
    fn wire(&self, seed: u64) -> (Network, Option<FaultStatsHandle>) {
        let medium: Box<dyn Medium> = match self.interconnect {
            Interconnect::Ethernet10 => Box::new(EthernetBus::ten_mbps(seed)),
            Interconnect::Sp2Switch => Box::new(Sp2Switch::sp2()),
            Interconnect::Ideal { latency } => Box::new(IdealMedium::new(latency)),
        };
        match self.faults.as_ref().filter(|p| !p.is_noop()) {
            Some(plan) => {
                let faulty = FaultyMedium::wrap(medium, plan.clone());
                let handle = faulty.stats_handle();
                (Network::new(faulty), Some(handle))
            }
            None => (Network::new(medium), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let p = Platform::paper_ethernet(8);
        assert_eq!(p.ranks, 8);
        assert_eq!(p.load_mbps, 0.0);
        let l = Platform::loaded_ethernet(4, 2.0);
        assert_eq!(l.load_mbps, 2.0);
        assert_eq!(l.ranks, 4);
    }

    #[test]
    fn build_with_loaders_runs() {
        let p = Platform::loaded_ethernet(2, 1.0);
        let mut sim = SimBuilder::new(0);
        let net = p.build(&mut sim, 0);
        sim.spawn("clock", |ctx| ctx.advance(SimTime::from_secs(1)));
        sim.run().unwrap();
        // Loaders injected ~1 Mbps for 1 s.
        let bits = net.stats().medium.payload_bytes as f64 * 8.0;
        assert!(bits > 0.8e6 && bits < 1.2e6, "loader bits {bits}");
    }
}
