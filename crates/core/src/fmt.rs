//! Minimal plain-text table rendering for the bench harnesses.

/// Render rows as an aligned table; the first row is the header.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // Left-align first column, right-align the rest.
            if i == 0 {
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
        }
        out.push('\n');
        if ri == 0 {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        }
    }
    out
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Render rows as CSV (no quoting; cells must not contain commas).
pub fn render_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rows = vec![
            vec!["name".to_string(), "x".to_string()],
            vec!["longer-name".to_string(), "12.5".to_string()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("longer-name"));
    }

    #[test]
    fn csv() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        assert_eq!(render_csv(&rows), "a,b\n1,2");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }
}
