//! The GA experiment runner: regenerates the data behind Figures 2 and 4.
//!
//! Protocol (per run seed):
//! 1. **Synchronous reference** — `p` islands of 50 run a fixed
//!    generation budget (the paper's 1000) in lockstep. Its achieved
//!    mean best-ever fitness is the quality bar `Q`, and its time is
//!    measured up to its last quality improvement.
//! 2. **Serial baseline** — one deme of the total population (`50 × p`)
//!    timed to its first hit of `Q`.
//! 3. **Asynchronous and Global_Read versions** — run until *every*
//!    island reaches `Q` ("converged further than the synchronous
//!    version"), with a generation cap. A capped run is a failure and
//!    never flatters the mode (the paper ensured convergence per trial).
//! 4. Speedup = `T_serial / T_mode`.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_dsm::{Coherence, Directory, DsmStats, DsmWorld, SnapConfig, SnapshotBoard};
use nscc_faults::FaultReport;
use nscc_ga::{
    run_island, ConvergenceBoard, CostModel, GaParams, IslandConfig, IslandOutcome, MigrantBatch,
    RecoveryPlan, RecoveryStyle, RecoverySummary, SerialGa, Supervisor, SupervisorPolicy, TestFn,
};
use nscc_msg::{CommStats, MarkerPlane};
use nscc_net::{NetStats, WarpMeter};
use nscc_obs::Hub;
use nscc_sim::{SimBuilder, SimError, SimTime};

use crate::platform::Platform;

/// The five competitor families of Figure 2.
pub const PAPER_AGES: [u64; 5] = [0, 5, 10, 20, 30];

/// Configuration of one GA experiment cell (function × processor count ×
/// platform).
#[derive(Debug, Clone)]
pub struct GaExperiment {
    /// Benchmark function.
    pub func: TestFn,
    /// Processor (island) count.
    pub procs: usize,
    /// Serial-baseline generations (the paper runs 1000; benches scale
    /// this down).
    pub generations: u64,
    /// Generation cap for parallel runs, as a multiple of `generations`.
    pub cap_factor: u64,
    /// Independent repetitions (the paper averages 25).
    pub runs: usize,
    /// Base seed; run `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Platform (interconnect + background load).
    pub platform: Platform,
    /// Cost model for every node.
    pub cost: CostModel,
    /// Fraction of the serial run whose quality defines the target
    /// (lower = easier bar; 0.75 keeps island runs from chasing the
    /// panmictic population's last few multimodal refinements).
    pub target_fraction: f64,
    /// Optional observability hub, attached to every run's DSM world and
    /// network (shared across runs: histograms and counters aggregate
    /// over the whole cell).
    pub obs: Option<Hub>,
    /// Coherence modes reported, in row order (default:
    /// [`GaExperiment::default_modes`] — sync, async, the paper's five
    /// ages). The synchronous reference still runs internally to set the
    /// quality bar when `sync` is excluded, but it is then neither
    /// reported nor instrumented — restricting to a single `age=N` mode
    /// yields a report whose histograms describe that mode alone, which
    /// is what makes `nscc diff` of two ages meaningful.
    pub modes: Vec<Coherence>,
    /// Blocked reads degrade to the freshest cached value after this long
    /// (chaos runs only; `None` keeps the paper's wait-forever reads).
    pub read_timeout: Option<SimTime>,
    /// Heartbeat period for the failure detector's daemons (chaos runs
    /// only; `None` spawns none).
    pub heartbeat: Option<SimTime>,
    /// Watchdog: virtual-time limit per parallel run. Under faults a run
    /// that hangs (e.g. every retransmit of a barrier message lost) is
    /// cut here and reported as a failure with a [`FaultReport`] instead
    /// of wedging the sweep.
    pub watchdog: Option<SimTime>,
    /// Crash recovery for islands with `crash_and_restart` windows in the
    /// fault plan (chaos runs, barrier-free modes only). Warm recovery
    /// checkpoints every `age` generations — rollback then stays within
    /// the staleness `Global_Read` already tolerates (§4.1) — while cold
    /// restarts are the baseline it is measured against. `None` (the
    /// default) restarts nodes with whatever state they had, as before.
    pub recovery: Option<RecoveryStyle>,
    /// Deliberate coherence sabotage for audit-pipeline validation: each
    /// node releases its first `inject_stale` would-block `Global_Read`s
    /// immediately with whatever stale value it has cached, violating the
    /// age bound on purpose (`NSCC_INJECT_STALE`). The emitted `ReadDone`
    /// carries the true (excess) staleness, so the audit layer's
    /// staleness monitor must flag every injected release. 0 disables.
    pub inject_stale: u64,
    /// Chandy–Lamport consistent snapshots on barrier-free parallel runs:
    /// `Some(every)` has rank 0 initiate a marker wave every `every`
    /// generations; completed cuts become the preferred warm-restore
    /// source. Islands never pause on the snapshot path, and snapshot-on
    /// runs stay byte-identical to snapshot-off runs outside the report's
    /// `recovery` section. `None` (the default) disables the protocol.
    pub snapshots: Option<u64>,
    /// Crash supervision: when set, every island crash consults a shared
    /// [`Supervisor`] built from this policy — restarts come with capped
    /// exponential backoff, and an exhausted per-rank budget retires the
    /// island so the run completes degraded instead of deadlocking.
    pub supervision: Option<SupervisorPolicy>,
    /// Directory for persisting completed consistent cuts
    /// (`CkptKind::ConsistentCut` generations, one per sealed wave, cut
    /// id as the generation number). `None` keeps cuts in memory only;
    /// ignored unless `snapshots` is on. `nscc inspect --ckpt` renders
    /// the resulting store with a `kind` column.
    pub snap_dir: Option<std::path::PathBuf>,
}

impl GaExperiment {
    /// Paper-like defaults at a bench-friendly scale.
    pub fn new(func: TestFn, procs: usize) -> Self {
        GaExperiment {
            func,
            procs,
            generations: 200,
            cap_factor: 3,
            runs: 5,
            base_seed: 1000,
            platform: Platform::paper_ethernet(procs),
            cost: CostModel::default(),
            target_fraction: 0.75,
            obs: None,
            modes: Self::default_modes(),
            read_timeout: None,
            heartbeat: None,
            watchdog: None,
            recovery: None,
            inject_stale: 0,
            snapshots: None,
            supervision: None,
            snap_dir: None,
        }
    }

    /// The five competitor families of Figure 2: synchronous, fully
    /// asynchronous, and `Global_Read` at the paper's five ages.
    pub fn default_modes() -> Vec<Coherence> {
        [Coherence::Synchronous, Coherence::FullyAsync]
            .into_iter()
            .chain(
                PAPER_AGES
                    .iter()
                    .map(|&a| Coherence::PartialAsync { age: a }),
            )
            .collect()
    }
}

/// Measurements for one mode, averaged over runs.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// The mode's label (`serial`, `sync`, `async`, `age=N`).
    pub label: String,
    /// Mean completion time.
    pub mean_time: SimTime,
    /// Mean speedup over the serial baseline.
    pub speedup: f64,
    /// Mean best fitness across islands and runs.
    pub mean_best: f64,
    /// Mean generations executed per island.
    pub mean_generations: f64,
    /// Fraction of runs in which every island reached the target.
    pub success_rate: f64,
    /// Mean messages sent per run (update messages).
    pub mean_messages: f64,
    /// Mean warp metric over the run (1.0 = stable network).
    pub mean_warp: f64,
    /// Aggregate DSM counters (summed over runs).
    pub dsm: DsmStats,
    /// Aggregate message-layer counters (summed over runs) — includes
    /// retransmits, suppressed duplicates and give-ups when the reliable
    /// layer is on.
    pub comm: CommStats,
    /// Crash recoveries performed across all islands and runs.
    pub restores: u64,
    /// Largest warm-restore rollback (generations) seen in any run.
    pub max_rollback: u64,
}

/// Full result of one experiment cell.
#[derive(Debug, Clone)]
pub struct GaExpResult {
    /// The cell's configuration echo.
    pub func: TestFn,
    /// Processor count.
    pub procs: usize,
    /// Serial baseline mean time.
    pub serial_time: SimTime,
    /// Serial baseline mean best fitness.
    pub serial_best: f64,
    /// One row per mode: sync, async, each age.
    pub modes: Vec<ModeResult>,
    /// Aggregate network counters over every parallel run in the cell.
    pub net: NetStats,
    /// Aggregate message-layer counters over every reported run.
    pub comm: CommStats,
    /// One structured report per parallel run the watchdog (or deadlock
    /// detector) cut short under chaos — empty on fault-free cells.
    pub fault_reports: Vec<FaultReport>,
    /// What the snapshot protocol and the supervision layer did, summed
    /// over every run that had either enabled (`None` when neither was).
    pub recovery: Option<RecoverySummary>,
}

impl GaExpResult {
    /// The best partially-asynchronous row (among fully-converging
    /// settings; falls back to the best success rate otherwise).
    pub fn best_partial(&self) -> &ModeResult {
        let ages = || self.modes.iter().filter(|m| m.label.starts_with("age="));
        ages()
            .filter(|m| m.success_rate >= 1.0)
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .or_else(|| ages().max_by(|a, b| a.speedup.total_cmp(&b.speedup)))
            .expect("age rows exist")
    }

    /// The best competitor (serial = 1.0, sync, async) among
    /// fully-converging settings — a version that fails to converge is
    /// not a competitor (the paper ensured convergence per trial).
    pub fn best_competitor_speedup(&self) -> f64 {
        self.modes
            .iter()
            .filter(|m| (m.label == "sync" || m.label == "async") && m.success_rate >= 1.0)
            .map(|m| m.speedup)
            .fold(1.0, f64::max) // serial itself has speedup 1.0
    }

    /// The paper's headline metric: best partial over best competitor.
    pub fn improvement(&self) -> f64 {
        self.best_partial().speedup / self.best_competitor_speedup() - 1.0
    }
}

/// One parallel run's raw measurements.
struct RunMeasure {
    time: SimTime,
    /// Latest instant at which any island improved its best-ever fitness.
    last_improve: SimTime,
    best: f64,
    generations: f64,
    success: bool,
    messages: u64,
    warp: f64,
    dsm: DsmStats,
    net: NetStats,
    comm: CommStats,
    restores: u64,
    max_rollback: u64,
    /// Set when the run was cut short (watchdog/deadlock under chaos).
    fault: Option<FaultReport>,
    /// Snapshot/supervision summary (`None` when neither was enabled).
    recovery: Option<RecoverySummary>,
}

/// Run one parallel GA configuration once. `observe` gates hub
/// attachment, so internal reference runs of unreported modes don't
/// pollute the cell's histograms. `inject` gates the chaos machinery
/// (fault plan, read timeouts, heartbeats, watchdog): the bar-setting
/// synchronous reference always runs with it off, so the quality target
/// describes the clean platform.
fn run_parallel_once(
    exp: &GaExperiment,
    mode: Coherence,
    stop: nscc_ga::StopPolicy,
    seed: u64,
    observe: bool,
    inject: bool,
) -> Result<RunMeasure, SimError> {
    let p = exp.procs;
    let chaos = inject
        && (exp.platform.faults.is_some()
            || exp.watchdog.is_some()
            || exp.read_timeout.is_some()
            || exp.heartbeat.is_some());
    let mut sim = SimBuilder::new(seed);
    let platform = if inject {
        exp.platform.clone()
    } else {
        Platform {
            faults: None,
            ..exp.platform.clone()
        }
    };
    let net = platform.build(&mut sim, seed);
    let warp = WarpMeter::new();

    let mut dir = Directory::new();
    let locs = dir.add_per_rank("best", p);
    let mut world: DsmWorld<MigrantBatch> =
        DsmWorld::new(net.clone(), p, platform.msg.clone(), dir).with_warp(warp.clone());
    if let Some(hub) = exp.obs.as_ref().filter(|_| observe) {
        // One hub often observes many back-to-back programs (sweeps);
        // mark the boundary so an attached audit tap can reset its
        // per-program monitor state (barrier epochs, seq dedup, write
        // watermarks all legitimately restart here).
        hub.note_run_boundary();
        net.attach_obs(hub.clone());
        world = world.with_obs(hub.clone());
        // The sampling profiler is driven by the scheduler; only attach
        // it there when profiling is on, so plain json/trace runs keep
        // their span-free reports byte-for-byte.
        if hub.profile_period() > 0 {
            sim.attach_obs(hub.clone());
        }
    }
    // Wall-clock scheduler accounting is span-free and outside the report's
    // deterministic sections, so it attaches whenever requested — even on
    // unobserved reference runs, whose real cost is still real cost.
    if let Some(hub) = exp.obs.as_ref().filter(|h| h.wants_wall()) {
        sim.attach_wall(hub.clone());
    }
    if exp.inject_stale > 0 && observe {
        world = world.with_stale_injection(exp.inject_stale);
    }
    if chaos {
        if let Some(to) = exp.read_timeout {
            world = world.with_read_timeout(to);
        }
        if let Some(period) = exp.heartbeat {
            world.spawn_heartbeats(&mut sim, period);
        }
        if let Some(limit) = exp.watchdog {
            sim.time_limit(limit);
        }
    }
    for &l in &locs {
        world.set_initial(l, Vec::new());
    }

    let board = ConvergenceBoard::new(p);
    let outcomes: Arc<Mutex<Vec<Option<IslandOutcome>>>> = Arc::new(Mutex::new(vec![None; p]));
    // Consistent snapshots and supervision ride on injected, barrier-free
    // parallel runs only (the synchronous reference must stay exactly the
    // paper's program; under a barrier every generation is already a
    // consistent cut). Snapshots run even on fault-free plans — that is
    // precisely the configuration the byte-identity guarantee is proven
    // against.
    let snap_cfg = exp
        .snapshots
        .filter(|_| inject && p > 1 && !mode.uses_barrier())
        .map(|every| {
            let mut board = SnapshotBoard::new(p);
            if let Some(dir) = &exp.snap_dir {
                match nscc_ckpt::CkptStore::open(dir) {
                    Ok(store) => board = board.with_store(store),
                    Err(e) => eprintln!(
                        "warning: consistent cuts stay in memory — cannot open {}: {e}",
                        dir.display()
                    ),
                }
            }
            SnapConfig {
                every: every.max(1),
                plane: MarkerPlane::new(p, SimTime::from_millis(1)),
                board,
            }
        });
    if let Some(sc) = &snap_cfg {
        // Should the run wedge, the deadlock report names the marker
        // plane's open waves and per-channel in-flight recording depths.
        let board = sc.board.clone();
        sim.deadlock_note(move || board.wave_notes());
    }
    let supervisor = exp
        .supervision
        .filter(|_| inject && !mode.uses_barrier())
        .map(Supervisor::new);
    let cfg = IslandConfig {
        func: exp.func,
        params: GaParams::default(),
        cost: exp.cost.clone(),
        mode,
        migration_count: GaParams::default().pop_size / 2,
        stop,
        adaptive: None,
        recovery: None,
        snap: snap_cfg.clone(),
        supervisor: supervisor.clone(),
    };
    let recovery_summary = |outs: &[Option<IslandOutcome>]| -> Option<RecoverySummary> {
        if snap_cfg.is_none() && supervisor.is_none() {
            return None;
        }
        let mut sum = RecoverySummary::default();
        if let Some(sc) = &snap_cfg {
            let c = sc.board.counters();
            sum.snapshots_started = c.started;
            sum.snapshots_completed = c.completed;
            sum.inflight_recorded = c.inflight_recorded;
        }
        if let Some(sup) = &supervisor {
            sup.fill(&mut sum);
        }
        sum.cut_restores = outs.iter().flatten().map(|o| o.cut_restores).sum();
        sum.restores = outs.iter().flatten().map(|o| o.restores).sum();
        sum.max_rollback = outs
            .iter()
            .flatten()
            .map(|o| o.max_rollback)
            .max()
            .unwrap_or(0);
        Some(sum)
    };
    // Crash-with-restart windows become per-rank recovery plans on the
    // barrier-free disciplines. The checkpoint cadence is the age bound
    // (min 1) under Global_Read — so a warm restore never rolls back
    // further than the staleness the discipline already tolerates — and a
    // conservative 5 generations for the fully asynchronous free-for-all.
    let recovery_for = |rank: usize| -> Option<RecoveryPlan> {
        let style = exp.recovery?;
        if !chaos || mode.uses_barrier() {
            return None;
        }
        let plan = exp.platform.faults.as_ref()?;
        let mut crashes: Vec<(SimTime, SimTime)> = plan
            .crashes()
            .iter()
            .filter(|c| c.node as usize == rank)
            .filter_map(|c| c.restart.map(|restart| (c.at, restart)))
            .collect();
        if crashes.is_empty() {
            return None;
        }
        crashes.sort_by_key(|&(at, _)| at);
        let every = match mode {
            Coherence::PartialAsync { age } => age.max(1),
            _ => 5,
        };
        Some(RecoveryPlan {
            every,
            crashes,
            style,
        })
    };
    for r in 0..p {
        let node = world.node(r);
        let locs = locs.clone();
        let mut cfg = cfg.clone();
        cfg.recovery = recovery_for(r);
        let board = board.clone();
        let outcomes = Arc::clone(&outcomes);
        sim.spawn(format!("island{r}"), move |ctx| {
            let out = run_island(ctx, node, &locs, &cfg, &board);
            outcomes.lock()[r] = Some(out);
        });
    }
    let report = match sim.run() {
        Ok(report) => report,
        Err(err) if chaos => {
            // Under chaos a wedged or over-budget run is data, not a
            // crash: report what the islands achieved before the cut and
            // attach the structured diagnosis.
            let at = match &err {
                SimError::Deadlock { at, .. } => *at,
                SimError::TimeLimitExceeded { limit } => *limit,
                _ => exp.watchdog.unwrap_or(SimTime::ZERO),
            };
            let outs = outcomes.lock();
            let done = outs.iter().flatten().count().max(1) as f64;
            return Ok(RunMeasure {
                time: at,
                last_improve: at,
                best: outs.iter().flatten().map(|o| o.best).sum::<f64>() / done,
                generations: outs
                    .iter()
                    .flatten()
                    .map(|o| o.generations as f64)
                    .sum::<f64>()
                    / done,
                success: false,
                messages: world.comm_stats().sent,
                warp: warp.mean(),
                dsm: world.total_stats(),
                net: net.stats(),
                comm: world.comm_stats(),
                restores: outs.iter().flatten().map(|o| o.restores).sum(),
                max_rollback: outs
                    .iter()
                    .flatten()
                    .map(|o| o.max_rollback)
                    .max()
                    .unwrap_or(0),
                fault: Some(
                    FaultReport::from_sim_error(seed, &err)
                        .with_rto_cap(platform.msg.reliable.as_ref().map(|rc| rc.max_rto)),
                ),
                recovery: recovery_summary(&outs),
            });
        }
        Err(err) => return Err(err),
    };
    let outs = outcomes.lock();
    // Quality bar: the mean best-ever across islands (a per-subpopulation
    // criterion, as the paper uses).
    let best = outs.iter().flatten().map(|o| o.best).sum::<f64>() / p as f64;
    let gens: f64 = outs
        .iter()
        .flatten()
        .map(|o| o.generations as f64)
        .sum::<f64>()
        / p as f64;
    let success = match stop {
        nscc_ga::StopPolicy::FixedGenerations(_) => true,
        nscc_ga::StopPolicy::TargetQuality { .. } => {
            outs.iter().flatten().all(|o| o.time_to_target.is_some())
        }
    };
    let last_improve = outs
        .iter()
        .flatten()
        .map(|o| o.time_of_last_improvement)
        .max()
        .unwrap_or(report.end_time);
    let restores: u64 = outs.iter().flatten().map(|o| o.restores).sum();
    let max_rollback = outs
        .iter()
        .flatten()
        .map(|o| o.max_rollback)
        .max()
        .unwrap_or(0);
    // The age-bounded-recovery invariant (§4.1) — under Global_Read a warm
    // restore may never roll a node back further than the staleness bound —
    // is no longer a process-killing assert here. Every Restore event
    // carries its bound, and the audit layer's rollback monitor turns an
    // excess into a structured violation (report `audit` section, `nscc
    // gate` exit 2) with flight-recorder context instead of a panic.
    Ok(RunMeasure {
        time: report.end_time,
        last_improve,
        best,
        generations: gens,
        success,
        messages: world.comm_stats().sent,
        warp: warp.mean(),
        dsm: world.total_stats(),
        net: net.stats(),
        comm: world.comm_stats(),
        restores,
        max_rollback,
        fault: None,
        recovery: recovery_summary(&outs),
    })
}

/// Run the full experiment cell: serial baseline plus every mode in
/// `exp.modes`.
pub fn run_ga_experiment(exp: &GaExperiment) -> Result<GaExpResult, SimError> {
    let modes = exp.modes.clone();
    let sync_ix = modes
        .iter()
        .position(|m| matches!(m, Coherence::Synchronous));

    let mut serial_time_sum = SimTime::ZERO;
    let mut serial_best_sum = 0.0;
    let mut acc: Vec<Vec<RunMeasure>> = (0..modes.len()).map(|_| Vec::new()).collect();

    for r in 0..exp.runs {
        let seed = exp.base_seed + r as u64;
        // Synchronous reference: a fixed generation budget (the paper's
        // 1000). Its achieved quality is the bar, and its time is the
        // instant its quality stopped improving (post-convergence
        // spinning is not billed to it). It runs even when `sync` is not
        // a reported mode (the bar must stay identical across mode
        // subsets), but is only observed when reported. It always runs
        // on the clean platform: the quality bar must describe what the
        // application achieves, not what the fault plan permits.
        let mut sync_measure = run_parallel_once(
            exp,
            Coherence::Synchronous,
            nscc_ga::StopPolicy::FixedGenerations(exp.generations),
            seed,
            sync_ix.is_some(),
            false,
        )?;
        // Quality bar: within 10% of the synchronous quality (absolute
        // tolerance guards bit-resolution floors near zero).
        let q_sync = sync_measure.best;
        let target = q_sync + 0.10 * q_sync.abs() + 1e-9;
        sync_measure.time = sync_measure.last_improve;
        if let Some(ix) = sync_ix {
            acc[ix].push(sync_measure);
        }

        // Serial baseline: total population on one node, timed to the
        // same quality bar.
        let serial = SerialGa::new(
            exp.func,
            GaParams::with_pop_size(50 * exp.procs),
            exp.cost.clone(),
            seed ^ 0x5E71A1,
        )
        .run(exp.generations * exp.cap_factor);
        let t_serial = serial.time_to_quality(target).unwrap_or(serial.time);
        serial_time_sum += t_serial;
        serial_best_sum += serial.best;

        let stop = nscc_ga::StopPolicy::TargetQuality {
            target,
            cap: exp.generations * exp.cap_factor,
        };
        for (mi, &mode) in modes.iter().enumerate() {
            if matches!(mode, Coherence::Synchronous) {
                continue;
            }
            acc[mi].push(run_parallel_once(exp, mode, stop, seed, true, true)?);
        }
    }

    let runs = exp.runs as f64;
    let serial_time = serial_time_sum / exp.runs as u64;
    let mut net_total = NetStats::default();
    let mut comm_total = CommStats::default();
    let mut fault_reports = Vec::new();
    let mut recovery_total: Option<RecoverySummary> = None;
    let mode_results = modes
        .iter()
        .zip(acc)
        .map(|(mode, ms)| {
            // A run that capped out without reaching the quality bar is a
            // failure (the paper "ensured convergence for every trial"):
            // its short cap time must not flatter the mode, so the mean
            // time is taken over *successful* runs only. A mode with no
            // successful run gets speedup 0 (DNF).
            let successes: Vec<&RunMeasure> = ms.iter().filter(|m| m.success).collect();
            let mean_time: SimTime = if successes.is_empty() {
                SimTime::MAX
            } else {
                successes.iter().map(|m| m.time).sum::<SimTime>() / successes.len() as u64
            };
            let speedup = if successes.is_empty() {
                0.0
            } else {
                serial_time.as_secs_f64() / mean_time.as_secs_f64()
            };
            let mut dsm = DsmStats::default();
            let mut comm = CommStats::default();
            for m in &ms {
                dsm.merge(&m.dsm);
                comm.merge(&m.comm);
                net_total.merge(&m.net);
                comm_total.merge(&m.comm);
                if let Some(f) = &m.fault {
                    fault_reports.push(f.clone());
                }
                if let Some(rs) = &m.recovery {
                    recovery_total
                        .get_or_insert_with(RecoverySummary::default)
                        .merge(rs);
                }
            }
            ModeResult {
                label: mode.label(),
                mean_time,
                speedup,
                mean_best: ms.iter().map(|m| m.best).sum::<f64>() / runs,
                mean_generations: ms.iter().map(|m| m.generations).sum::<f64>() / runs,
                success_rate: successes.len() as f64 / runs,
                mean_messages: ms.iter().map(|m| m.messages as f64).sum::<f64>() / runs,
                mean_warp: ms.iter().map(|m| m.warp).sum::<f64>() / runs,
                dsm,
                comm,
                restores: ms.iter().map(|m| m.restores).sum(),
                max_rollback: ms.iter().map(|m| m.max_rollback).max().unwrap_or(0),
            }
        })
        .collect();

    Ok(GaExpResult {
        func: exp.func,
        procs: exp.procs,
        serial_time,
        serial_best: serial_best_sum / runs,
        modes: mode_results,
        net: net_total,
        comm: comm_total,
        fault_reports,
        recovery: recovery_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cell_produces_consistent_rows() {
        let exp = GaExperiment {
            generations: 30,
            runs: 2,
            cap_factor: 4,
            cost: CostModel::deterministic(),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        assert_eq!(res.modes.len(), 7); // sync, async, 5 ages
        assert!(res.serial_time > SimTime::ZERO);
        for m in &res.modes {
            assert!(m.mean_time > SimTime::ZERO, "{}", m.label);
            assert!(m.speedup > 0.0);
            assert!(m.mean_messages > 0.0);
        }
        // Parallel exploration with 2x the population should reach the
        // relaxed serial target reliably.
        let ok_rate: f64 =
            res.modes.iter().map(|m| m.success_rate).sum::<f64>() / res.modes.len() as f64;
        assert!(ok_rate > 0.8, "success rate {ok_rate}");
        let _ = res.best_partial();
        assert!(res.best_competitor_speedup() >= 1.0);
    }

    #[test]
    fn chaos_cell_completes_and_reports_resilience_counters() {
        use crate::platform::Platform;
        use nscc_faults::FaultPlan;
        use nscc_msg::ReliableConfig;

        let mut platform = Platform::paper_ethernet(2).with_faults(
            FaultPlan::new(42)
                .loss(0.05)
                .crash(1, SimTime::from_millis(400)),
        );
        platform.msg.reliable = Some(ReliableConfig::default());
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cap_factor: 3,
            cost: CostModel::deterministic(),
            platform,
            modes: vec![Coherence::PartialAsync { age: 5 }],
            read_timeout: Some(SimTime::from_millis(50)),
            heartbeat: Some(SimTime::from_millis(20)),
            watchdog: Some(SimTime::from_secs(600)),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        assert_eq!(res.modes.len(), 1);
        let m = &res.modes[0];
        // The run must have finished (possibly degraded, never wedged):
        // either cleanly or via the watchdog with a structured report.
        assert!(m.success_rate >= 1.0 || !res.fault_reports.is_empty());
        // With 5% loss on every frame the fault layer must have bitten,
        // and the reliable layer must have answered.
        assert!(res.net.dropped > 0, "no frames dropped");
        assert!(m.comm.retransmits > 0, "no retransmits recorded");
        // Determinism: the same seeds reproduce the same resilience story.
        let res2 = run_ga_experiment(&exp).unwrap();
        assert_eq!(res.net.dropped, res2.net.dropped);
        assert_eq!(m.comm.retransmits, res2.modes[0].comm.retransmits);
        assert_eq!(
            res.fault_reports.len(),
            res2.fault_reports.len(),
            "fault reports must reproduce per seed"
        );
    }

    #[test]
    fn crash_with_warm_recovery_bounds_rollback_to_age() {
        use crate::platform::Platform;
        use nscc_faults::FaultPlan;

        let platform =
            Platform::paper_ethernet(2).with_faults(FaultPlan::new(42).crash_and_restart(
                1,
                SimTime::from_millis(40),
                SimTime::from_millis(55),
            ));
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cap_factor: 3,
            cost: CostModel::deterministic(),
            platform,
            modes: vec![Coherence::PartialAsync { age: 5 }],
            watchdog: Some(SimTime::from_secs(600)),
            recovery: Some(RecoveryStyle::Warm),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        let m = &res.modes[0];
        assert_eq!(m.restores, 1, "the crash window must be taken");
        assert!(
            m.max_rollback <= 5,
            "rollback {} exceeds the age bound",
            m.max_rollback
        );
        // Determinism: the same seed reproduces the same recovery story.
        let res2 = run_ga_experiment(&exp).unwrap();
        assert_eq!(res2.modes[0].restores, 1);
        assert_eq!(res2.modes[0].max_rollback, m.max_rollback);
    }

    #[test]
    fn snapshots_feed_warm_restores_and_stay_invisible() {
        use crate::platform::Platform;
        use nscc_faults::FaultPlan;

        let platform =
            Platform::paper_ethernet(2).with_faults(FaultPlan::new(42).crash_and_restart(
                1,
                SimTime::from_millis(40),
                SimTime::from_millis(55),
            ));
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cap_factor: 3,
            cost: CostModel::deterministic(),
            platform,
            modes: vec![Coherence::PartialAsync { age: 5 }],
            watchdog: Some(SimTime::from_secs(600)),
            recovery: Some(RecoveryStyle::Warm),
            snapshots: Some(5),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        let rec = res.recovery.as_ref().expect("snapshots enabled");
        assert!(
            rec.snapshots_started >= 1 && rec.snapshots_completed >= 1,
            "marker waves must complete: {rec:?}"
        );
        assert_eq!(rec.restores, 1, "the crash window must be taken");
        assert!(
            rec.max_rollback <= 5,
            "rollback {} exceeds the age bound",
            rec.max_rollback
        );
        // Snapshots must not perturb the run: the same cell with the
        // protocol off reproduces the exact same application story.
        let off = GaExperiment {
            snapshots: None,
            ..exp.clone()
        };
        let res_off = run_ga_experiment(&off).unwrap();
        assert!(res_off.recovery.is_none(), "no recovery section when off");
        let (m_on, m_off) = (&res.modes[0], &res_off.modes[0]);
        assert_eq!(m_on.mean_time, m_off.mean_time, "virtual time shifted");
        assert_eq!(m_on.mean_best, m_off.mean_best, "evolution shifted");
        assert_eq!(m_on.mean_messages, m_off.mean_messages);
        assert_eq!(m_on.max_rollback, m_off.max_rollback);
    }

    #[test]
    fn supervisor_budget_exhaustion_completes_degraded() {
        use crate::platform::Platform;
        use nscc_faults::FaultPlan;

        // Two crash windows against a budget of one: the first restart is
        // approved, the second crash exhausts the budget and the island
        // retires. The run must complete (degraded), not deadlock.
        let plan = FaultPlan::new(7)
            .crash_and_restart(1, SimTime::from_millis(20), SimTime::from_millis(25))
            .crash_and_restart(1, SimTime::from_millis(32), SimTime::from_millis(37));
        let platform = Platform::paper_ethernet(2).with_faults(plan);
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cap_factor: 3,
            cost: CostModel::deterministic(),
            platform,
            modes: vec![Coherence::PartialAsync { age: 5 }],
            watchdog: Some(SimTime::from_secs(600)),
            recovery: Some(RecoveryStyle::Warm),
            snapshots: Some(5),
            supervision: Some(SupervisorPolicy {
                max_restarts: 1,
                backoff_base: SimTime::from_millis(2),
                backoff_cap: SimTime::from_millis(4),
            }),
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        assert!(res.fault_reports.is_empty(), "degraded ≠ wedged");
        let rec = res.recovery.as_ref().expect("supervision enabled");
        assert_eq!(rec.restarts_approved, 1, "first crash restarts");
        assert_eq!(rec.give_ups, 1, "second crash exhausts the budget");
        assert_eq!(rec.failed_ranks, vec![1]);
        assert_eq!(rec.restores, 1, "only the approved restart restores");
        assert!(
            rec.max_rollback <= 5,
            "rollback {} exceeds the age bound",
            rec.max_rollback
        );
        assert!(rec.max_backoff_ns > 0, "backoff must have been imposed");
        // Determinism: the same seed reproduces the same degradation.
        let res2 = run_ga_experiment(&exp).unwrap();
        assert_eq!(res2.recovery, res.recovery);
    }

    #[test]
    fn restricted_mode_list_reports_only_those_modes() {
        let hub = Hub::new();
        let exp = GaExperiment {
            generations: 20,
            runs: 1,
            cap_factor: 4,
            cost: CostModel::deterministic(),
            obs: Some(hub.clone()),
            modes: vec![Coherence::PartialAsync { age: 5 }],
            ..GaExperiment::new(TestFn::F1Sphere, 2)
        };
        let res = run_ga_experiment(&exp).unwrap();
        assert_eq!(res.modes.len(), 1);
        assert_eq!(res.modes[0].label, "age=5");
        // The internal synchronous reference still ran (it sets the
        // quality bar) but must not have been observed: a sync run would
        // have recorded barrier events.
        let summary = hub.summary();
        assert_eq!(summary.barriers, 0);
        assert!(summary.reads > 0);
    }
}
