//! # nscc-core — the NSCC experiment layer
//!
//! Assembles the substrates (simulated platform, DSM, applications) into
//! the paper's experiments and regenerates every table and figure:
//!
//! * [`Platform`] — interconnect + message-cost + background-load presets
//!   mirroring the paper's IBM SP2 / 10 Mbps Ethernet testbed.
//! * [`run_ga_experiment`] — one Figure 2/4 cell: serial baseline, then
//!   synchronous / fully-asynchronous / `Global_Read` (ages 0–30) island
//!   GAs, with speedups, quality and warp measurements.
//! * [`run_bayes_experiment`] — one Table 2/Figure 3 cell: sequential
//!   logic sampling plus the three parallel disciplines.
//! * [`RunReport`] — machine-readable merged run record
//!   (`BENCH_<name>.json`) combining layer stats with the observability
//!   hub's histograms and counters.
//! * [`FaultPlan`] (via [`Platform::with_faults`]) — seeded chaos:
//!   frame loss/duplication/delay, degradation windows, node crashes and
//!   partitions, with runs that wedge cut by a watchdog into structured
//!   [`FaultReport`]s instead of hung sweeps.
//! * [`fmt`] — plain-text table rendering shared by the bench binaries.

#![warn(missing_docs)]

mod bayes_exp;
pub mod fmt;
mod ga_exp;
mod platform;
mod report;

pub use bayes_exp::{
    run_bayes_experiment, run_sequential, BayesExpResult, BayesExperiment, BayesModeResult,
};
pub use ga_exp::{run_ga_experiment, GaExpResult, GaExperiment, ModeResult, PAPER_AGES};
pub use nscc_faults::{FaultPlan, FaultReport, FaultStats, FaultStatsHandle};
pub use nscc_ga::{RecoveryPlan, RecoveryStyle};
pub use platform::{Interconnect, Platform};
pub use report::RunReport;
