//! The IBM SP2 high-performance switch model.
//!
//! Contrast platform for the Ethernet bus: a crossbar where each node has a
//! dedicated full-duplex link into the fabric, so a frame only contends with
//! other traffic at its own source (egress) and destination (ingress)
//! ports — never with unrelated node pairs. The paper reports Ethernet
//! results because its applications' communication demands were modest
//! relative to the switch (§4.1); this model lets the benches demonstrate
//! exactly that claim.

use nscc_sim::SimTime;

use crate::medium::{Medium, MediumStats, NodeId};

/// Configuration of the crossbar switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Per-link bandwidth in bits per second (SP2 TB2 era: ~40 MB/s).
    pub link_bandwidth_bps: f64,
    /// Fabric latency per frame.
    pub latency: SimTime,
    /// Per-frame overhead bytes.
    pub frame_overhead: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            link_bandwidth_bps: 320e6, // 40 MB/s
            latency: SimTime::from_micros(40),
            frame_overhead: 24,
        }
    }
}

/// Crossbar switch medium: per-port queues, no shared bottleneck.
pub struct Sp2Switch {
    cfg: SwitchConfig,
    /// Instant each node's egress link becomes free (grown on demand).
    egress_free: Vec<SimTime>,
    /// Instant each node's ingress link becomes free.
    ingress_free: Vec<SimTime>,
    stats: MediumStats,
}

impl Sp2Switch {
    /// A switch with the given configuration.
    pub fn new(cfg: SwitchConfig) -> Self {
        Sp2Switch {
            cfg,
            egress_free: Vec::new(),
            ingress_free: Vec::new(),
            stats: MediumStats::default(),
        }
    }

    /// Default SP2-like switch.
    pub fn sp2() -> Self {
        Sp2Switch::new(SwitchConfig::default())
    }

    fn ensure(&mut self, node: NodeId) {
        let need = node.index() + 1;
        if self.egress_free.len() < need {
            self.egress_free.resize(need, SimTime::ZERO);
            self.ingress_free.resize(need, SimTime::ZERO);
        }
    }
}

impl Medium for Sp2Switch {
    fn transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        self.ensure(src);
        self.ensure(dst);
        let wire = (payload_bytes + self.cfg.frame_overhead) as u64;
        let tx = SimTime::from_secs_f64(wire as f64 * 8.0 / self.cfg.link_bandwidth_bps);

        let start = now
            .max(self.egress_free[src.index()])
            .max(self.ingress_free[dst.index()]);
        let end = start + tx;
        self.egress_free[src.index()] = end;
        self.ingress_free[dst.index()] = end;

        self.stats.frames += 1;
        self.stats.payload_bytes += payload_bytes as u64;
        self.stats.wire_bytes += wire;
        self.stats.queueing = self.stats.queueing.saturating_add(start - now);
        self.stats.busy = self.stats.busy.saturating_add(tx);

        end + self.cfg.latency
    }

    fn stats(&self) -> MediumStats {
        self.stats
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut sw = Sp2Switch::sp2();
        let a = sw.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 10_000);
        let b = sw.transmit(SimTime::ZERO, NodeId(2), NodeId(3), 10_000);
        assert_eq!(a, b, "disjoint node pairs must transfer in parallel");
        assert_eq!(sw.stats().queueing, SimTime::ZERO);
    }

    #[test]
    fn same_source_serializes() {
        let mut sw = Sp2Switch::sp2();
        let a = sw.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 10_000);
        let b = sw.transmit(SimTime::ZERO, NodeId(0), NodeId(2), 10_000);
        assert!(b > a, "frames from one source share its egress link");
    }

    #[test]
    fn same_destination_serializes() {
        let mut sw = Sp2Switch::sp2();
        let a = sw.transmit(SimTime::ZERO, NodeId(0), NodeId(2), 10_000);
        let b = sw.transmit(SimTime::ZERO, NodeId(1), NodeId(2), 10_000);
        assert!(b > a, "frames to one destination share its ingress link");
    }

    #[test]
    fn switch_is_much_faster_than_ethernet() {
        use crate::ethernet::EthernetBus;
        let mut sw = Sp2Switch::sp2();
        let mut eth = EthernetBus::ten_mbps(0);
        let s = sw.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        let e = eth.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        assert!(
            e.as_nanos() > 5 * s.as_nanos(),
            "Ethernet ({e}) should be much slower than the switch ({s})"
        );
    }
}
