//! # nscc-net — simulated interconnects for the NSCC reproduction
//!
//! Models of the two networks on the paper's IBM SP2 platform plus the
//! instrumentation the paper uses:
//!
//! * [`EthernetBus`] — the 10 Mbps shared-bus Ethernet all results are
//!   reported on: frames from every node serialize on one medium, so
//!   latency is a function of aggregate offered load (this is the mechanism
//!   behind the paper's message-flooding feedback loop).
//! * [`Sp2Switch`] — the SP2 crossbar switch (per-port contention only),
//!   used as the fast-interconnect contrast.
//! * [`IdealMedium`] — fixed latency, for unit tests and baselines.
//! * [`Network`] — the handle processes send through; schedules deliveries
//!   into [`nscc_sim::Mailbox`]es at medium-computed arrival times.
//! * [`spawn_loaders`] — the paper's background "network loader" program
//!   (0.5/1/2 Mbps of competing traffic between two extra nodes).
//! * [`WarpMeter`] — the *warp* load metric: inter-arrival over inter-send
//!   time of consecutive messages per sender (warp ≈ 1 ⇒ stable network).

#![warn(missing_docs)]

mod ethernet;
mod loader;
mod medium;
mod network;
mod switch;
mod warp;

pub use ethernet::{EthernetBus, EthernetConfig};
pub use loader::{spawn_loaders, LoaderConfig};
pub use medium::{DropReason, IdealMedium, Medium, MediumStats, NodeId, Transmission, Verdict};
pub use network::{NetStats, Network};
pub use switch::{Sp2Switch, SwitchConfig};
pub use warp::WarpMeter;
