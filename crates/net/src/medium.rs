//! The [`Medium`] abstraction: how frames acquire arrival times.

use nscc_sim::SimTime;

/// A network node (host) identifier. Distinct from a simulated process id:
/// several processes could share a node, and loader nodes need no process
/// mailboxes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cumulative counters a medium maintains about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct MediumStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Payload bytes accepted (excluding per-frame overhead).
    pub payload_bytes: u64,
    /// Bytes actually put on the wire (payload + framing overhead).
    pub wire_bytes: u64,
    /// Total time frames spent waiting for the medium (queueing delay).
    pub queueing: SimTime,
    /// Total time the medium spent transmitting.
    pub busy: SimTime,
}

impl MediumStats {
    /// Fold another medium's counters into this one (for run aggregation).
    pub fn merge(&mut self, other: &MediumStats) {
        self.frames += other.frames;
        self.payload_bytes += other.payload_bytes;
        self.wire_bytes += other.wire_bytes;
        self.queueing = self.queueing.saturating_add(other.queueing);
        self.busy = self.busy.saturating_add(other.busy);
    }
}

/// Why a fault layer decided not to deliver a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Random per-link message loss.
    Loss,
    /// The source or destination node is crashed (fail-silent).
    NodeDown,
    /// A network partition separates the endpoints.
    Partitioned,
}

impl DropReason {
    /// Short label for events and logs.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Loss => "loss",
            DropReason::NodeDown => "node_down",
            DropReason::Partitioned => "partitioned",
        }
    }
}

/// What should happen to a frame after the medium computed its arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver once at the planned arrival (the only verdict well-behaved
    /// media ever produce).
    Deliver,
    /// Deliver nothing: the frame occupied the wire but is lost.
    Drop(DropReason),
    /// Deliver twice: once at the planned arrival and again at `second`.
    Duplicate {
        /// Arrival instant of the spurious second copy.
        second: SimTime,
    },
}

/// A planned frame transmission: the arrival instant the medium computed
/// plus the delivery verdict a fault layer (if any) attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Arrival instant at the destination (`>= now`).
    pub arrival: SimTime,
    /// Whether/how the frame is actually delivered.
    pub verdict: Verdict,
    /// How much of `arrival` a fault layer injected on top of what the
    /// healthy medium would have charged (stall floors, degradation,
    /// delay faults). Zero for well-behaved media; the staleness tracer
    /// books it as the `fault` stage so `arrival - now - fault` is the
    /// baseline transit.
    pub fault: SimTime,
}

/// A transmission medium: computes when a frame submitted now will arrive,
/// updating whatever queue/contention state it keeps.
///
/// Implementations must be deterministic: the same sequence of
/// [`transmit`](Medium::transmit) calls must produce the same arrival times.
pub trait Medium: Send {
    /// Submit a frame of `payload_bytes` from `src` to `dst` at virtual time
    /// `now`; returns the arrival instant at `dst` (strictly `>= now`).
    fn transmit(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload_bytes: usize)
        -> SimTime;

    /// Submit a frame and also report a delivery [`Verdict`]. The default
    /// forwards to [`transmit`](Medium::transmit) and always delivers, so
    /// well-behaved media ([`IdealMedium`], the Ethernet bus, the SP2
    /// switch) need not know faults exist; a fault-injecting wrapper
    /// overrides this to drop, duplicate, or delay frames.
    fn plan_transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Transmission {
        Transmission {
            arrival: self.transmit(now, src, dst, payload_bytes),
            verdict: Verdict::Deliver,
            fault: SimTime::ZERO,
        }
    }

    /// Submit one *broadcast* frame reaching every node, if the medium
    /// supports hardware broadcast (a shared bus does: the frame is
    /// transmitted once and heard by all). Returns `None` when
    /// unsupported — the caller falls back to unicast fan-out (as on a
    /// crossbar switch).
    fn transmit_broadcast(
        &mut self,
        _now: SimTime,
        _src: NodeId,
        _payload_bytes: usize,
    ) -> Option<SimTime> {
        None
    }

    /// Counters accumulated so far.
    fn stats(&self) -> MediumStats;

    /// The earliest instant at which the medium could begin a new
    /// transmission submitted at `now` (i.e. `now` plus any queueing).
    /// Used for utilization probes and tests.
    fn next_free(&self, now: SimTime) -> SimTime;
}

/// Boxed media forward every method — including the overridable
/// [`plan_transmit`](Medium::plan_transmit)/[`transmit_broadcast`](Medium::transmit_broadcast)
/// hooks, so a boxed fault-injecting wrapper keeps its verdicts.
impl Medium for Box<dyn Medium> {
    fn transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        (**self).transmit(now, src, dst, payload_bytes)
    }

    fn plan_transmit(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Transmission {
        (**self).plan_transmit(now, src, dst, payload_bytes)
    }

    fn transmit_broadcast(
        &mut self,
        now: SimTime,
        src: NodeId,
        payload_bytes: usize,
    ) -> Option<SimTime> {
        (**self).transmit_broadcast(now, src, payload_bytes)
    }

    fn stats(&self) -> MediumStats {
        (**self).stats()
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        (**self).next_free(now)
    }
}

/// An idealized medium with a fixed latency and no contention: every frame
/// arrives exactly `latency` after submission. Useful as a baseline and for
/// unit-testing protocol layers without network effects.
#[derive(Debug, Clone)]
pub struct IdealMedium {
    latency: SimTime,
    stats: MediumStats,
}

impl IdealMedium {
    /// A medium with constant `latency` per frame.
    pub fn new(latency: SimTime) -> Self {
        IdealMedium {
            latency,
            stats: MediumStats::default(),
        }
    }

    /// Zero-latency instantaneous medium.
    pub fn instant() -> Self {
        IdealMedium::new(SimTime::ZERO)
    }
}

impl Medium for IdealMedium {
    fn transmit(
        &mut self,
        now: SimTime,
        _src: NodeId,
        _dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        self.stats.frames += 1;
        self.stats.payload_bytes += payload_bytes as u64;
        self.stats.wire_bytes += payload_bytes as u64;
        now + self.latency
    }

    fn stats(&self) -> MediumStats {
        self.stats
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_medium_fixed_latency() {
        let mut m = IdealMedium::new(SimTime::from_millis(2));
        let t0 = SimTime::from_millis(10);
        assert_eq!(
            m.transmit(t0, NodeId(0), NodeId(1), 1000),
            SimTime::from_millis(12)
        );
        // No contention: a second frame at the same instant also takes 2 ms.
        assert_eq!(
            m.transmit(t0, NodeId(2), NodeId(3), 1000),
            SimTime::from_millis(12)
        );
        assert_eq!(m.stats().frames, 2);
        assert_eq!(m.stats().payload_bytes, 2000);
    }

    #[test]
    fn instant_medium_delivers_now() {
        let mut m = IdealMedium::instant();
        let t0 = SimTime::from_secs(1);
        assert_eq!(m.transmit(t0, NodeId(0), NodeId(1), 64), t0);
    }

    #[test]
    fn default_plan_transmit_always_delivers() {
        let mut m = IdealMedium::new(SimTime::from_millis(3));
        let tx = m.plan_transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        assert_eq!(tx.arrival, SimTime::from_millis(3));
        assert_eq!(tx.verdict, Verdict::Deliver);
        assert_eq!(m.stats().frames, 1);
    }
}
