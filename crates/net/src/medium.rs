//! The [`Medium`] abstraction: how frames acquire arrival times.

use nscc_sim::SimTime;

/// A network node (host) identifier. Distinct from a simulated process id:
/// several processes could share a node, and loader nodes need no process
/// mailboxes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Cumulative counters a medium maintains about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct MediumStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Payload bytes accepted (excluding per-frame overhead).
    pub payload_bytes: u64,
    /// Bytes actually put on the wire (payload + framing overhead).
    pub wire_bytes: u64,
    /// Total time frames spent waiting for the medium (queueing delay).
    pub queueing: SimTime,
    /// Total time the medium spent transmitting.
    pub busy: SimTime,
}

impl MediumStats {
    /// Fold another medium's counters into this one (for run aggregation).
    pub fn merge(&mut self, other: &MediumStats) {
        self.frames += other.frames;
        self.payload_bytes += other.payload_bytes;
        self.wire_bytes += other.wire_bytes;
        self.queueing = self.queueing.saturating_add(other.queueing);
        self.busy = self.busy.saturating_add(other.busy);
    }
}

/// A transmission medium: computes when a frame submitted now will arrive,
/// updating whatever queue/contention state it keeps.
///
/// Implementations must be deterministic: the same sequence of
/// [`transmit`](Medium::transmit) calls must produce the same arrival times.
pub trait Medium: Send {
    /// Submit a frame of `payload_bytes` from `src` to `dst` at virtual time
    /// `now`; returns the arrival instant at `dst` (strictly `>= now`).
    fn transmit(&mut self, now: SimTime, src: NodeId, dst: NodeId, payload_bytes: usize)
        -> SimTime;

    /// Submit one *broadcast* frame reaching every node, if the medium
    /// supports hardware broadcast (a shared bus does: the frame is
    /// transmitted once and heard by all). Returns `None` when
    /// unsupported — the caller falls back to unicast fan-out (as on a
    /// crossbar switch).
    fn transmit_broadcast(
        &mut self,
        _now: SimTime,
        _src: NodeId,
        _payload_bytes: usize,
    ) -> Option<SimTime> {
        None
    }

    /// Counters accumulated so far.
    fn stats(&self) -> MediumStats;

    /// The earliest instant at which the medium could begin a new
    /// transmission submitted at `now` (i.e. `now` plus any queueing).
    /// Used for utilization probes and tests.
    fn next_free(&self, now: SimTime) -> SimTime;
}

/// An idealized medium with a fixed latency and no contention: every frame
/// arrives exactly `latency` after submission. Useful as a baseline and for
/// unit-testing protocol layers without network effects.
#[derive(Debug, Clone)]
pub struct IdealMedium {
    latency: SimTime,
    stats: MediumStats,
}

impl IdealMedium {
    /// A medium with constant `latency` per frame.
    pub fn new(latency: SimTime) -> Self {
        IdealMedium {
            latency,
            stats: MediumStats::default(),
        }
    }

    /// Zero-latency instantaneous medium.
    pub fn instant() -> Self {
        IdealMedium::new(SimTime::ZERO)
    }
}

impl Medium for IdealMedium {
    fn transmit(
        &mut self,
        now: SimTime,
        _src: NodeId,
        _dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        self.stats.frames += 1;
        self.stats.payload_bytes += payload_bytes as u64;
        self.stats.wire_bytes += payload_bytes as u64;
        now + self.latency
    }

    fn stats(&self) -> MediumStats {
        self.stats
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_medium_fixed_latency() {
        let mut m = IdealMedium::new(SimTime::from_millis(2));
        let t0 = SimTime::from_millis(10);
        assert_eq!(
            m.transmit(t0, NodeId(0), NodeId(1), 1000),
            SimTime::from_millis(12)
        );
        // No contention: a second frame at the same instant also takes 2 ms.
        assert_eq!(
            m.transmit(t0, NodeId(2), NodeId(3), 1000),
            SimTime::from_millis(12)
        );
        assert_eq!(m.stats().frames, 2);
        assert_eq!(m.stats().payload_bytes, 2000);
    }

    #[test]
    fn instant_medium_delivers_now() {
        let mut m = IdealMedium::instant();
        let t0 = SimTime::from_secs(1);
        assert_eq!(m.transmit(t0, NodeId(0), NodeId(1), 64), t0);
    }
}
