//! The *warp* network-load metric (§4.3 of the paper, after Park [14]).
//!
//! A warp sample at node *i* with respect to node *j* is the ratio of the
//! difference in **arrival** times of two consecutive messages from *j* to
//! the difference in their **send** times. Warp ≈ 1 means stable network
//! load; warp ≫ 1 means latency is growing, i.e. the network is loading up.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use nscc_sim::SimTime;

use crate::medium::NodeId;

#[derive(Default)]
struct WarpState {
    /// Last (send_time, arrival_time) seen per (receiver, sender) pair.
    last: HashMap<(NodeId, NodeId), (SimTime, SimTime)>,
    samples: Vec<f64>,
}

/// Collects warp samples across all receiver/sender pairs of one run.
#[derive(Clone, Default)]
pub struct WarpMeter {
    state: Arc<Mutex<WarpState>>,
}

impl WarpMeter {
    /// An empty meter.
    pub fn new() -> Self {
        WarpMeter::default()
    }

    /// Record a message from `sender` observed at `receiver`, stamped with
    /// its original `send_time` and its `arrival_time`. Produces one warp
    /// sample per consecutive pair from the same sender; the sample (if
    /// any) is returned so callers can forward it to an observability sink.
    pub fn observe(
        &self,
        receiver: NodeId,
        sender: NodeId,
        send_time: SimTime,
        arrival_time: SimTime,
    ) -> Option<f64> {
        let mut st = self.state.lock();
        let key = (receiver, sender);
        if let Some((prev_send, prev_arrival)) = st.last.insert(key, (send_time, arrival_time)) {
            let ds = send_time.saturating_sub(prev_send).as_secs_f64();
            let da = arrival_time.saturating_sub(prev_arrival).as_secs_f64();
            if ds > 0.0 {
                let sample = da / ds;
                st.samples.push(sample);
                return Some(sample);
            }
        }
        None
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.state.lock().samples.len()
    }

    /// True if no sample was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean warp over all samples (1.0 if no samples, i.e. "stable").
    pub fn mean(&self) -> f64 {
        let st = self.state.lock();
        if st.samples.is_empty() {
            1.0
        } else {
            st.samples.iter().sum::<f64>() / st.samples.len() as f64
        }
    }

    /// The p-th percentile (0..=100) of warp samples.
    pub fn percentile(&self, p: f64) -> f64 {
        let st = self.state.lock();
        if st.samples.is_empty() {
            return 1.0;
        }
        let mut v = st.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("warp samples are finite"));
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Largest warp sample.
    pub fn max(&self) -> f64 {
        let st = self.state.lock();
        st.samples.iter().cloned().fold(1.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn stable_network_warp_is_one() {
        let m = WarpMeter::new();
        // Constant 5 ms latency: inter-arrival == inter-send.
        for i in 0..10u64 {
            m.observe(NodeId(1), NodeId(0), t(10 * i), t(10 * i + 5));
        }
        assert_eq!(m.len(), 9);
        assert!((m.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn growing_latency_warp_exceeds_one() {
        let m = WarpMeter::new();
        // Latency grows 2 ms per message: arrivals spread out.
        for i in 0..10u64 {
            m.observe(NodeId(1), NodeId(0), t(10 * i), t(10 * i + 5 + 2 * i));
        }
        assert!(m.mean() > 1.0);
        assert!((m.mean() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn shrinking_latency_warp_below_one() {
        let m = WarpMeter::new();
        for i in 0..5u64 {
            m.observe(NodeId(1), NodeId(0), t(10 * i), t(10 * i + 20 - 3 * i));
        }
        assert!(m.mean() < 1.0);
    }

    #[test]
    fn pairs_are_tracked_independently() {
        let m = WarpMeter::new();
        m.observe(NodeId(1), NodeId(0), t(0), t(5));
        m.observe(NodeId(1), NodeId(2), t(0), t(50));
        // No cross-pair sample yet.
        assert!(m.is_empty());
        m.observe(NodeId(1), NodeId(0), t(10), t(15));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn observe_returns_the_sample() {
        let m = WarpMeter::new();
        assert_eq!(m.observe(NodeId(1), NodeId(0), t(0), t(5)), None);
        let s = m.observe(NodeId(1), NodeId(0), t(10), t(15));
        assert_eq!(s, Some(1.0));
        // Same send time twice: no inter-send gap, no sample.
        assert_eq!(m.observe(NodeId(1), NodeId(0), t(10), t(16)), None);
    }

    #[test]
    fn percentile_and_max() {
        let m = WarpMeter::new();
        // Two samples: warp 1.0 then warp 3.0.
        m.observe(NodeId(1), NodeId(0), t(0), t(5));
        m.observe(NodeId(1), NodeId(0), t(10), t(15));
        m.observe(NodeId(1), NodeId(0), t(20), t(45));
        assert!((m.max() - 3.0).abs() < 1e-9);
        assert!((m.percentile(0.0) - 1.0).abs() < 1e-9);
        assert!((m.percentile(100.0) - 3.0).abs() < 1e-9);
    }
}
