//! Background network-load generation (the paper's "network loader
//! program", §4.3).
//!
//! The paper loads the shared Ethernet with 0.5, 1, and 2 Mbps of competing
//! traffic produced by a loader program running on two extra nodes. We
//! reproduce that as a pair of daemon processes exchanging fixed-size junk
//! frames at the rate needed to hit the target offered load.

use nscc_sim::{SimBuilder, SimTime};

use crate::medium::NodeId;
use crate::network::Network;

/// Parameters of a background load generator.
#[derive(Debug, Clone)]
pub struct LoaderConfig {
    /// Target offered load in bits per second of *payload*.
    pub target_bps: f64,
    /// Payload bytes per junk frame.
    pub frame_bytes: usize,
    /// The two nodes the loader traffic flows between.
    pub node_a: NodeId,
    /// Destination of frames from `node_a` (and source of the reverse flow).
    pub node_b: NodeId,
}

impl LoaderConfig {
    /// A loader between `a` and `b` offering `mbps` megabits/second using
    /// MTU-sized frames, split evenly across both directions (as a chatty
    /// loader program would).
    pub fn mbps(mbps: f64, a: NodeId, b: NodeId) -> Self {
        LoaderConfig {
            target_bps: mbps * 1e6,
            frame_bytes: 1500,
            node_a: a,
            node_b: b,
        }
    }

    /// Interval between frames for one direction carrying half the load.
    pub fn frame_interval(&self) -> SimTime {
        let per_dir_bps = self.target_bps / 2.0;
        SimTime::from_secs_f64(self.frame_bytes as f64 * 8.0 / per_dir_bps)
    }
}

/// Spawn the two loader daemons onto `sim`. They run for the whole
/// simulation and never block it from finishing (daemons).
pub fn spawn_loaders(sim: &mut SimBuilder, net: &Network, cfg: &LoaderConfig) {
    for (name, src, dst) in [
        ("loader-a", cfg.node_a, cfg.node_b),
        ("loader-b", cfg.node_b, cfg.node_a),
    ] {
        let net = net.clone();
        let interval = cfg.frame_interval();
        let bytes = cfg.frame_bytes;
        sim.spawn_daemon(name, move |ctx| loop {
            net.inject(ctx.now(), src, dst, bytes);
            ctx.advance(interval);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::EthernetBus;

    #[test]
    fn frame_interval_hits_target_rate() {
        let cfg = LoaderConfig::mbps(1.0, NodeId(4), NodeId(5));
        // Per direction: 0.5 Mbps with 1500B frames -> 24 ms between frames.
        assert_eq!(cfg.frame_interval(), SimTime::from_millis(24));
    }

    #[test]
    fn loaders_offer_approximately_the_target_load() {
        let net = Network::new(EthernetBus::ten_mbps(0));
        let cfg = LoaderConfig::mbps(2.0, NodeId(4), NodeId(5));
        let mut sim = SimBuilder::new(0);
        spawn_loaders(&mut sim, &net, &cfg);
        let horizon = SimTime::from_secs(10);
        sim.spawn("clock", move |ctx| ctx.advance(horizon));
        sim.run().unwrap();
        let bits = net.stats().medium.payload_bytes as f64 * 8.0;
        let rate = bits / horizon.as_secs_f64();
        assert!(
            (rate - 2e6).abs() / 2e6 < 0.05,
            "offered load {rate:.0} bps should be within 5% of 2 Mbps"
        );
    }

    #[test]
    fn loader_traffic_slows_foreground_messages() {
        let delay_under = |mbps: f64| {
            let net = Network::new(EthernetBus::ten_mbps(0));
            let mut sim = SimBuilder::new(0);
            if mbps > 0.0 {
                spawn_loaders(
                    &mut sim,
                    &net,
                    &LoaderConfig::mbps(mbps, NodeId(4), NodeId(5)),
                );
            }
            let net2 = net.clone();
            sim.spawn("fg", move |ctx| {
                for _ in 0..200 {
                    ctx.advance(SimTime::from_micros(700));
                    net2.inject(ctx.now(), NodeId(0), NodeId(1), 800);
                }
            });
            sim.run().unwrap();
            net.stats().mean_delay()
        };
        let unloaded = delay_under(0.0);
        let loaded = delay_under(8.0);
        assert!(
            loaded > unloaded,
            "8 Mbps background load must raise mean delay ({unloaded} -> {loaded})"
        );
    }
}
