//! The [`Network`] handle: shared access to a medium from simulated
//! processes and events, with delivery scheduling and aggregate statistics.

use std::sync::Arc;

use parking_lot::Mutex;

use nscc_obs::{Hub, ObsEvent};
use nscc_sim::{Ctx, EventCtx, Mailbox, SimTime};

use crate::medium::{Medium, MediumStats, NodeId, Transmission, Verdict};

/// Destination marker for broadcast frames in emitted events.
const BROADCAST: u32 = u32::MAX;

/// Aggregate network-level statistics (medium counters plus end-to-end
/// delay bookkeeping).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct NetStats {
    /// Counters from the underlying medium.
    pub medium: MediumStats,
    /// Messages submitted through this handle.
    pub messages: u64,
    /// Sum of end-to-end delays (arrival − submission) for those messages.
    pub total_delay: SimTime,
    /// Largest single end-to-end delay observed.
    pub max_delay: SimTime,
    /// Frames the medium's fault layer dropped (0 on well-behaved media).
    pub dropped: u64,
    /// Spurious duplicate deliveries the fault layer injected.
    pub duplicated: u64,
}

impl NetStats {
    /// Mean end-to-end delay per message.
    pub fn mean_delay(&self) -> SimTime {
        if self.messages == 0 {
            SimTime::ZERO
        } else {
            self.total_delay / self.messages
        }
    }

    /// Fold another network's counters into this one (for run aggregation).
    pub fn merge(&mut self, other: &NetStats) {
        self.medium.merge(&other.medium);
        self.messages += other.messages;
        self.total_delay = self.total_delay.saturating_add(other.total_delay);
        self.max_delay = self.max_delay.max(other.max_delay);
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
    }
}

impl nscc_ckpt::Snapshot for MediumStats {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.frames);
        enc.put_u64(self.payload_bytes);
        enc.put_u64(self.wire_bytes);
        self.queueing.encode(enc);
        self.busy.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(MediumStats {
            frames: dec.u64()?,
            payload_bytes: dec.u64()?,
            wire_bytes: dec.u64()?,
            queueing: nscc_ckpt::Snapshot::decode(dec)?,
            busy: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for NetStats {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.medium.encode(enc);
        enc.put_u64(self.messages);
        self.total_delay.encode(enc);
        self.max_delay.encode(enc);
        enc.put_u64(self.dropped);
        enc.put_u64(self.duplicated);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(NetStats {
            medium: MediumStats::decode(dec)?,
            messages: dec.u64()?,
            total_delay: nscc_ckpt::Snapshot::decode(dec)?,
            max_delay: nscc_ckpt::Snapshot::decode(dec)?,
            dropped: dec.u64()?,
            duplicated: dec.u64()?,
        })
    }
}

struct NetInner {
    medium: Box<dyn Medium>,
    messages: u64,
    total_delay: SimTime,
    max_delay: SimTime,
    dropped: u64,
    duplicated: u64,
    obs: Option<Hub>,
}

/// A cloneable handle to one simulated interconnect.
///
/// All sends from all processes go through the same handle, so the medium
/// sees the true interleaving of traffic (that is what creates contention).
#[derive(Clone)]
pub struct Network {
    inner: Arc<Mutex<NetInner>>,
}

impl Network {
    /// Wrap a medium.
    pub fn new(medium: impl Medium + 'static) -> Self {
        Network {
            inner: Arc::new(Mutex::new(NetInner {
                medium: Box::new(medium),
                messages: 0,
                total_delay: SimTime::ZERO,
                max_delay: SimTime::ZERO,
                dropped: 0,
                duplicated: 0,
                obs: None,
            })),
        }
    }

    /// Attach an observability hub: every frame emits a send event (with
    /// its queueing delay ahead of service) and a deliver event (feeding
    /// the hub's network-delay histogram). Detached costs one branch per
    /// frame.
    pub fn attach_obs(&self, hub: Hub) {
        self.inner.lock().obs = Some(hub);
    }

    /// Submit a message and schedule its delivery into `mailbox` at the
    /// arrival time computed by the medium (honouring the medium's
    /// delivery verdict: dropped frames schedule nothing, duplicated
    /// frames schedule a second copy). Returns the arrival time the
    /// sender observes.
    pub fn send_to<T: Clone + Send + 'static>(
        &self,
        ctx: &mut Ctx,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        mailbox: &Mailbox<T>,
        msg: T,
    ) -> SimTime {
        let now = ctx.now();
        let tx = self.plan(now, src, dst, payload_bytes);
        match tx.verdict {
            Verdict::Deliver => {
                let mb = mailbox.clone();
                ctx.schedule_fn(tx.arrival - now, move |ec| mb.deliver(ec, msg));
            }
            Verdict::Drop(_) => {}
            Verdict::Duplicate { second } => {
                let (mb, mb2) = (mailbox.clone(), mailbox.clone());
                let copy = msg.clone();
                ctx.schedule_fn(tx.arrival - now, move |ec| mb.deliver(ec, msg));
                ctx.schedule_fn(second.saturating_sub(now), move |ec| mb2.deliver(ec, copy));
            }
        }
        tx.arrival
    }

    /// Like [`send_to`](Network::send_to), but callable from event context
    /// (used by protocol layers that forward inside events).
    pub fn send_to_from_event<T: Clone + Send + 'static>(
        &self,
        ec: &mut EventCtx<'_>,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
        mailbox: &Mailbox<T>,
        msg: T,
    ) -> SimTime {
        let now = ec.now();
        let tx = self.plan(now, src, dst, payload_bytes);
        match tx.verdict {
            Verdict::Deliver => {
                let mb = mailbox.clone();
                ec.schedule_fn(tx.arrival - now, move |ec2| mb.deliver(ec2, msg));
            }
            Verdict::Drop(_) => {}
            Verdict::Duplicate { second } => {
                let (mb, mb2) = (mailbox.clone(), mailbox.clone());
                let copy = msg.clone();
                ec.schedule_fn(tx.arrival - now, move |ec2| mb.deliver(ec2, msg));
                ec.schedule_fn(second.saturating_sub(now), move |ec2| {
                    mb2.deliver(ec2, copy)
                });
            }
        }
        tx.arrival
    }

    /// Deliver one message to several mailboxes. On broadcast-capable
    /// media (the shared Ethernet bus) this costs *one* frame on the
    /// wire; otherwise it falls back to one unicast per destination (as
    /// on a crossbar switch). Returns the latest arrival time.
    pub fn multicast_to<T: Clone + Send + 'static>(
        &self,
        ctx: &mut Ctx,
        src: NodeId,
        dests: &[(NodeId, Mailbox<T>)],
        payload_bytes: usize,
        msg: T,
    ) -> SimTime {
        let now = ctx.now();
        match self.plan_broadcast(now, src, payload_bytes) {
            Some(arrival) => {
                let delay = arrival - now;
                for (_, mb) in dests {
                    let mb = mb.clone();
                    let m = msg.clone();
                    ctx.schedule_fn(delay, move |ec| mb.deliver(ec, m));
                }
                arrival
            }
            None => {
                let mut last = now;
                for (dst, mb) in dests {
                    last = last.max(self.send_to(ctx, src, *dst, payload_bytes, mb, msg.clone()));
                }
                last
            }
        }
    }

    /// Plan one *broadcast* frame: submit it to the medium, account for
    /// it, and emit the `NetSend`/`NetDeliver` pair (with the broadcast
    /// destination sentinel) exactly as the broadcast arm of
    /// [`multicast_to`](Network::multicast_to) always has. Returns
    /// `Some(arrival)` on broadcast-capable media — every destination
    /// hears the frame at that one instant and the caller schedules the
    /// per-destination deliveries — or `None` when the medium has no
    /// hardware broadcast and the caller must fall back to unicast
    /// fan-out. Provenance-stamping layers call this directly so they can
    /// stamp each destination's copy before scheduling it.
    pub fn plan_broadcast(
        &self,
        now: SimTime,
        src: NodeId,
        payload_bytes: usize,
    ) -> Option<SimTime> {
        let (bcast, queue_ns) = {
            let mut inner = self.inner.lock();
            let queue_ns = if inner.obs.is_some() {
                inner.medium.next_free(now).saturating_sub(now).as_nanos()
            } else {
                0
            };
            (
                inner.medium.transmit_broadcast(now, src, payload_bytes),
                queue_ns,
            )
        };
        let arrival = bcast?;
        debug_assert!(arrival >= now);
        let delay = arrival - now;
        let mut inner = self.inner.lock();
        inner.messages += 1;
        inner.total_delay = inner.total_delay.saturating_add(delay);
        inner.max_delay = inner.max_delay.max(delay);
        if let Some(hub) = &inner.obs {
            hub.emit(ObsEvent::NetSend {
                t_ns: now.as_nanos(),
                src: src.0,
                dst: BROADCAST,
                bytes: payload_bytes as u64,
                queue_ns,
            });
            hub.emit(ObsEvent::NetDeliver {
                t_ns: arrival.as_nanos(),
                src: src.0,
                dst: BROADCAST,
                delay_ns: delay.as_nanos(),
            });
        }
        Some(arrival)
    }

    /// Occupy the medium without delivering anything (used by background
    /// load generators). Returns the arrival time of the junk frame.
    pub fn inject(&self, now: SimTime, src: NodeId, dst: NodeId, payload_bytes: usize) -> SimTime {
        self.plan(now, src, dst, payload_bytes).arrival
    }

    /// How long a frame submitted at `now` would wait for the medium to go
    /// idle before its transmission starts. A pure probe: nothing is
    /// submitted, no statistics move. Provenance-stamping layers use this
    /// to split a message's latency into queueing vs time on the wire.
    pub fn queue_delay(&self, now: SimTime) -> SimTime {
        let inner = self.inner.lock();
        inner.medium.next_free(now).saturating_sub(now)
    }

    /// Submit a frame, account for it, and return the planned
    /// [`Transmission`] — arrival time plus delivery verdict. Protocol
    /// layers that schedule their own delivery events (e.g. an
    /// ack/retransmit shim) use this directly; everything else goes
    /// through [`send_to`](Network::send_to).
    pub fn plan(
        &self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        payload_bytes: usize,
    ) -> Transmission {
        let mut inner = self.inner.lock();
        // Queueing must be probed before the transmit mutates medium state.
        let queue_ns = if inner.obs.is_some() {
            inner.medium.next_free(now).saturating_sub(now).as_nanos()
        } else {
            0
        };
        let tx = inner.medium.plan_transmit(now, src, dst, payload_bytes);
        debug_assert!(tx.arrival >= now, "medium produced an arrival in the past");
        let delay = tx.arrival - now;
        inner.messages += 1;
        inner.total_delay = inner.total_delay.saturating_add(delay);
        inner.max_delay = inner.max_delay.max(delay);
        match tx.verdict {
            Verdict::Deliver => {}
            Verdict::Drop(_) => inner.dropped += 1,
            Verdict::Duplicate { .. } => inner.duplicated += 1,
        }
        if let Some(hub) = &inner.obs {
            hub.emit(ObsEvent::NetSend {
                t_ns: now.as_nanos(),
                src: src.0,
                dst: dst.0,
                bytes: payload_bytes as u64,
                queue_ns,
            });
            match tx.verdict {
                Verdict::Deliver => hub.emit(ObsEvent::NetDeliver {
                    t_ns: tx.arrival.as_nanos(),
                    src: src.0,
                    dst: dst.0,
                    delay_ns: delay.as_nanos(),
                }),
                Verdict::Drop(reason) => hub.emit(ObsEvent::FaultDrop {
                    t_ns: now.as_nanos(),
                    src: src.0,
                    dst: dst.0,
                    reason: reason.label().into(),
                }),
                Verdict::Duplicate { second } => {
                    hub.emit(ObsEvent::NetDeliver {
                        t_ns: tx.arrival.as_nanos(),
                        src: src.0,
                        dst: dst.0,
                        delay_ns: delay.as_nanos(),
                    });
                    hub.emit(ObsEvent::FaultDup {
                        t_ns: second.as_nanos(),
                        src: src.0,
                        dst: dst.0,
                    });
                }
            }
        }
        tx
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> NetStats {
        let inner = self.inner.lock();
        NetStats {
            medium: inner.medium.stats(),
            messages: inner.messages,
            total_delay: inner.total_delay,
            max_delay: inner.max_delay,
            dropped: inner.dropped,
            duplicated: inner.duplicated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::EthernetBus;
    use crate::medium::IdealMedium;
    use nscc_sim::SimBuilder;

    #[test]
    fn send_to_delivers_at_medium_arrival_time() {
        let net = Network::new(IdealMedium::new(SimTime::from_millis(4)));
        let mb: Mailbox<u8> = Mailbox::new("m");
        let (net2, mb2) = (net.clone(), mb.clone());
        let mb3 = mb.clone();
        let mut sim = SimBuilder::new(0);
        sim.spawn("sender", move |ctx| {
            ctx.advance(SimTime::from_millis(1));
            net2.send_to(ctx, NodeId(0), NodeId(1), 128, &mb2, 9);
        });
        sim.spawn("receiver", move |ctx| {
            assert_eq!(mb3.recv(ctx), 9);
            assert_eq!(ctx.now(), SimTime::from_millis(5));
        });
        sim.run().unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.mean_delay(), SimTime::from_millis(4));
    }

    #[test]
    fn stats_track_max_delay_under_contention() {
        let net = Network::new(EthernetBus::ten_mbps(0));
        let t = SimTime::ZERO;
        for _ in 0..50 {
            net.inject(t, NodeId(0), NodeId(1), 1500);
        }
        let stats = net.stats();
        assert_eq!(stats.messages, 50);
        assert!(stats.max_delay > stats.mean_delay());
        assert!(stats.medium.queueing > SimTime::ZERO);
    }
}
