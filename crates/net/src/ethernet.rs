//! A shared-bus 10 Mbps Ethernet model (the paper's interconnect).
//!
//! The defining property of the paper's platform is a *single shared
//! medium*: every frame from every host serializes onto one 10 Mbps bus, so
//! latency grows with aggregate offered load and the network exhibits the
//! queueing feedback loop described in §3.1 of the paper. We model:
//!
//! * store-and-forward serialization at `bandwidth` bits/second,
//! * fragmentation into MTU-sized frames, each paying header overhead,
//! * a FIFO bus (frames queue behind the in-flight frame),
//! * propagation delay plus inter-frame gap,
//! * optional bounded random backoff jitter when the bus is found busy
//!   (a cheap stand-in for CSMA/CD contention resolution).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nscc_sim::SimTime;

use crate::medium::{Medium, MediumStats, NodeId};

/// Configuration of the shared Ethernet bus.
#[derive(Debug, Clone)]
pub struct EthernetConfig {
    /// Raw bandwidth in bits per second (paper: 10 Mbps).
    pub bandwidth_bps: f64,
    /// Maximum payload bytes per frame (Ethernet MTU, 1500).
    pub mtu: usize,
    /// Per-frame header/framing overhead in bytes (Ethernet + IP + UDP +
    /// message-layer header).
    pub frame_overhead: usize,
    /// One-way propagation delay plus inter-frame gap.
    pub propagation: SimTime,
    /// Upper bound of the uniform random backoff added when the bus is busy
    /// at submission (0 disables contention jitter).
    pub max_backoff: SimTime,
    /// Window over which recent utilization is measured for the collision
    /// model.
    pub collision_window: SimTime,
    /// Utilization above which CSMA/CD collisions start degrading
    /// effective service time (≈0.6 for classic shared Ethernet).
    pub collision_knee: f64,
    /// Strength of the collision degradation (0 disables the model).
    pub collision_strength: f64,
}

impl Default for EthernetConfig {
    /// The paper's platform: 10 Mbps shared Ethernet, 1500-byte MTU,
    /// ~60 bytes of framing, 50 µs propagation + gap, 200 µs max backoff.
    fn default() -> Self {
        EthernetConfig {
            bandwidth_bps: 10e6,
            mtu: 1500,
            frame_overhead: 60,
            propagation: SimTime::from_micros(50),
            max_backoff: SimTime::from_micros(200),
            collision_window: SimTime::from_millis(100),
            collision_knee: 0.6,
            collision_strength: 5.0,
        }
    }
}

/// The shared-bus Ethernet medium. See the module docs for the model.
///
/// Besides FIFO serialization, the bus models **congestion collapse**: a
/// CSMA/CD medium loses effective capacity to collisions as utilization
/// climbs, so offered load beyond the knee inflates service times
/// super-linearly ("moving the network to unstable conditions and thus
/// unboundedly increasing the communication delay", §1 of the paper —
/// the pathology receiver-driven flow control exists to prevent).
pub struct EthernetBus {
    cfg: EthernetConfig,
    /// Instant at which the bus finishes its last accepted transmission.
    bus_free: SimTime,
    /// Recent transmissions `(start, wire_seconds)` inside the
    /// utilization window, for the collision model.
    recent: std::collections::VecDeque<(SimTime, f64)>,
    rng: StdRng,
    stats: MediumStats,
}

impl EthernetBus {
    /// A bus with the given configuration; `seed` drives backoff jitter.
    pub fn new(cfg: EthernetConfig, seed: u64) -> Self {
        EthernetBus {
            cfg,
            bus_free: SimTime::ZERO,
            recent: std::collections::VecDeque::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xE7E2_17E7_0000_0001),
            stats: MediumStats::default(),
        }
    }

    /// Recent utilization of the bus (wire seconds carried inside the
    /// collision window ending at `now`).
    pub fn recent_utilization(&self, now: SimTime) -> f64 {
        let window = self.cfg.collision_window.as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let horizon = now.saturating_sub(self.cfg.collision_window);
        let busy: f64 = self
            .recent
            .iter()
            .filter(|(t, _)| *t >= horizon)
            .map(|(_, w)| *w)
            .sum();
        busy / window
    }

    /// Collision-induced service-time multiplier at utilization `rho`.
    fn collision_factor(&self, rho: f64) -> f64 {
        if self.cfg.collision_strength <= 0.0 || rho <= self.cfg.collision_knee {
            return 1.0;
        }
        let over = rho - self.cfg.collision_knee;
        let f = 1.0 + self.cfg.collision_strength * over * over / (1.02 - rho.min(1.0)).max(0.02);
        f.min(12.0) // collisions degrade Ethernet to ~1/12 capacity at worst
    }

    /// The paper's 10 Mbps Ethernet with default parameters.
    pub fn ten_mbps(seed: u64) -> Self {
        EthernetBus::new(EthernetConfig::default(), seed)
    }

    /// Serialization time for `wire_bytes` at the configured bandwidth.
    fn tx_time(&self, wire_bytes: u64) -> SimTime {
        SimTime::from_secs_f64(wire_bytes as f64 * 8.0 / self.cfg.bandwidth_bps)
    }

    /// Total bytes on the wire for a message of `payload` bytes, after
    /// fragmentation into MTU-sized frames.
    fn wire_bytes(&self, payload: usize) -> u64 {
        let frames = payload.div_ceil(self.cfg.mtu).max(1);
        (payload + frames * self.cfg.frame_overhead) as u64
    }

    /// Access the configuration.
    pub fn config(&self) -> &EthernetConfig {
        &self.cfg
    }
}

impl Medium for EthernetBus {
    fn transmit(
        &mut self,
        now: SimTime,
        _src: NodeId,
        _dst: NodeId,
        payload_bytes: usize,
    ) -> SimTime {
        let wire = self.wire_bytes(payload_bytes);
        let mut tx = self.tx_time(wire);

        // Contention: if the bus is busy, wait for it and pay a bounded
        // random backoff (deterministic given the seed and call order).
        let mut start = now;
        if self.bus_free > now {
            start = self.bus_free;
            if !self.cfg.max_backoff.is_zero() {
                let backoff = self.rng.gen_range(0..=self.cfg.max_backoff.as_nanos());
                start += SimTime::from_nanos(backoff);
            }
        }

        // Congestion collapse: collisions inflate the effective service
        // time once recent *offered* load (submission-time, uninflated
        // wire time) passes the knee. Offered load is the causal driver:
        // when senders throttle, the window drains and the bus recovers —
        // a backlog being worked off does not by itself keep collisions
        // alive.
        let horizon = now.saturating_sub(self.cfg.collision_window);
        while matches!(self.recent.front(), Some((t, _)) if *t < horizon) {
            self.recent.pop_front();
        }
        self.recent.push_back((now, tx.as_secs_f64()));
        let rho = self.recent_utilization(now);
        let factor = self.collision_factor(rho);
        if factor > 1.0 {
            tx = SimTime::from_secs_f64(tx.as_secs_f64() * factor);
        }

        let queueing = start - now;
        let end = start + tx;
        self.bus_free = end;

        self.stats.frames += 1;
        self.stats.payload_bytes += payload_bytes as u64;
        self.stats.wire_bytes += wire;
        self.stats.queueing = self.stats.queueing.saturating_add(queueing);
        self.stats.busy = self.stats.busy.saturating_add(tx);

        end + self.cfg.propagation
    }

    fn transmit_broadcast(
        &mut self,
        now: SimTime,
        src: NodeId,
        payload_bytes: usize,
    ) -> Option<SimTime> {
        // A shared bus is a physical broadcast medium: one frame, all
        // stations hear it. Model it as a normal transmission.
        Some(self.transmit(now, src, src, payload_bytes))
    }

    fn stats(&self) -> MediumStats {
        self.stats
    }

    fn next_free(&self, now: SimTime) -> SimTime {
        self.bus_free.max(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> EthernetBus {
        let cfg = EthernetConfig {
            max_backoff: SimTime::ZERO,
            ..EthernetConfig::default()
        };
        EthernetBus::new(cfg, 0)
    }

    #[test]
    fn single_frame_latency_matches_formula() {
        let mut bus = no_jitter();
        let arrival = bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        // (1000 + 60) bytes * 8 / 10 Mbps = 848 us, + 50 us propagation.
        assert_eq!(arrival, SimTime::from_micros(848 + 50));
    }

    #[test]
    fn frames_serialize_on_shared_bus() {
        let mut bus = no_jitter();
        let a = bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        // Submitted at the same instant by a different pair of nodes: must
        // queue behind the first frame (shared medium).
        let b = bus.transmit(SimTime::ZERO, NodeId(2), NodeId(3), 1000);
        assert_eq!(b - a, SimTime::from_micros(848));
        assert_eq!(bus.stats().queueing, SimTime::from_micros(848));
    }

    #[test]
    fn idle_bus_has_no_queueing() {
        let mut bus = no_jitter();
        bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 100);
        let later = SimTime::from_secs(1);
        bus.transmit(later, NodeId(0), NodeId(1), 100);
        assert_eq!(bus.stats().queueing, SimTime::ZERO);
    }

    #[test]
    fn fragmentation_pays_overhead_per_frame() {
        let mut bus = no_jitter();
        // 3001 bytes -> 3 frames -> 3 * 60 bytes overhead.
        bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 3001);
        assert_eq!(bus.stats().wire_bytes, 3001 + 3 * 60);
    }

    #[test]
    fn zero_byte_message_still_sends_one_frame() {
        let mut bus = no_jitter();
        let arrival = bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 0);
        assert!(arrival > SimTime::ZERO);
        assert_eq!(bus.stats().wire_bytes, 60);
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let run = |seed| {
            let mut bus = EthernetBus::ten_mbps(seed);
            let mut times = Vec::new();
            for _ in 0..10 {
                times.push(bus.transmit(SimTime::ZERO, NodeId(0), NodeId(1), 500));
            }
            times
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn sustained_load_half_bandwidth_keeps_up() {
        // Offer 5 Mbps to a 10 Mbps bus: queueing should stay bounded.
        let mut bus = no_jitter();
        let frame = 1000usize; // 1060 wire bytes = 848 us tx
        let interval = SimTime::from_micros(1696); // twice the tx time
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            bus.transmit(now, NodeId(0), NodeId(1), frame);
            now += interval;
        }
        // All queueing comes from at most one in-flight frame.
        assert_eq!(bus.stats().queueing, SimTime::ZERO);
    }

    #[test]
    fn overload_grows_queueing_without_bound() {
        // Offer 20 Mbps to a 10 Mbps bus: delays must grow.
        let mut bus = no_jitter();
        let mut now = SimTime::ZERO;
        let mut last_delay = SimTime::ZERO;
        for i in 0..100 {
            let arrival = bus.transmit(now, NodeId(0), NodeId(1), 1000);
            let delay = arrival - now;
            if i > 10 {
                assert!(delay >= last_delay, "delay should be non-decreasing");
            }
            last_delay = delay;
            now += SimTime::from_micros(424); // half the service time
        }
        assert!(last_delay > SimTime::from_millis(10));
    }
}

#[cfg(test)]
mod collision_tests {
    use super::*;

    #[test]
    fn light_load_pays_no_collision_penalty() {
        let mut bus = EthernetBus::ten_mbps(0);
        // ~20% utilization: 1000B frames every 4 ms.
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            bus.transmit(now, NodeId(0), NodeId(1), 1000);
            now += SimTime::from_millis(4);
        }
        assert!(bus.recent_utilization(now) < 0.6);
        // Service time of a fresh frame equals the uncongested formula.
        let arrival = bus.transmit(now + SimTime::from_secs(1), NodeId(0), NodeId(1), 1000);
        let expect = SimTime::from_micros(848 + 50);
        assert_eq!(arrival - (now + SimTime::from_secs(1)), expect);
    }

    #[test]
    fn overload_collapses_throughput() {
        // Offer ~110% of capacity: collisions must inflate delays far
        // beyond plain queueing.
        let serve = |strength: f64| {
            let cfg = EthernetConfig {
                max_backoff: SimTime::ZERO,
                collision_strength: strength,
                ..EthernetConfig::default()
            };
            let mut bus = EthernetBus::new(cfg, 0);
            let mut now = SimTime::ZERO;
            let mut last = SimTime::ZERO;
            for _ in 0..600 {
                last = bus.transmit(now, NodeId(0), NodeId(1), 1200);
                now += SimTime::from_micros(920); // ~110% offered
            }
            last
        };
        let stable = serve(0.0);
        let collapsing = serve(2.0);
        assert!(
            collapsing.as_secs_f64() > stable.as_secs_f64() * 1.5,
            "collision model should amplify overload: {stable} vs {collapsing}"
        );
    }

    #[test]
    fn utilization_window_decays() {
        let mut bus = EthernetBus::ten_mbps(0);
        for i in 0..200 {
            bus.transmit(SimTime::from_micros(900 * i), NodeId(0), NodeId(1), 1000);
        }
        let busy_now = bus.recent_utilization(SimTime::from_micros(900 * 200));
        assert!(busy_now > 0.7, "offered ~94%: {busy_now}");
        let later = bus.recent_utilization(SimTime::from_secs(10));
        assert_eq!(later, 0.0, "old frames leave the window");
    }
}
