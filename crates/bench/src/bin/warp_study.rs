//! The warp instrumentation study (§4.3): measure the warp metric — the
//! ratio of inter-arrival to inter-send times of consecutive messages —
//! on the shared Ethernet under increasing offered load, showing warp ≈ 1
//! on a stable network and warp ≫ 1 as the network loads up. With
//! `NSCC_JSON=1` (or `--json`) also writes `BENCH_warp_study.json`,
//! including the observability hub's warp timeline and network-delay
//! histogram aggregated over every load level.
//!
//! With `NSCC_CKPT_DIR` set, every completed load level is checkpointed;
//! a killed sweep rerun with `NSCC_RESUME=1` (or `--resume`) skips the
//! finished cells and produces a byte-identical report.

use nscc_bench::{
    attach_audit, attach_live, make_hub, stamp_audit, stamp_staleness, stamp_wall, tap_audit,
    write_flight, write_folded, write_report, write_trace, ResumeOpts, Scale, SweepCkpt,
};
use nscc_core::fmt::render_table;
use nscc_core::RunReport;
use nscc_msg::{CommWorld, MsgConfig};
use nscc_net::{spawn_loaders, EthernetBus, LoaderConfig, Network, NodeId, WarpMeter};
use nscc_obs::{Hub, HubSummary, StalenessSummary};
use nscc_sim::{SimBuilder, SimTime};

/// What one load level contributes to the study — the checkpoint unit of
/// a resumable run.
struct Cell {
    warp_mean: f64,
    warp_p95: f64,
    warp_max: f64,
    delay_ms: f64,
    obs: HubSummary,
    staleness: StalenessSummary,
}

impl nscc_ckpt::Snapshot for Cell {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.warp_mean.encode(enc);
        self.warp_p95.encode(enc);
        self.warp_max.encode(enc);
        self.delay_ms.encode(enc);
        self.obs.encode(enc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(Cell {
            warp_mean: nscc_ckpt::Snapshot::decode(dec)?,
            warp_p95: nscc_ckpt::Snapshot::decode(dec)?,
            warp_max: nscc_ckpt::Snapshot::decode(dec)?,
            delay_ms: nscc_ckpt::Snapshot::decode(dec)?,
            obs: nscc_ckpt::Snapshot::decode(dec)?,
            staleness: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

fn main() {
    let scale = Scale::from_env();
    let ropts = ResumeOpts::from_env();
    let mut ckpt = SweepCkpt::from_opts(&ropts, "warp_study");
    println!("=== Warp metric vs offered background load (10 Mbps Ethernet) ===");
    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "warp_study");
    let auditor = attach_audit(&scale, &hub);
    let mut obs_merged = ckpt.as_ref().map(|_| Hub::new().summary());
    let mut stal_merged = ckpt.as_ref().map(|_| StalenessSummary::default());
    let mut rep = RunReport::new("warp_study", &hub);
    let mut rows = vec![vec![
        "load (Mbps)".to_string(),
        "mean warp".to_string(),
        "p95 warp".to_string(),
        "max warp".to_string(),
        "mean delay (ms)".to_string(),
    ]];
    for (ci, &load) in [0.0, 2.0, 4.0, 6.0, 8.0, 9.5].iter().enumerate() {
        let cell_idx = ci as u64;
        let loaded: Option<Cell> =
            ckpt.as_ref()
                .and_then(|c| c.load_cell(cell_idx))
                .and_then(|payload| match nscc_ckpt::from_bytes(&payload) {
                    Ok(cell) => Some(cell),
                    Err(e) => {
                        eprintln!("warning: recomputing cell {cell_idx}: {e}");
                        None
                    }
                });
        let cell = match loaded {
            Some(cell) => cell,
            None => {
                let (exp_obs, cell_hub) = if ckpt.is_some() {
                    let h = make_hub(&scale);
                    tap_audit(&auditor, &h);
                    (scale.wants_obs().then(|| h.clone()), Some(h))
                } else {
                    (scale.wants_obs().then(|| hub.clone()), None)
                };
                let (warp, delay_ms) = measure(load, exp_obs);
                let (obs, staleness) = match cell_hub {
                    Some(h) => {
                        // Carry the cell's wall-clock scheduler cost and
                        // flight ring into the main hub (the feed/report
                        // and any post-mortem dump read from there).
                        hub.adopt_sched(&h);
                        hub.adopt_flight(&h);
                        (h.summary(), h.staleness_summary())
                    }
                    None => (Hub::new().summary(), StalenessSummary::default()),
                };
                let cell = Cell {
                    warp_mean: warp.0,
                    warp_p95: warp.1,
                    warp_max: warp.2,
                    delay_ms,
                    obs,
                    staleness,
                };
                if let Some(ck) = ckpt.as_mut() {
                    ck.save_cell(cell_idx, 0, &[], &nscc_ckpt::to_bytes(&cell));
                }
                cell
            }
        };
        if let Some(acc) = obs_merged.as_mut() {
            acc.merge(&cell.obs);
        }
        if let Some(acc) = stal_merged.as_mut() {
            acc.merge(&cell.staleness);
        }
        rows.push(vec![
            format!("{load}"),
            format!("{:.3}", cell.warp_mean),
            format!("{:.3}", cell.warp_p95),
            format!("{:.2}", cell.warp_max),
            format!("{:.2}", cell.delay_ms),
        ]);
        rep.metric(format!("load{load}_warp_mean"), cell.warp_mean);
        rep.metric(format!("load{load}_warp_p95"), cell.warp_p95);
        rep.metric(format!("load{load}_warp_max"), cell.warp_max);
        rep.metric(format!("load{load}_delay_ms"), cell.delay_ms);
    }
    print!("{}", render_table(&rows));
    println!("\nwarp ≈ 1: stable network; warp ≫ 1: load is building up (§4.3).");

    if scale.json {
        // The hub summary was captured before the runs; refresh it so the
        // report carries the aggregated warp timeline and delay histogram.
        rep.obs = match &obs_merged {
            Some(acc) => acc.clone(),
            None => hub.summary(),
        };
        stamp_wall(&scale, &hub, &mut rep);
        stamp_audit(&auditor, &mut rep);
        stamp_staleness(&scale, &hub, stal_merged, &mut rep);
        write_report(&scale, &rep);
    }
    write_flight(&scale, &hub, &auditor, 0, "warp_study");
    if ckpt.is_some() {
        if scale.trace {
            eprintln!(
                "note: NSCC_TRACE is unsupported with NSCC_CKPT_DIR (events live in \
                 per-cell hubs); no TRACE_warp_study.json written"
            );
        }
    } else {
        write_trace(&scale, &hub, "warp_study");
    }
    let folded_obs = match &obs_merged {
        Some(acc) => acc.clone(),
        None => hub.summary(),
    };
    write_folded(&scale, &folded_obs);
    hub.live_final(&folded_obs);
}

/// Run a fixed two-node message pattern under `load` Mbps of background
/// traffic; return (mean, p95, max) warp and the mean delivery delay.
/// When a hub is given, the network and message layer are instrumented so
/// warp samples and delivery delays land in the hub as well.
fn measure(load: f64, hub: Option<Hub>) -> ((f64, f64, f64), f64) {
    let net = Network::new(EthernetBus::ten_mbps(7));
    let warp = WarpMeter::new();
    let mut world: CommWorld<u64> =
        CommWorld::new(net.clone(), 2, MsgConfig::default()).with_warp(warp.clone());
    let mut sim = SimBuilder::new(7);
    if let Some(hub) = hub {
        net.attach_obs(hub.clone());
        // The sampling profiler is driven by the scheduler; only attach
        // it there when profiling is on, so plain json/trace runs keep
        // their span-free reports byte-for-byte.
        if hub.profile_period() > 0 {
            sim.attach_obs(hub.clone());
        }
        // Wall-clock accounting is span-free, so it attaches whenever
        // requested without perturbing report bytes.
        if hub.wants_wall() {
            sim.attach_wall(hub.clone());
        }
        world = world.with_obs(hub);
    }
    if load > 0.0 {
        spawn_loaders(
            &mut sim,
            &net,
            &LoaderConfig::mbps(load, NodeId(2), NodeId(3)),
        );
    }
    let tx = world.endpoint(0);
    let rx = world.endpoint(1);
    let n = 400u64;
    sim.spawn("sender", move |ctx| {
        for i in 0..n {
            ctx.advance(SimTime::from_millis(5));
            tx.send(ctx, 1, i);
        }
    });
    sim.spawn("receiver", move |ctx| {
        for _ in 0..n {
            let _ = rx.recv(ctx);
        }
    });
    sim.run().expect("simulation runs");
    let stats = net.stats();
    (
        (warp.mean(), warp.percentile(95.0), warp.max()),
        stats.mean_delay().as_secs_f64() * 1e3,
    )
}
