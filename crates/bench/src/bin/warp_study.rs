//! The warp instrumentation study (§4.3): measure the warp metric — the
//! ratio of inter-arrival to inter-send times of consecutive messages —
//! on the shared Ethernet under increasing offered load, showing warp ≈ 1
//! on a stable network and warp ≫ 1 as the network loads up. With
//! `NSCC_JSON=1` (or `--json`) also writes `BENCH_warp_study.json`,
//! including the observability hub's warp timeline and network-delay
//! histogram aggregated over every load level.

use nscc_bench::{make_hub, write_report, write_trace, Scale};
use nscc_core::fmt::render_table;
use nscc_core::RunReport;
use nscc_msg::{CommWorld, MsgConfig};
use nscc_net::{spawn_loaders, EthernetBus, LoaderConfig, Network, NodeId, WarpMeter};
use nscc_obs::Hub;
use nscc_sim::{SimBuilder, SimTime};

fn main() {
    let scale = Scale::from_env();
    println!("=== Warp metric vs offered background load (10 Mbps Ethernet) ===");
    let hub = make_hub(&scale);
    let mut rep = RunReport::new("warp_study", &hub);
    let mut rows = vec![vec![
        "load (Mbps)".to_string(),
        "mean warp".to_string(),
        "p95 warp".to_string(),
        "max warp".to_string(),
        "mean delay (ms)".to_string(),
    ]];
    for &load in &[0.0, 2.0, 4.0, 6.0, 8.0, 9.5] {
        let (warp, delay_ms) = measure(load, (scale.json || scale.trace).then(|| hub.clone()));
        rows.push(vec![
            format!("{load}"),
            format!("{:.3}", warp.0),
            format!("{:.3}", warp.1),
            format!("{:.2}", warp.2),
            format!("{delay_ms:.2}"),
        ]);
        rep.metric(format!("load{load}_warp_mean"), warp.0);
        rep.metric(format!("load{load}_warp_p95"), warp.1);
        rep.metric(format!("load{load}_warp_max"), warp.2);
        rep.metric(format!("load{load}_delay_ms"), delay_ms);
    }
    print!("{}", render_table(&rows));
    println!("\nwarp ≈ 1: stable network; warp ≫ 1: load is building up (§4.3).");

    if scale.json {
        // The hub summary was captured before the runs; refresh it so the
        // report carries the aggregated warp timeline and delay histogram.
        rep.obs = hub.summary();
        write_report(&scale, &rep);
    }
    write_trace(&scale, &hub, "warp_study");
}

/// Run a fixed two-node message pattern under `load` Mbps of background
/// traffic; return (mean, p95, max) warp and the mean delivery delay.
/// When a hub is given, the network and message layer are instrumented so
/// warp samples and delivery delays land in the hub as well.
fn measure(load: f64, hub: Option<Hub>) -> ((f64, f64, f64), f64) {
    let net = Network::new(EthernetBus::ten_mbps(7));
    let warp = WarpMeter::new();
    let mut world: CommWorld<u64> =
        CommWorld::new(net.clone(), 2, MsgConfig::default()).with_warp(warp.clone());
    if let Some(hub) = hub {
        net.attach_obs(hub.clone());
        world = world.with_obs(hub);
    }
    let mut sim = SimBuilder::new(7);
    if load > 0.0 {
        spawn_loaders(
            &mut sim,
            &net,
            &LoaderConfig::mbps(load, NodeId(2), NodeId(3)),
        );
    }
    let tx = world.endpoint(0);
    let rx = world.endpoint(1);
    let n = 400u64;
    sim.spawn("sender", move |ctx| {
        for i in 0..n {
            ctx.advance(SimTime::from_millis(5));
            tx.send(ctx, 1, i);
        }
    });
    sim.spawn("receiver", move |ctx| {
        for _ in 0..n {
            let _ = rx.recv(ctx);
        }
    });
    sim.run().expect("simulation runs");
    let stats = net.stats();
    (
        (warp.mean(), warp.percentile(95.0), warp.max()),
        stats.mean_delay().as_secs_f64() * 1e3,
    )
}
