//! Regenerate **Figure 4**: GA speedups under background network load —
//! 4 compute nodes plus a loader pair offering 0.5, 1 and 2 Mbps on the
//! shared 10 Mbps Ethernet (plus the unloaded 0 Mbps reference row).
//!
//! Prints function 1 and the average over the benchmark functions, and
//! the best-partial-over-best-competitor improvement per load level —
//! the paper's headline claim is that this improvement *grows* with load.

use nscc_bench::{banner, make_hub, modes_from_env, write_report, write_trace, Scale};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, GaExpResult, GaExperiment, Platform, RunReport};
use nscc_dsm::DsmStats;
use nscc_ga::{TestFn, ALL_FUNCTIONS};
use nscc_msg::CommStats;
use nscc_net::NetStats;
use nscc_sim::SimTime;

fn main() {
    let scale = Scale::from_env();
    let all_functions = std::env::args().any(|a| a == "--all-functions");
    print!(
        "{}",
        banner(
            "Figure 4: GA speedups on the loaded network (4 processors)",
            &scale
        )
    );

    let loads = [0.0, 0.5, 1.0, 2.0];
    let functions: &[TestFn] = if all_functions {
        &ALL_FUNCTIONS
    } else {
        &ALL_FUNCTIONS[..4]
    };

    let hub = make_hub(&scale);
    let modes = modes_from_env();
    let mut dsm = DsmStats::default();
    let mut net = NetStats::default();
    let mut comm = CommStats::default();
    // Metric rows collected from the averaged panel for the JSON report.
    let mut metrics: Vec<(String, f64)> = Vec::new();

    for (title, funcs) in [
        ("best case: function 1 (sphere)", &functions[..1]),
        ("average over functions", functions),
    ] {
        println!("\n-- {title} --");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for &load in &loads {
            let mut per_func: Vec<GaExpResult> = Vec::new();
            for &func in funcs {
                let mut exp = GaExperiment {
                    generations: scale.generations,
                    runs: scale.runs,
                    base_seed: scale.seed,
                    platform: Platform::loaded_ethernet(4, load),
                    obs: (scale.json || scale.trace).then(|| hub.clone()),
                    modes: modes.clone().unwrap_or_else(GaExperiment::default_modes),
                    ..GaExperiment::new(func, 4)
                };
                exp.platform.msg.mailbox_warn = scale.mailbox_warn;
                let res = run_ga_experiment(&exp).expect("experiment runs");
                net.merge(&res.net);
                comm.merge(&res.comm);
                for m in &res.modes {
                    dsm.merge(&m.dsm);
                }
                per_func.push(res);
            }
            if rows.is_empty() {
                let mut h = vec!["load (Mbps)".to_string()];
                h.extend(per_func[0].modes.iter().map(|m| m.label.clone()));
                h.push("best-partial/best-comp".to_string());
                h.push("warp(async)".to_string());
                rows.push(h);
            }
            let serial_total: SimTime = per_func.iter().map(|f| f.serial_time).sum();
            let mut row = vec![format!("{load}")];
            let mut speedups = Vec::new();
            for mi in 0..per_func[0].modes.len() {
                let times: Vec<SimTime> = per_func.iter().map(|f| f.modes[mi].mean_time).collect();
                if times.iter().any(|&t| t == SimTime::MAX) {
                    speedups.push(0.0);
                    row.push("DNF".to_string());
                    continue;
                }
                let mode_total: SimTime = times.into_iter().sum();
                let s = serial_total.as_secs_f64() / mode_total.as_secs_f64();
                speedups.push(s);
                row.push(f2(s));
            }
            // Rows are matched by label, not position, so a restricted
            // `NSCC_MODES` list keeps the summary honest.
            let mode_labels: Vec<&str> =
                per_func[0].modes.iter().map(|m| m.label.as_str()).collect();
            let best_partial = mode_labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(f64::NAN, f64::max);
            let best_comp = mode_labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| !l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(1.0, f64::max);
            let improvement = best_partial / best_comp - 1.0;
            row.push(if improvement.is_finite() {
                format!("{:+.0}%", improvement * 100.0)
            } else {
                "n/a".to_string()
            });
            // Warp of the fully-async mode, averaged over functions (only
            // reported when `async` is in the mode set).
            let warp: Option<f64> = mode_labels.iter().position(|&l| l == "async").map(|ai| {
                per_func.iter().map(|f| f.modes[ai].mean_warp).sum::<f64>() / per_func.len() as f64
            });
            row.push(warp.map_or("n/a".to_string(), |w| format!("{w:.2}")));
            rows.push(row);
            // Report metrics come from the averaged panel only.
            if funcs.len() == functions.len() {
                for (mi, s) in speedups.iter().enumerate() {
                    let label = &per_func[0].modes[mi].label;
                    metrics.push((format!("load{load}_{label}"), *s));
                }
                if improvement.is_finite() {
                    metrics.push((format!("load{load}_improvement"), improvement));
                }
                if let Some(w) = warp {
                    metrics.push((format!("load{load}_warp_async"), w));
                }
            }
        }
        print!("{}", render_table(&rows));
    }

    if scale.json {
        let mut rep = RunReport::new("fig4", &hub);
        rep.param("runs", scale.runs as f64)
            .param("generations", scale.generations as f64)
            .param("functions", functions.len() as f64)
            .param("seed", scale.seed as f64)
            .param("procs", 4.0);
        for (k, v) in metrics {
            rep.metric(k, v);
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        rep.comm = Some(comm);
        rep.note_degradation();
        write_report(&scale, &rep);
    }
    write_trace(&scale, &hub, "fig4");
}
