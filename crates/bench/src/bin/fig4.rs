//! Regenerate **Figure 4**: GA speedups under background network load —
//! 4 compute nodes plus a loader pair offering 0.5, 1 and 2 Mbps on the
//! shared 10 Mbps Ethernet (plus the unloaded 0 Mbps reference row).
//!
//! Prints function 1 and the average over the benchmark functions, and
//! the best-partial-over-best-competitor improvement per load level —
//! the paper's headline claim is that this improvement *grows* with load.
//!
//! With `NSCC_CKPT_DIR` set, every completed panel × load × function
//! cell is checkpointed; a killed sweep rerun with `NSCC_RESUME=1` (or
//! `--resume`) skips the finished cells and produces a byte-identical
//! report.

use nscc_bench::{
    all_functions_flag, attach_audit, attach_live, banner, make_hub, modes_from_env, stamp_audit,
    stamp_staleness, stamp_wall, tap_audit, unwrap_or_flight, write_flight, write_folded,
    write_report, write_trace, ResumeOpts, Scale, SweepCkpt,
};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, GaExpResult, GaExperiment, Platform, RunReport};
use nscc_dsm::DsmStats;
use nscc_ga::{TestFn, ALL_FUNCTIONS};
use nscc_msg::CommStats;
use nscc_net::NetStats;
use nscc_obs::{Hub, HubSummary, StalenessSummary};
use nscc_sim::SimTime;

/// What one panel × load × function cell contributes to the figure — the
/// checkpoint unit of a resumable run. `times[i]` is mode `labels[i]`'s
/// mean completion time (`SimTime::MAX` marks a DNF).
struct Cell {
    serial_time: SimTime,
    labels: Vec<String>,
    times: Vec<SimTime>,
    warps: Vec<f64>,
    /// Mean generations per mode — the checkpoint header's iteration
    /// vector.
    iters: Vec<u64>,
    dsm: DsmStats,
    net: NetStats,
    comm: CommStats,
    obs: HubSummary,
    staleness: StalenessSummary,
}

impl Cell {
    fn from_result(r: &GaExpResult) -> Cell {
        let mut dsm = DsmStats::default();
        for m in &r.modes {
            dsm.merge(&m.dsm);
        }
        Cell {
            serial_time: r.serial_time,
            labels: r.modes.iter().map(|m| m.label.clone()).collect(),
            times: r.modes.iter().map(|m| m.mean_time).collect(),
            warps: r.modes.iter().map(|m| m.mean_warp).collect(),
            iters: r.modes.iter().map(|m| m.mean_generations as u64).collect(),
            dsm,
            net: r.net.clone(),
            comm: r.comm,
            obs: Hub::new().summary(),
            staleness: StalenessSummary::default(),
        }
    }
}

impl nscc_ckpt::Snapshot for Cell {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.serial_time.encode(enc);
        self.labels.encode(enc);
        self.times.encode(enc);
        self.warps.encode(enc);
        self.iters.encode(enc);
        self.dsm.encode(enc);
        self.net.encode(enc);
        self.comm.encode(enc);
        self.obs.encode(enc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(Cell {
            serial_time: nscc_ckpt::Snapshot::decode(dec)?,
            labels: nscc_ckpt::Snapshot::decode(dec)?,
            times: nscc_ckpt::Snapshot::decode(dec)?,
            warps: nscc_ckpt::Snapshot::decode(dec)?,
            iters: nscc_ckpt::Snapshot::decode(dec)?,
            dsm: nscc_ckpt::Snapshot::decode(dec)?,
            net: nscc_ckpt::Snapshot::decode(dec)?,
            comm: nscc_ckpt::Snapshot::decode(dec)?,
            obs: nscc_ckpt::Snapshot::decode(dec)?,
            staleness: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

fn main() {
    let scale = Scale::from_env();
    let ropts = ResumeOpts::from_env();
    let mut ckpt = SweepCkpt::from_opts(&ropts, "fig4");
    let all_functions = all_functions_flag();
    print!(
        "{}",
        banner(
            "Figure 4: GA speedups on the loaded network (4 processors)",
            &scale
        )
    );

    let loads = [0.0, 0.5, 1.0, 2.0];
    let functions: &[TestFn] = if all_functions {
        &ALL_FUNCTIONS
    } else {
        &ALL_FUNCTIONS[..4]
    };

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "fig4");
    let auditor = attach_audit(&scale, &hub);
    let modes = modes_from_env();
    let mut obs_merged = ckpt.as_ref().map(|_| Hub::new().summary());
    let mut stal_merged = ckpt.as_ref().map(|_| StalenessSummary::default());
    let mut dsm = DsmStats::default();
    let mut net = NetStats::default();
    let mut comm = CommStats::default();
    // Metric rows collected from the averaged panel for the JSON report.
    let mut metrics: Vec<(String, f64)> = Vec::new();

    for (ti, (title, funcs)) in [
        ("best case: function 1 (sphere)", &functions[..1]),
        ("average over functions", functions),
    ]
    .into_iter()
    .enumerate()
    {
        println!("\n-- {title} --");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (li, &load) in loads.iter().enumerate() {
            let mut per_func: Vec<Cell> = Vec::new();
            for (fi, &func) in funcs.iter().enumerate() {
                let cell_idx = ((ti * loads.len() + li) * functions.len() + fi) as u64;
                let loaded: Option<Cell> = ckpt
                    .as_ref()
                    .and_then(|c| c.load_cell(cell_idx))
                    .and_then(|payload| match nscc_ckpt::from_bytes(&payload) {
                        Ok(cell) => Some(cell),
                        Err(e) => {
                            eprintln!("warning: recomputing cell {cell_idx}: {e}");
                            None
                        }
                    });
                let cell = match loaded {
                    Some(cell) => cell,
                    None => {
                        let (exp_obs, cell_hub) = if ckpt.is_some() {
                            let h = make_hub(&scale);
                            tap_audit(&auditor, &h);
                            (scale.wants_obs().then(|| h.clone()), Some(h))
                        } else {
                            (scale.wants_obs().then(|| hub.clone()), None)
                        };
                        let mut exp = GaExperiment {
                            generations: scale.generations,
                            runs: scale.runs,
                            base_seed: scale.seed,
                            platform: Platform::loaded_ethernet(4, load),
                            obs: exp_obs,
                            modes: modes.clone().unwrap_or_else(GaExperiment::default_modes),
                            ..GaExperiment::new(func, 4)
                        };
                        exp.platform.msg.mailbox_warn = scale.mailbox_warn;
                        let res = unwrap_or_flight(
                            run_ga_experiment(&exp),
                            &scale,
                            exp.obs.as_ref(),
                            &auditor,
                            "fig4",
                        );
                        let mut cell = Cell::from_result(&res);
                        if let Some(h) = cell_hub {
                            cell.obs = h.summary();
                            cell.staleness = h.staleness_summary();
                            // Carry the cell's wall-clock scheduler cost
                            // and flight ring into the main hub
                            // (feed/report and any dump read there).
                            hub.adopt_sched(&h);
                            hub.adopt_flight(&h);
                        }
                        if let Some(ck) = ckpt.as_mut() {
                            ck.save_cell(
                                cell_idx,
                                cell.serial_time.as_nanos(),
                                &cell.iters,
                                &nscc_ckpt::to_bytes(&cell),
                            );
                        }
                        cell
                    }
                };
                if let Some(acc) = obs_merged.as_mut() {
                    acc.merge(&cell.obs);
                }
                if let Some(acc) = stal_merged.as_mut() {
                    acc.merge(&cell.staleness);
                }
                net.merge(&cell.net);
                comm.merge(&cell.comm);
                dsm.merge(&cell.dsm);
                per_func.push(cell);
            }
            if rows.is_empty() {
                let mut h = vec!["load (Mbps)".to_string()];
                h.extend(per_func[0].labels.iter().cloned());
                h.push("best-partial/best-comp".to_string());
                h.push("warp(async)".to_string());
                rows.push(h);
            }
            let serial_total: SimTime = per_func.iter().map(|f| f.serial_time).sum();
            let mut row = vec![format!("{load}")];
            let mut speedups = Vec::new();
            for mi in 0..per_func[0].labels.len() {
                let times: Vec<SimTime> = per_func.iter().map(|f| f.times[mi]).collect();
                if times.iter().any(|&t| t == SimTime::MAX) {
                    speedups.push(0.0);
                    row.push("DNF".to_string());
                    continue;
                }
                let mode_total: SimTime = times.into_iter().sum();
                let s = serial_total.as_secs_f64() / mode_total.as_secs_f64();
                speedups.push(s);
                row.push(f2(s));
            }
            // Rows are matched by label, not position, so a restricted
            // `NSCC_MODES` list keeps the summary honest.
            let mode_labels: Vec<&str> = per_func[0].labels.iter().map(String::as_str).collect();
            let best_partial = mode_labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(f64::NAN, f64::max);
            let best_comp = mode_labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| !l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(1.0, f64::max);
            let improvement = best_partial / best_comp - 1.0;
            row.push(if improvement.is_finite() {
                format!("{:+.0}%", improvement * 100.0)
            } else {
                "n/a".to_string()
            });
            // Warp of the fully-async mode, averaged over functions (only
            // reported when `async` is in the mode set).
            let warp: Option<f64> = mode_labels.iter().position(|&l| l == "async").map(|ai| {
                per_func.iter().map(|f| f.warps[ai]).sum::<f64>() / per_func.len() as f64
            });
            row.push(warp.map_or("n/a".to_string(), |w| format!("{w:.2}")));
            rows.push(row);
            // Report metrics come from the averaged panel only.
            if funcs.len() == functions.len() {
                for (mi, s) in speedups.iter().enumerate() {
                    let label = &per_func[0].labels[mi];
                    metrics.push((format!("load{load}_{label}"), *s));
                }
                if improvement.is_finite() {
                    metrics.push((format!("load{load}_improvement"), improvement));
                }
                if let Some(w) = warp {
                    metrics.push((format!("load{load}_warp_async"), w));
                }
            }
        }
        print!("{}", render_table(&rows));
    }

    if scale.json {
        let mut rep = RunReport::new("fig4", &hub);
        rep.param("runs", scale.runs as f64)
            .param("generations", scale.generations as f64)
            .param("functions", functions.len() as f64)
            .param("seed", scale.seed as f64)
            .param("procs", 4.0);
        for (k, v) in metrics {
            rep.metric(k, v);
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        rep.comm = Some(comm);
        if let Some(acc) = &obs_merged {
            rep.obs = acc.clone();
        }
        rep.note_degradation();
        stamp_wall(&scale, &hub, &mut rep);
        stamp_audit(&auditor, &mut rep);
        stamp_staleness(&scale, &hub, stal_merged, &mut rep);
        write_report(&scale, &rep);
    }
    write_flight(&scale, &hub, &auditor, 0, "fig4");
    if ckpt.is_some() {
        if scale.trace {
            eprintln!(
                "note: NSCC_TRACE is unsupported with NSCC_CKPT_DIR (events live in \
                 per-cell hubs); no TRACE_fig4.json written"
            );
        }
    } else {
        write_trace(&scale, &hub, "fig4");
    }
    let folded_obs = match &obs_merged {
        Some(acc) => acc.clone(),
        None => hub.summary(),
    };
    write_folded(&scale, &folded_obs);
    hub.live_final(&folded_obs);
}
