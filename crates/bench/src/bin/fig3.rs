//! Regenerate **Figure 3**: parallel probabilistic-inference speedups on
//! the unloaded network for a 2-node configuration — synchronous, fully
//! asynchronous (rollback), and `Global_Read` ages, for each of the four
//! Table 2 networks plus the average panel. With `NSCC_JSON=1` (or
//! `--json`) also writes `BENCH_fig3.json`.

use nscc_bayes::{StopRule, TABLE2};
use nscc_bench::{banner, make_hub, write_report, write_trace, Scale};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_bayes_experiment, BayesExpResult, BayesExperiment, RunReport};
use nscc_dsm::DsmStats;
use nscc_net::NetStats;
use nscc_sim::SimTime;

fn main() {
    let scale = Scale::from_env();
    print!(
        "{}",
        banner(
            "Figure 3: Bayesian-network speedups on the unloaded network (2 processors)",
            &scale
        )
    );

    let hub = make_hub(&scale);
    let mut results: Vec<BayesExpResult> = Vec::new();
    for netid in TABLE2 {
        let mut exp = BayesExperiment {
            stop: StopRule {
                halfwidth: scale.ci,
                ..StopRule::default()
            },
            runs: scale.runs,
            base_seed: scale.seed,
            obs: (scale.json || scale.trace).then(|| hub.clone()),
            ..BayesExperiment::new(netid, 2)
        };
        exp.platform.msg.mailbox_warn = scale.mailbox_warn;
        results.push(run_bayes_experiment(&exp).expect("experiment runs"));
    }

    let labels: Vec<String> = results[0].modes.iter().map(|m| m.label.clone()).collect();
    let mut rows = vec![{
        let mut h = vec!["network".to_string(), "seq(s)".to_string()];
        h.extend(labels.iter().cloned());
        h.push("best-partial/best-comp".to_string());
        h
    }];
    for r in &results {
        let mut row = vec![
            r.net.name().to_string(),
            format!("{:.2}", r.seq_time.as_secs_f64()),
        ];
        for m in &r.modes {
            row.push(f2(m.speedup));
        }
        row.push(format!("{:+.0}%", r.improvement() * 100.0));
        rows.push(row);
    }
    // Average panel: ratio of summed sequential to summed parallel times.
    let seq_total: SimTime = results.iter().map(|r| r.seq_time).sum();
    let mut avg = vec!["average".to_string(), String::new()];
    let mut best_partial = f64::MIN;
    let mut best_comp = 1.0f64;
    for (mi, label) in labels.iter().enumerate() {
        let mode_total: SimTime = results.iter().map(|r| r.modes[mi].mean_time).sum();
        let s = seq_total.as_secs_f64() / mode_total.as_secs_f64();
        if label.starts_with("age=") {
            best_partial = best_partial.max(s);
        } else {
            best_comp = best_comp.max(s);
        }
        avg.push(f2(s));
    }
    avg.push(format!("{:+.0}%", (best_partial / best_comp - 1.0) * 100.0));
    rows.push(avg);
    print!("{}", render_table(&rows));
    println!(
        "\nrollbacks per converged run (mean): {}",
        results
            .iter()
            .map(|r| format!(
                "{}: async={:.0} best-age={:.0}",
                r.net.name(),
                r.modes[1].mean_rollbacks,
                r.best_partial().mean_rollbacks
            ))
            .collect::<Vec<_>>()
            .join("  ")
    );

    if scale.json {
        let mut rep = RunReport::new("fig3", &hub);
        rep.param("runs", scale.runs as f64)
            .param("ci", scale.ci)
            .param("seed", scale.seed as f64)
            .param("procs", 2.0);
        let mut dsm = DsmStats::default();
        let mut net = NetStats::default();
        for r in &results {
            dsm.merge(&r.dsm);
            net.merge(&r.net_stats);
            let name = r.net.name();
            rep.metric(format!("{name}_seq_s"), r.seq_time.as_secs_f64());
            rep.metric(format!("{name}_improvement"), r.improvement());
            for m in &r.modes {
                rep.metric(format!("{name}_{}", m.label), m.speedup);
            }
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        rep.note_degradation();
        write_report(&scale, &rep);
    }
    write_trace(&scale, &hub, "fig3");
}
