//! Regenerate **Figure 3**: parallel probabilistic-inference speedups on
//! the unloaded network for a 2-node configuration — synchronous, fully
//! asynchronous (rollback), and `Global_Read` ages, for each of the four
//! Table 2 networks plus the average panel. With `NSCC_JSON=1` (or
//! `--json`) also writes `BENCH_fig3.json`.
//!
//! With `NSCC_CKPT_DIR` set, every completed network cell is
//! checkpointed; a killed sweep rerun with `NSCC_RESUME=1` (or
//! `--resume`) skips the finished cells and produces a byte-identical
//! report.

use nscc_bayes::{StopRule, TABLE2};
use nscc_bench::{
    attach_audit, attach_live, banner, make_hub, stamp_audit, stamp_staleness, stamp_wall,
    tap_audit, unwrap_or_flight, write_flight, write_folded, write_report, write_trace, ResumeOpts,
    Scale, SweepCkpt,
};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_bayes_experiment, BayesExpResult, BayesExperiment, RunReport};
use nscc_dsm::DsmStats;
use nscc_net::NetStats;
use nscc_obs::{Hub, HubSummary, StalenessSummary};
use nscc_sim::SimTime;

/// What one belief-network cell contributes to the figure — the
/// checkpoint unit of a resumable run.
struct Cell {
    net_name: String,
    seq_time: SimTime,
    labels: Vec<String>,
    speedups: Vec<f64>,
    mean_times: Vec<SimTime>,
    rollbacks: Vec<f64>,
    improvement: f64,
    /// Mean samples drawn per mode — the checkpoint header's iteration
    /// vector.
    iters: Vec<u64>,
    dsm: DsmStats,
    net_stats: NetStats,
    obs: HubSummary,
    staleness: StalenessSummary,
}

impl Cell {
    fn from_result(r: &BayesExpResult) -> Cell {
        Cell {
            net_name: r.net.name().to_string(),
            seq_time: r.seq_time,
            labels: r.modes.iter().map(|m| m.label.clone()).collect(),
            speedups: r.modes.iter().map(|m| m.speedup).collect(),
            mean_times: r.modes.iter().map(|m| m.mean_time).collect(),
            rollbacks: r.modes.iter().map(|m| m.mean_rollbacks).collect(),
            improvement: r.improvement(),
            iters: r.modes.iter().map(|m| m.mean_samples as u64).collect(),
            dsm: r.dsm,
            net_stats: r.net_stats.clone(),
            obs: Hub::new().summary(),
            staleness: StalenessSummary::default(),
        }
    }

    /// Index of the best partially-asynchronous mode (for the rollback
    /// footer line) — mirrors `BayesExpResult::best_partial`.
    fn best_partial(&self) -> usize {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.starts_with("age="))
            .max_by(|&(a, _), &(b, _)| self.speedups[a].total_cmp(&self.speedups[b]))
            .map(|(i, _)| i)
            .expect("age rows exist")
    }
}

impl nscc_ckpt::Snapshot for Cell {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.net_name.encode(enc);
        self.seq_time.encode(enc);
        self.labels.encode(enc);
        self.speedups.encode(enc);
        self.mean_times.encode(enc);
        self.rollbacks.encode(enc);
        self.improvement.encode(enc);
        self.iters.encode(enc);
        self.dsm.encode(enc);
        self.net_stats.encode(enc);
        self.obs.encode(enc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(Cell {
            net_name: nscc_ckpt::Snapshot::decode(dec)?,
            seq_time: nscc_ckpt::Snapshot::decode(dec)?,
            labels: nscc_ckpt::Snapshot::decode(dec)?,
            speedups: nscc_ckpt::Snapshot::decode(dec)?,
            mean_times: nscc_ckpt::Snapshot::decode(dec)?,
            rollbacks: nscc_ckpt::Snapshot::decode(dec)?,
            improvement: nscc_ckpt::Snapshot::decode(dec)?,
            iters: nscc_ckpt::Snapshot::decode(dec)?,
            dsm: nscc_ckpt::Snapshot::decode(dec)?,
            net_stats: nscc_ckpt::Snapshot::decode(dec)?,
            obs: nscc_ckpt::Snapshot::decode(dec)?,
            staleness: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

fn main() {
    let scale = Scale::from_env();
    let ropts = ResumeOpts::from_env();
    let mut ckpt = SweepCkpt::from_opts(&ropts, "fig3");
    print!(
        "{}",
        banner(
            "Figure 3: Bayesian-network speedups on the unloaded network (2 processors)",
            &scale
        )
    );

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "fig3");
    let auditor = attach_audit(&scale, &hub);
    let mut obs_merged = ckpt.as_ref().map(|_| Hub::new().summary());
    let mut stal_merged = ckpt.as_ref().map(|_| StalenessSummary::default());
    let mut results: Vec<Cell> = Vec::new();
    for (ci, netid) in TABLE2.iter().enumerate() {
        let cell_idx = ci as u64;
        let loaded: Option<Cell> =
            ckpt.as_ref()
                .and_then(|c| c.load_cell(cell_idx))
                .and_then(|payload| match nscc_ckpt::from_bytes(&payload) {
                    Ok(cell) => Some(cell),
                    Err(e) => {
                        eprintln!("warning: recomputing cell {cell_idx}: {e}");
                        None
                    }
                });
        let cell = match loaded {
            Some(cell) => cell,
            None => {
                let (exp_obs, cell_hub) = if ckpt.is_some() {
                    let h = make_hub(&scale);
                    tap_audit(&auditor, &h);
                    (scale.wants_obs().then(|| h.clone()), Some(h))
                } else {
                    (scale.wants_obs().then(|| hub.clone()), None)
                };
                let mut exp = BayesExperiment {
                    stop: StopRule {
                        halfwidth: scale.ci,
                        ..StopRule::default()
                    },
                    runs: scale.runs,
                    base_seed: scale.seed,
                    obs: exp_obs,
                    ..BayesExperiment::new(*netid, 2)
                };
                exp.platform.msg.mailbox_warn = scale.mailbox_warn;
                let res = unwrap_or_flight(
                    run_bayes_experiment(&exp),
                    &scale,
                    exp.obs.as_ref(),
                    &auditor,
                    "fig3",
                );
                let mut cell = Cell::from_result(&res);
                if let Some(h) = cell_hub {
                    cell.obs = h.summary();
                    cell.staleness = h.staleness_summary();
                    // Carry the cell's wall-clock scheduler cost and
                    // flight ring into the main hub (the feed/report and
                    // any post-mortem dump read from there).
                    hub.adopt_sched(&h);
                    hub.adopt_flight(&h);
                }
                if let Some(ck) = ckpt.as_mut() {
                    ck.save_cell(
                        cell_idx,
                        cell.seq_time.as_nanos(),
                        &cell.iters,
                        &nscc_ckpt::to_bytes(&cell),
                    );
                }
                cell
            }
        };
        if let Some(acc) = obs_merged.as_mut() {
            acc.merge(&cell.obs);
        }
        if let Some(acc) = stal_merged.as_mut() {
            acc.merge(&cell.staleness);
        }
        results.push(cell);
    }

    let labels: Vec<String> = results[0].labels.clone();
    let mut rows = vec![{
        let mut h = vec!["network".to_string(), "seq(s)".to_string()];
        h.extend(labels.iter().cloned());
        h.push("best-partial/best-comp".to_string());
        h
    }];
    for r in &results {
        let mut row = vec![
            r.net_name.clone(),
            format!("{:.2}", r.seq_time.as_secs_f64()),
        ];
        for s in &r.speedups {
            row.push(f2(*s));
        }
        row.push(format!("{:+.0}%", r.improvement * 100.0));
        rows.push(row);
    }
    // Average panel: ratio of summed sequential to summed parallel times.
    let seq_total: SimTime = results.iter().map(|r| r.seq_time).sum();
    let mut avg = vec!["average".to_string(), String::new()];
    let mut best_partial = f64::MIN;
    let mut best_comp = 1.0f64;
    for (mi, label) in labels.iter().enumerate() {
        let mode_total: SimTime = results.iter().map(|r| r.mean_times[mi]).sum();
        let s = seq_total.as_secs_f64() / mode_total.as_secs_f64();
        if label.starts_with("age=") {
            best_partial = best_partial.max(s);
        } else {
            best_comp = best_comp.max(s);
        }
        avg.push(f2(s));
    }
    avg.push(format!("{:+.0}%", (best_partial / best_comp - 1.0) * 100.0));
    rows.push(avg);
    print!("{}", render_table(&rows));
    println!(
        "\nrollbacks per converged run (mean): {}",
        results
            .iter()
            .map(|r| format!(
                "{}: async={:.0} best-age={:.0}",
                r.net_name,
                r.rollbacks[1],
                r.rollbacks[r.best_partial()]
            ))
            .collect::<Vec<_>>()
            .join("  ")
    );

    if scale.json {
        let mut rep = RunReport::new("fig3", &hub);
        rep.param("runs", scale.runs as f64)
            .param("ci", scale.ci)
            .param("seed", scale.seed as f64)
            .param("procs", 2.0);
        let mut dsm = DsmStats::default();
        let mut net = NetStats::default();
        for r in &results {
            dsm.merge(&r.dsm);
            net.merge(&r.net_stats);
            let name = &r.net_name;
            rep.metric(format!("{name}_seq_s"), r.seq_time.as_secs_f64());
            rep.metric(format!("{name}_improvement"), r.improvement);
            for (label, s) in r.labels.iter().zip(&r.speedups) {
                rep.metric(format!("{name}_{label}"), *s);
            }
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        if let Some(acc) = &obs_merged {
            rep.obs = acc.clone();
        }
        rep.note_degradation();
        stamp_wall(&scale, &hub, &mut rep);
        stamp_audit(&auditor, &mut rep);
        stamp_staleness(&scale, &hub, stal_merged, &mut rep);
        write_report(&scale, &rep);
    }
    write_flight(&scale, &hub, &auditor, 0, "fig3");
    if ckpt.is_some() {
        if scale.trace {
            eprintln!(
                "note: NSCC_TRACE is unsupported with NSCC_CKPT_DIR (events live in \
                 per-cell hubs); no TRACE_fig3.json written"
            );
        }
    } else {
        write_trace(&scale, &hub, "fig3");
    }
    let folded_obs = match &obs_merged {
        Some(acc) => acc.clone(),
        None => hub.summary(),
    };
    write_folded(&scale, &folded_obs);
    hub.live_final(&folded_obs);
}
