//! Regenerate **Table 1**: the eight-function GA test bed — definition,
//! limits, known minimum, and a verification that our implementation
//! attains each minimum at the known optimum.

use nscc_core::fmt::render_table;
use nscc_ga::{TestFn, ALL_FUNCTIONS};

fn main() {
    let mut rows = vec![vec![
        "No.".to_string(),
        "Function".to_string(),
        "dims".to_string(),
        "limits".to_string(),
        "bits/var".to_string(),
        "min f(x) (paper)".to_string(),
        "f(argmin) (ours)".to_string(),
    ]];
    for f in ALL_FUNCTIONS {
        let (lo, hi) = f.limits();
        let at_argmin = f.eval(&f.argmin());
        rows.push(vec![
            f.number().to_string(),
            f.name().to_string(),
            f.dims().to_string(),
            format!("[{lo}, {hi}]"),
            f.bits_per_var().to_string(),
            format!("{:.5}", paper_min(f)),
            format!("{at_argmin:.5}"),
        ]);
    }
    println!("=== Table 1: Eight function test bed for GAs ===");
    print!("{}", render_table(&rows));
    println!();
    println!(
        "note: F4's Table-1 minimum (≤ -2.5) includes its Gauss(0,1) noise; \
         the deterministic part is minimized at 0."
    );
}

/// The minimum as printed in Table 1.
fn paper_min(f: TestFn) -> f64 {
    match f {
        TestFn::F4QuarticNoise => -2.5,
        TestFn::F5Foxholes => 0.99804,
        TestFn::F7Schwefel => -4189.83,
        _ => 0.0,
    }
}
