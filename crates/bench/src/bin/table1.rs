//! Regenerate **Table 1**: the eight-function GA test bed — definition,
//! limits, known minimum, and a verification that our implementation
//! attains each minimum at the known optimum. With `NSCC_JSON=1` (or
//! `--json`) also writes `BENCH_table1.json` (no simulation is involved,
//! so the report carries only the per-function minima).

use nscc_bench::{
    attach_audit, attach_live, make_hub, stamp_audit, stamp_staleness, stamp_wall, write_flight,
    write_folded, write_report, write_trace, Scale,
};
use nscc_core::fmt::render_table;
use nscc_core::RunReport;
use nscc_ga::{TestFn, ALL_FUNCTIONS};

fn main() {
    let scale = Scale::from_env();
    let mut rows = vec![vec![
        "No.".to_string(),
        "Function".to_string(),
        "dims".to_string(),
        "limits".to_string(),
        "bits/var".to_string(),
        "min f(x) (paper)".to_string(),
        "f(argmin) (ours)".to_string(),
    ]];
    for f in ALL_FUNCTIONS {
        let (lo, hi) = f.limits();
        let at_argmin = f.eval(&f.argmin());
        rows.push(vec![
            f.number().to_string(),
            f.name().to_string(),
            f.dims().to_string(),
            format!("[{lo}, {hi}]"),
            f.bits_per_var().to_string(),
            format!("{:.5}", paper_min(f)),
            format!("{at_argmin:.5}"),
        ]);
    }
    println!("=== Table 1: Eight function test bed for GAs ===");
    print!("{}", render_table(&rows));
    println!();
    println!(
        "note: F4's Table-1 minimum (≤ -2.5) includes its Gauss(0,1) noise; \
         the deterministic part is minimized at 0."
    );

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "table1");
    let auditor = attach_audit(&scale, &hub);
    if scale.json {
        let mut rep = RunReport::new("table1", &hub);
        rep.param("functions", ALL_FUNCTIONS.len() as f64);
        for f in ALL_FUNCTIONS {
            rep.metric(format!("f{}_at_argmin", f.number()), f.eval(&f.argmin()));
            rep.metric(format!("f{}_paper_min", f.number()), paper_min(f));
        }
        stamp_wall(&scale, &hub, &mut rep);
        stamp_audit(&auditor, &mut rep);
        stamp_staleness(&scale, &hub, None, &mut rep);
        write_report(&scale, &rep);
    }
    write_flight(&scale, &hub, &auditor, 0, "table1");
    write_trace(&scale, &hub, "table1");
    write_folded(&scale, &hub.summary());
    hub.live_final(&hub.summary());
}

/// The minimum as printed in Table 1.
fn paper_min(f: TestFn) -> f64 {
    match f {
        TestFn::F4QuarticNoise => -2.5,
        TestFn::F5Foxholes => 0.99804,
        TestFn::F7Schwefel => -4189.83,
        _ => 0.0,
    }
}
