//! Regenerate **Figure 2**: GA speedups over the serial baseline on the
//! unloaded Ethernet, for 2–16 processors — synchronous, fully
//! asynchronous, `Global_Read` ages {0, 5, 10, 20, 30}, and the
//! best-partial-vs-best-competitor summary bar.
//!
//! Prints the best case (function 1) and the average over all eight
//! benchmark functions, exactly the two panels the paper shows. With
//! `NSCC_JSON=1` (or `--json`) also writes `BENCH_fig2.json`: the
//! averaged-panel speedups plus merged DSM/network/message counters and
//! the observability hub's staleness/block/delay histograms.
//!
//! With `NSCC_CKPT_DIR` set, every completed function × processor cell
//! is checkpointed; a killed sweep rerun with `NSCC_RESUME=1` (or
//! `--resume`) skips the finished cells and produces a byte-identical
//! report.

use nscc_bench::{
    all_functions_flag, attach_audit, attach_live, banner, make_hub, modes_from_env, stamp_audit,
    stamp_staleness, stamp_wall, tap_audit, unwrap_or_flight, write_flight, write_folded,
    write_report, write_trace, ResumeOpts, Scale, SweepCkpt,
};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, GaExpResult, GaExperiment, RunReport};
use nscc_dsm::DsmStats;
use nscc_ga::{TestFn, ALL_FUNCTIONS};
use nscc_msg::CommStats;
use nscc_net::NetStats;
use nscc_obs::{Hub, HubSummary, StalenessSummary};
use nscc_sim::SimTime;

/// What one function × processor cell contributes to the figure — the
/// checkpoint unit of a resumable run. `times[i]` is mode `labels[i]`'s
/// mean completion time (`SimTime::MAX` marks a DNF).
struct Cell {
    serial_time: SimTime,
    labels: Vec<String>,
    times: Vec<SimTime>,
    /// Mean generations per mode — the checkpoint header's iteration
    /// vector.
    iters: Vec<u64>,
    dsm: DsmStats,
    net: NetStats,
    comm: CommStats,
    obs: HubSummary,
    staleness: StalenessSummary,
}

impl Cell {
    fn from_result(r: &GaExpResult) -> Cell {
        let mut dsm = DsmStats::default();
        for m in &r.modes {
            dsm.merge(&m.dsm);
        }
        Cell {
            serial_time: r.serial_time,
            labels: r.modes.iter().map(|m| m.label.clone()).collect(),
            times: r.modes.iter().map(|m| m.mean_time).collect(),
            iters: r.modes.iter().map(|m| m.mean_generations as u64).collect(),
            dsm,
            net: r.net.clone(),
            comm: r.comm,
            obs: Hub::new().summary(),
            staleness: StalenessSummary::default(),
        }
    }
}

impl nscc_ckpt::Snapshot for Cell {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.serial_time.encode(enc);
        self.labels.encode(enc);
        self.times.encode(enc);
        self.iters.encode(enc);
        self.dsm.encode(enc);
        self.net.encode(enc);
        self.comm.encode(enc);
        self.obs.encode(enc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(Cell {
            serial_time: nscc_ckpt::Snapshot::decode(dec)?,
            labels: nscc_ckpt::Snapshot::decode(dec)?,
            times: nscc_ckpt::Snapshot::decode(dec)?,
            iters: nscc_ckpt::Snapshot::decode(dec)?,
            dsm: nscc_ckpt::Snapshot::decode(dec)?,
            net: nscc_ckpt::Snapshot::decode(dec)?,
            comm: nscc_ckpt::Snapshot::decode(dec)?,
            obs: nscc_ckpt::Snapshot::decode(dec)?,
            staleness: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

fn main() {
    let scale = Scale::from_env();
    let ropts = ResumeOpts::from_env();
    let mut ckpt = SweepCkpt::from_opts(&ropts, "fig2");
    let all_functions = all_functions_flag();
    print!(
        "{}",
        banner("Figure 2: GA speedups on the unloaded network", &scale)
    );

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "fig2");
    let auditor = attach_audit(&scale, &hub);
    let modes = modes_from_env();
    let procs: Vec<usize> = vec![2, 4, 8, 16];
    let functions: &[TestFn] = if all_functions {
        &ALL_FUNCTIONS
    } else {
        // The averaged panel still needs every function; restrict only in
        // quick mode to the four cheapest.
        &ALL_FUNCTIONS[..4]
    };

    // Collect cells: results[func][proc index]. Checkpointed runs give
    // each cell its own hub (so a stored cell carries its own summary)
    // and merge the summaries in grid order; plain runs keep the single
    // shared hub.
    let mut obs_merged = ckpt.as_ref().map(|_| Hub::new().summary());
    let mut stal_merged = ckpt.as_ref().map(|_| StalenessSummary::default());
    let mut results: Vec<Vec<Cell>> = Vec::new();
    for (fi, &func) in functions.iter().enumerate() {
        let mut per_proc = Vec::new();
        for (pi, &p) in procs.iter().enumerate() {
            let cell_idx = (fi * procs.len() + pi) as u64;
            let loaded: Option<Cell> =
                ckpt.as_ref()
                    .and_then(|c| c.load_cell(cell_idx))
                    .and_then(|payload| match nscc_ckpt::from_bytes(&payload) {
                        Ok(cell) => Some(cell),
                        Err(e) => {
                            eprintln!("warning: recomputing cell {cell_idx}: {e}");
                            None
                        }
                    });
            let cell = match loaded {
                Some(cell) => cell,
                None => {
                    let (exp_obs, cell_hub) = if ckpt.is_some() {
                        let h = make_hub(&scale);
                        tap_audit(&auditor, &h);
                        (scale.wants_obs().then(|| h.clone()), Some(h))
                    } else {
                        (scale.wants_obs().then(|| hub.clone()), None)
                    };
                    let mut exp = GaExperiment {
                        generations: scale.generations,
                        runs: scale.runs,
                        base_seed: scale.seed,
                        obs: exp_obs,
                        modes: modes.clone().unwrap_or_else(GaExperiment::default_modes),
                        ..GaExperiment::new(func, p)
                    };
                    exp.platform.msg.mailbox_warn = scale.mailbox_warn;
                    let res = unwrap_or_flight(
                        run_ga_experiment(&exp),
                        &scale,
                        exp.obs.as_ref(),
                        &auditor,
                        "fig2",
                    );
                    let mut cell = Cell::from_result(&res);
                    if let Some(h) = cell_hub {
                        cell.obs = h.summary();
                        cell.staleness = h.staleness_summary();
                        // Carry the cell's wall-clock scheduler cost and
                        // flight ring into the main hub (the feed/report
                        // and any post-mortem dump read from there).
                        hub.adopt_sched(&h);
                        hub.adopt_flight(&h);
                    }
                    if let Some(ck) = ckpt.as_mut() {
                        ck.save_cell(
                            cell_idx,
                            cell.serial_time.as_nanos(),
                            &cell.iters,
                            &nscc_ckpt::to_bytes(&cell),
                        );
                    }
                    cell
                }
            };
            if let Some(acc) = obs_merged.as_mut() {
                acc.merge(&cell.obs);
            }
            if let Some(acc) = stal_merged.as_mut() {
                acc.merge(&cell.staleness);
            }
            per_proc.push(cell);
        }
        results.push(per_proc);
    }

    // Panel 1: best case (function 1).
    println!("\n-- best case: function 1 (sphere) --");
    print_panel(&procs, &results[0..1]);

    // Panel 2: average over all functions (ratio of summed serial times
    // to summed parallel times, as the paper defines it).
    println!("\n-- average over {} functions --", results.len());
    print_panel(&procs, &results);

    if scale.json {
        let mut rep = RunReport::new("fig2", &hub);
        rep.param("runs", scale.runs as f64)
            .param("generations", scale.generations as f64)
            .param("functions", functions.len() as f64)
            .param("seed", scale.seed as f64);
        let mut dsm = DsmStats::default();
        let mut net = NetStats::default();
        let mut comm = CommStats::default();
        for per_proc in &results {
            for c in per_proc {
                dsm.merge(&c.dsm);
                net.merge(&c.net);
                comm.merge(&c.comm);
            }
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        rep.comm = Some(comm);
        let labels = mode_labels(&results);
        for (p, speedups, improvement) in panel_rows(&procs, &results) {
            for (label, s) in labels.iter().zip(&speedups) {
                rep.metric(format!("p{p}_{label}"), *s);
            }
            if improvement.is_finite() {
                rep.metric(format!("p{p}_improvement"), improvement);
            }
        }
        if let Some(acc) = &obs_merged {
            rep.obs = acc.clone();
        }
        rep.note_degradation();
        stamp_wall(&scale, &hub, &mut rep);
        stamp_audit(&auditor, &mut rep);
        stamp_staleness(&scale, &hub, stal_merged, &mut rep);
        write_report(&scale, &rep);
    }
    write_flight(&scale, &hub, &auditor, 0, "fig2");
    if ckpt.is_some() {
        if scale.trace {
            eprintln!(
                "note: NSCC_TRACE is unsupported with NSCC_CKPT_DIR (events live in \
                 per-cell hubs); no TRACE_fig2.json written"
            );
        }
    } else {
        write_trace(&scale, &hub, "fig2");
    }
    let folded_obs = match &obs_merged {
        Some(acc) => acc.clone(),
        None => hub.summary(),
    };
    write_folded(&scale, &folded_obs);
    hub.live_final(&folded_obs);
}

fn mode_labels(per_func: &[Vec<Cell>]) -> Vec<String> {
    per_func[0][0].labels.clone()
}

/// Per processor count: the function-averaged speedup per mode (0.0 marks
/// a DNF) and the best-partial-over-best-competitor improvement (NaN when
/// the reported mode set — `NSCC_MODES` — has no `age=N` row).
fn panel_rows(procs: &[usize], per_func: &[Vec<Cell>]) -> Vec<(usize, Vec<f64>, f64)> {
    let labels = mode_labels(per_func);
    procs
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            // Aggregate over functions: sum of serial times / sum of mode
            // times. A mode that failed to converge in any cell is a DNF
            // for the aggregate (SimTime::MAX marks it).
            let serial_total: SimTime = per_func.iter().map(|f| f[pi].serial_time).sum();
            let speedups: Vec<f64> = (0..labels.len())
                .map(|mi| {
                    let times: Vec<SimTime> = per_func.iter().map(|f| f[pi].times[mi]).collect();
                    if times.iter().any(|&t| t == SimTime::MAX) {
                        0.0
                    } else {
                        let mode_total: SimTime = times.into_iter().sum();
                        serial_total.as_secs_f64() / mode_total.as_secs_f64()
                    }
                })
                .collect();
            // Best partial over best competitor (competitors: serial=1,
            // sync, async). Rows are matched by label, not position, so a
            // restricted mode list keeps the summary honest.
            let best_partial = labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(f64::NAN, f64::max);
            let best_comp = labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| !l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(1.0, f64::max);
            (p, speedups, best_partial / best_comp - 1.0)
        })
        .collect()
}

fn print_panel(procs: &[usize], per_func: &[Vec<Cell>]) {
    let labels = mode_labels(per_func);
    let mut rows = vec![{
        let mut h = vec!["procs".to_string()];
        h.extend(labels.iter().cloned());
        h.push("best-partial/best-comp".to_string());
        h
    }];
    for (p, speedups, improvement) in panel_rows(procs, per_func) {
        let mut row = vec![p.to_string()];
        for &s in &speedups {
            row.push(if s == 0.0 { "DNF".to_string() } else { f2(s) });
        }
        row.push(if improvement.is_finite() {
            format!("{:+.0}%", improvement * 100.0)
        } else {
            "n/a".to_string()
        });
        rows.push(row);
    }
    print!("{}", render_table(&rows));
}
