//! Regenerate **Figure 2**: GA speedups over the serial baseline on the
//! unloaded Ethernet, for 2–16 processors — synchronous, fully
//! asynchronous, `Global_Read` ages {0, 5, 10, 20, 30}, and the
//! best-partial-vs-best-competitor summary bar.
//!
//! Prints the best case (function 1) and the average over all eight
//! benchmark functions, exactly the two panels the paper shows.

use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, GaExpResult, GaExperiment};
use nscc_bench::{banner, Scale};
use nscc_ga::{TestFn, ALL_FUNCTIONS};
use nscc_sim::SimTime;

fn main() {
    let scale = Scale::from_env();
    let all_functions = std::env::args().any(|a| a == "--all-functions");
    print!(
        "{}",
        banner("Figure 2: GA speedups on the unloaded network", &scale)
    );

    let procs: Vec<usize> = vec![2, 4, 8, 16];
    let functions: &[TestFn] = if all_functions {
        &ALL_FUNCTIONS
    } else {
        // The averaged panel still needs every function; restrict only in
        // quick mode to the four cheapest.
        &ALL_FUNCTIONS[..4]
    };

    // Collect cells: results[func][proc index].
    let mut results: Vec<Vec<GaExpResult>> = Vec::new();
    for &func in functions {
        let mut per_proc = Vec::new();
        for &p in &procs {
            let exp = GaExperiment {
                generations: scale.generations,
                runs: scale.runs,
                base_seed: scale.seed,
                ..GaExperiment::new(func, p)
            };
            let res = run_ga_experiment(&exp).expect("experiment runs");
            per_proc.push(res);
        }
        results.push(per_proc);
    }

    // Panel 1: best case (function 1).
    println!("\n-- best case: function 1 (sphere) --");
    print_panel(&procs, &results[0..1]);

    // Panel 2: average over all functions (ratio of summed serial times
    // to summed parallel times, as the paper defines it).
    println!(
        "\n-- average over {} functions --",
        results.len()
    );
    print_panel(&procs, &results);
}

fn print_panel(procs: &[usize], per_func: &[Vec<GaExpResult>]) {
    let labels: Vec<String> = per_func[0][0]
        .modes
        .iter()
        .map(|m| m.label.clone())
        .collect();
    let mut rows = vec![{
        let mut h = vec!["procs".to_string()];
        h.extend(labels.iter().cloned());
        h.push("best-partial/best-comp".to_string());
        h
    }];
    for (pi, &p) in procs.iter().enumerate() {
        // Aggregate over functions: sum of serial times / sum of mode times.
        let serial_total: SimTime = per_func.iter().map(|f| f[pi].serial_time).sum();
        let mut row = vec![p.to_string()];
        let mut speedups = Vec::new();
        for (mi, _) in labels.iter().enumerate() {
            // A mode that failed to converge in any cell is a DNF for the
            // aggregate (SimTime::MAX marks it).
            let times: Vec<SimTime> = per_func.iter().map(|f| f[pi].modes[mi].mean_time).collect();
            if times.iter().any(|&t| t == SimTime::MAX) {
                speedups.push(0.0);
                row.push("DNF".to_string());
                continue;
            }
            let mode_total: SimTime = times.into_iter().sum();
            let s = serial_total.as_secs_f64() / mode_total.as_secs_f64();
            speedups.push(s);
            row.push(f2(s));
        }
        // Best partial over best competitor (competitors: serial=1, sync,
        // async).
        let best_partial = speedups[2..].iter().cloned().fold(f64::MIN, f64::max);
        let best_comp = speedups[..2].iter().cloned().fold(1.0, f64::max);
        row.push(format!("{:+.0}%", (best_partial / best_comp - 1.0) * 100.0));
        rows.push(row);
    }
    print!("{}", render_table(&rows));
}
