//! Regenerate **Figure 2**: GA speedups over the serial baseline on the
//! unloaded Ethernet, for 2–16 processors — synchronous, fully
//! asynchronous, `Global_Read` ages {0, 5, 10, 20, 30}, and the
//! best-partial-vs-best-competitor summary bar.
//!
//! Prints the best case (function 1) and the average over all eight
//! benchmark functions, exactly the two panels the paper shows. With
//! `NSCC_JSON=1` (or `--json`) also writes `BENCH_fig2.json`: the
//! averaged-panel speedups plus merged DSM/network counters and the
//! observability hub's staleness/block/delay histograms.

use nscc_bench::{banner, make_hub, modes_from_env, write_report, write_trace, Scale};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, GaExpResult, GaExperiment, RunReport};
use nscc_dsm::DsmStats;
use nscc_ga::{TestFn, ALL_FUNCTIONS};
use nscc_net::NetStats;
use nscc_sim::SimTime;

fn main() {
    let scale = Scale::from_env();
    let all_functions = std::env::args().any(|a| a == "--all-functions");
    print!(
        "{}",
        banner("Figure 2: GA speedups on the unloaded network", &scale)
    );

    let hub = make_hub(&scale);
    let modes = modes_from_env();
    let procs: Vec<usize> = vec![2, 4, 8, 16];
    let functions: &[TestFn] = if all_functions {
        &ALL_FUNCTIONS
    } else {
        // The averaged panel still needs every function; restrict only in
        // quick mode to the four cheapest.
        &ALL_FUNCTIONS[..4]
    };

    // Collect cells: results[func][proc index].
    let mut results: Vec<Vec<GaExpResult>> = Vec::new();
    for &func in functions {
        let mut per_proc = Vec::new();
        for &p in &procs {
            let exp = GaExperiment {
                generations: scale.generations,
                runs: scale.runs,
                base_seed: scale.seed,
                obs: (scale.json || scale.trace).then(|| hub.clone()),
                modes: modes.clone().unwrap_or_else(GaExperiment::default_modes),
                ..GaExperiment::new(func, p)
            };
            let res = run_ga_experiment(&exp).expect("experiment runs");
            per_proc.push(res);
        }
        results.push(per_proc);
    }

    // Panel 1: best case (function 1).
    println!("\n-- best case: function 1 (sphere) --");
    print_panel(&procs, &results[0..1]);

    // Panel 2: average over all functions (ratio of summed serial times
    // to summed parallel times, as the paper defines it).
    println!("\n-- average over {} functions --", results.len());
    print_panel(&procs, &results);

    if scale.json {
        let mut rep = RunReport::new("fig2", &hub);
        rep.param("runs", scale.runs as f64)
            .param("generations", scale.generations as f64)
            .param("functions", functions.len() as f64)
            .param("seed", scale.seed as f64);
        let mut dsm = DsmStats::default();
        let mut net = NetStats::default();
        for per_proc in &results {
            for r in per_proc {
                net.merge(&r.net);
                for m in &r.modes {
                    dsm.merge(&m.dsm);
                }
            }
        }
        rep.dsm = dsm;
        rep.net = Some(net);
        let labels = mode_labels(&results);
        for (p, speedups, improvement) in panel_rows(&procs, &results) {
            for (label, s) in labels.iter().zip(&speedups) {
                rep.metric(format!("p{p}_{label}"), *s);
            }
            if improvement.is_finite() {
                rep.metric(format!("p{p}_improvement"), improvement);
            }
        }
        write_report(&scale, &rep);
    }
    write_trace(&scale, &hub, "fig2");
}

fn mode_labels(per_func: &[Vec<GaExpResult>]) -> Vec<String> {
    per_func[0][0]
        .modes
        .iter()
        .map(|m| m.label.clone())
        .collect()
}

/// Per processor count: the function-averaged speedup per mode (0.0 marks
/// a DNF) and the best-partial-over-best-competitor improvement (NaN when
/// the reported mode set — `NSCC_MODES` — has no `age=N` row).
fn panel_rows(procs: &[usize], per_func: &[Vec<GaExpResult>]) -> Vec<(usize, Vec<f64>, f64)> {
    let labels = mode_labels(per_func);
    procs
        .iter()
        .enumerate()
        .map(|(pi, &p)| {
            // Aggregate over functions: sum of serial times / sum of mode
            // times. A mode that failed to converge in any cell is a DNF
            // for the aggregate (SimTime::MAX marks it).
            let serial_total: SimTime = per_func.iter().map(|f| f[pi].serial_time).sum();
            let speedups: Vec<f64> = (0..labels.len())
                .map(|mi| {
                    let times: Vec<SimTime> =
                        per_func.iter().map(|f| f[pi].modes[mi].mean_time).collect();
                    if times.iter().any(|&t| t == SimTime::MAX) {
                        0.0
                    } else {
                        let mode_total: SimTime = times.into_iter().sum();
                        serial_total.as_secs_f64() / mode_total.as_secs_f64()
                    }
                })
                .collect();
            // Best partial over best competitor (competitors: serial=1,
            // sync, async). Rows are matched by label, not position, so a
            // restricted mode list keeps the summary honest.
            let best_partial = labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(f64::NAN, f64::max);
            let best_comp = labels
                .iter()
                .zip(&speedups)
                .filter(|(l, _)| !l.starts_with("age="))
                .map(|(_, &s)| s)
                .fold(1.0, f64::max);
            (p, speedups, best_partial / best_comp - 1.0)
        })
        .collect()
}

fn print_panel(procs: &[usize], per_func: &[Vec<GaExpResult>]) {
    let labels = mode_labels(per_func);
    let mut rows = vec![{
        let mut h = vec!["procs".to_string()];
        h.extend(labels.iter().cloned());
        h.push("best-partial/best-comp".to_string());
        h
    }];
    for (p, speedups, improvement) in panel_rows(procs, per_func) {
        let mut row = vec![p.to_string()];
        for &s in &speedups {
            row.push(if s == 0.0 { "DNF".to_string() } else { f2(s) });
        }
        row.push(if improvement.is_finite() {
            format!("{:+.0}%", improvement * 100.0)
        } else {
            "n/a".to_string()
        });
        rows.push(row);
    }
    print!("{}", render_table(&rows));
}
