//! Regenerate **Table 2**: the four Bayesian belief networks — structure
//! statistics, 2-way partition edge-cut, and uniprocessor inference time
//! (logic sampling to a 90% CI of the configured half-width). With
//! `NSCC_JSON=1` (or `--json`) also writes `BENCH_table2.json` (the
//! baseline is sequential, so no DSM/network counters are involved).

use nscc_bayes::{Plan, StopRule, TABLE2};
use nscc_bench::{
    attach_audit, attach_live, banner, make_hub, stamp_audit, stamp_staleness, stamp_wall,
    write_flight, write_folded, write_report, write_trace, Scale,
};
use nscc_core::fmt::render_table;
use nscc_core::{run_sequential, BayesExperiment, RunReport};

fn main() {
    let scale = Scale::from_env();
    print!(
        "{}",
        banner("Table 2: Four Bayesian belief networks", &scale)
    );

    let mut rows = vec![vec![
        "".to_string(),
        "A".to_string(),
        "AA".to_string(),
        "C".to_string(),
        "Hailfinder".to_string(),
    ]];
    let mut nodes = vec!["Nodes".to_string()];
    let mut epn = vec!["Edges per node".to_string()];
    let mut vals = vec!["Values per node".to_string()];
    let mut cut = vec!["Edge-cut (2 parts)".to_string()];
    let mut cut_paper = vec!["  (paper)".to_string()];
    let mut time = vec!["Uniproc time (s)".to_string()];
    let mut time_paper = vec!["  (paper)".to_string()];
    let mut samples = vec!["Samples".to_string()];
    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "table2");
    let auditor = attach_audit(&scale, &hub);
    let mut rep = RunReport::new("table2", &hub);
    rep.param("runs", scale.runs as f64)
        .param("ci", scale.ci)
        .param("seed", scale.seed as f64);

    for (i, netid) in TABLE2.iter().enumerate() {
        let net = netid.build();
        let mut exp = BayesExperiment::new(*netid, 2);
        exp.stop = StopRule {
            halfwidth: scale.ci,
            ..StopRule::default()
        };
        let query = exp.standard_query();
        let plan = Plan::new(&net, 2, 42, &query);
        let mut t_sum = 0.0;
        let mut s_sum = 0.0;
        for r in 0..scale.runs {
            let seq = run_sequential(&exp, scale.seed + r as u64);
            t_sum += seq.time.as_secs_f64();
            s_sum += seq.samples as f64;
        }
        nodes.push(net.len().to_string());
        epn.push(format!("{:.1}", net.edges_per_node()));
        vals.push(net.max_arity().to_string());
        cut.push(plan.edge_cut.to_string());
        cut_paper.push(["24", "30", "24", "4"][i].to_string());
        time.push(format!("{:.2}", t_sum / scale.runs as f64));
        time_paper.push(["11.12", "11.19", "11.81", "3.15"][i].to_string());
        samples.push(format!("{:.0}", s_sum / scale.runs as f64));
        let name = netid.name();
        rep.metric(format!("{name}_edge_cut"), plan.edge_cut as f64);
        rep.metric(format!("{name}_uniproc_s"), t_sum / scale.runs as f64);
        rep.metric(format!("{name}_samples"), s_sum / scale.runs as f64);
    }
    rows.push(nodes);
    rows.push(epn);
    rows.push(vals);
    rows.push(cut);
    rows.push(cut_paper);
    rows.push(time);
    rows.push(time_paper);
    rows.push(samples);
    print!("{}", render_table(&rows));
    stamp_wall(&scale, &hub, &mut rep);
    stamp_audit(&auditor, &mut rep);
    stamp_staleness(&scale, &hub, None, &mut rep);
    write_report(&scale, &rep);
    write_flight(&scale, &hub, &auditor, 0, "table2");
    write_trace(&scale, &hub, "table2");
    write_folded(&scale, &hub.summary());
    hub.live_final(&rep.obs);
}
