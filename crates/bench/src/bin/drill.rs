//! Automated recovery drill: crash islands mid-run under scheduled
//! fault plans with the consistent-snapshot protocol and the crash
//! supervisor on, then verify the whole recovery story end to end.
//!
//! Four scenarios run back to back:
//!
//! * `single-crash` — one island dies and restarts once; the supervisor
//!   approves the restart and the warm restore (served from the newest
//!   consistent cut when one completed) rolls back no further than the
//!   `Global_Read` age bound.
//! * `double-crash` — two different islands die in separate windows;
//!   both restart under the same budget.
//! * `budget-exhausted` — one island dies twice against a budget of one
//!   restart; the supervisor gives up, the island retires, and the run
//!   completes *degraded* instead of deadlocking.
//! * `identity` — no crash at all: a snapshot-on run must reproduce the
//!   snapshot-off run's application metrics exactly (marker waves are
//!   out-of-band, so they must cost nothing and perturb nothing).
//!
//! Every check is printed as a table row; any failed check makes the
//! drill exit 1 after the report is written. With `NSCC_AUDIT=1` the
//! online auditor taps every scenario, so a rollback past the age bound
//! or an island pausing on the snapshot path is also a recorded
//! violation (and, with `NSCC_FLIGHT`, triggers a black-box dump for
//! `nscc postmortem`). With `NSCC_JSON=1` (or `--json`) the drill writes
//! `BENCH_drill.json` whose `recovery` section merges all scenarios —
//! the input of `nscc drill`.

use nscc_bench::{
    attach_audit, attach_live, banner, make_hub, stamp_audit, stamp_staleness, stamp_wall,
    unwrap_or_flight, write_flight, write_folded, write_report, write_trace, Scale,
};
use nscc_core::fmt::render_table;
use nscc_core::{run_ga_experiment, FaultPlan, GaExperiment, Platform, RecoveryStyle, RunReport};
use nscc_dsm::Coherence;
use nscc_ga::{CostModel, RecoverySummary, SupervisorPolicy, TestFn};
use nscc_obs::Hub;
use nscc_sim::SimTime;

const PROCS: usize = 4;

/// The drill's `Global_Read` age bound — also the rollback ceiling every
/// warm restore is checked against.
const AGE: u64 = 5;

/// One pass/fail verdict from a scenario.
struct Check {
    scenario: &'static str,
    what: &'static str,
    pass: bool,
    detail: String,
}

fn check(
    out: &mut Vec<Check>,
    scenario: &'static str,
    what: &'static str,
    pass: bool,
    detail: String,
) {
    out.push(Check {
        scenario,
        what,
        pass,
        detail,
    });
}

/// The drill experiment: the full robustness stack (reliable delivery is
/// platform default, read timeouts, heartbeats, watchdog, warm recovery)
/// plus snapshots and supervision. One run per scenario — a drill wants
/// exact counters, not averaged sweeps.
fn drill_exp(
    scale: &Scale,
    plan: FaultPlan,
    snapshots: Option<u64>,
    supervision: Option<SupervisorPolicy>,
    obs: Option<Hub>,
) -> GaExperiment {
    let mut platform = Platform::paper_ethernet(PROCS).with_faults(plan);
    platform.msg.mailbox_warn = scale.mailbox_warn;
    GaExperiment {
        generations: scale.generations,
        runs: 1,
        base_seed: scale.seed,
        cost: CostModel::deterministic(),
        platform,
        obs,
        modes: vec![Coherence::PartialAsync { age: AGE }],
        read_timeout: Some(SimTime::from_millis(50)),
        heartbeat: Some(SimTime::from_millis(20)),
        watchdog: Some(SimTime::from_secs(3600)),
        recovery: Some(RecoveryStyle::Warm),
        snapshots,
        supervision,
        // With NSCC_CKPT_DIR set, completed cuts also land on disk as
        // consistent-cut generations (`nscc inspect --ckpt` shows them
        // in the kind column). Scenarios share the store; a later wave
        // with the same initiating generation overwrites atomically.
        snap_dir: std::env::var_os("NSCC_CKPT_DIR").map(std::path::PathBuf::from),
        ..GaExperiment::new(TestFn::F1Sphere, PROCS)
    }
}

/// Fold one scenario's recovery summary into the drill report.
fn absorb(
    rep: &mut RunReport,
    total: &mut RecoverySummary,
    scenario: &str,
    res: &nscc_core::GaExpResult,
) {
    let m = &res.modes[0];
    rep.dsm.merge(&m.dsm);
    match rep.net.as_mut() {
        Some(net) => net.merge(&res.net),
        None => rep.net = Some(res.net.clone()),
    }
    match rep.comm.as_mut() {
        Some(comm) => comm.merge(&m.comm),
        None => rep.comm = Some(m.comm),
    }
    rep.fault_reports += res.fault_reports.len() as u64;
    let key = |metric: &str| format!("{scenario}_{metric}");
    rep.metric(key("restores"), m.restores as f64);
    rep.metric(key("max_rollback"), m.max_rollback as f64);
    rep.metric(key("fault_reports"), res.fault_reports.len() as f64);
    if let Some(rec) = &res.recovery {
        rep.metric(key("snapshots_completed"), rec.snapshots_completed as f64);
        rep.metric(key("cut_restores"), rec.cut_restores as f64);
        rep.metric(key("give_ups"), rec.give_ups as f64);
        total.merge(rec);
    }
}

/// The standard recovery assertions every crash scenario must satisfy:
/// the run completed (no watchdog cuts — degraded is fine, wedged is
/// not), marker waves completed, and no warm restore rolled back past
/// the age bound.
fn common_checks(checks: &mut Vec<Check>, scenario: &'static str, res: &nscc_core::GaExpResult) {
    let rec = res.recovery.clone().unwrap_or_default();
    check(
        checks,
        scenario,
        "run completed",
        res.fault_reports.is_empty(),
        format!("{} watchdog-cut run(s)", res.fault_reports.len()),
    );
    check(
        checks,
        scenario,
        "marker waves completed",
        rec.snapshots_completed >= 1,
        format!(
            "{} started, {} completed",
            rec.snapshots_started, rec.snapshots_completed
        ),
    );
    check(
        checks,
        scenario,
        "rollback within age bound",
        rec.max_rollback <= AGE,
        format!("max rollback {} vs bound {AGE}", rec.max_rollback),
    );
}

fn main() {
    let scale = Scale::from_env();
    print!(
        "{}",
        banner("Recovery drill: crash, restore, verify", &scale)
    );
    println!("procs={PROCS} age-bound={AGE} (snapshots + supervision + warm recovery on)");

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "drill");
    let auditor = attach_audit(&scale, &hub);
    let obs = || scale.wants_obs().then(|| hub.clone());
    let mut rep = RunReport::new("drill", &hub);
    rep.param("generations", scale.generations as f64)
        .param("seed", scale.seed as f64)
        .param("procs", PROCS as f64)
        .param("age", AGE as f64);
    let mut total = RecoverySummary::default();
    let mut checks: Vec<Check> = Vec::new();
    let run = |exp: &GaExperiment, label: &str| {
        unwrap_or_flight(run_ga_experiment(exp), &scale, Some(&hub), &auditor, label)
    };

    // --- single-crash: one island dies once, restarts, warm-restores. ---
    let plan = FaultPlan::new(scale.seed).crash_and_restart(
        1,
        SimTime::from_millis(40),
        SimTime::from_millis(55),
    );
    let exp = drill_exp(
        &scale,
        plan,
        Some(AGE),
        Some(SupervisorPolicy::default()),
        obs(),
    );
    let res = run(&exp, "drill");
    common_checks(&mut checks, "single-crash", &res);
    let rec = res.recovery.clone().unwrap_or_default();
    check(
        &mut checks,
        "single-crash",
        "crash restored once",
        rec.restores == 1 && rec.restarts_approved == 1,
        format!(
            "{} restore(s), {} approved",
            rec.restores, rec.restarts_approved
        ),
    );
    check(
        &mut checks,
        "single-crash",
        "no island abandoned",
        rec.give_ups == 0,
        format!("{} give-up(s)", rec.give_ups),
    );
    absorb(&mut rep, &mut total, "single_crash", &res);

    // --- double-crash: two islands die in separate windows. ---
    let plan = FaultPlan::new(scale.seed ^ 0xD21)
        .crash_and_restart(1, SimTime::from_millis(30), SimTime::from_millis(42))
        .crash_and_restart(2, SimTime::from_millis(60), SimTime::from_millis(72));
    let exp = drill_exp(
        &scale,
        plan,
        Some(AGE),
        Some(SupervisorPolicy::default()),
        obs(),
    );
    let res = run(&exp, "drill");
    common_checks(&mut checks, "double-crash", &res);
    let rec = res.recovery.clone().unwrap_or_default();
    check(
        &mut checks,
        "double-crash",
        "both crashes restored",
        rec.restores == 2 && rec.restarts_approved == 2 && rec.give_ups == 0,
        format!(
            "{} restore(s), {} approved, {} give-up(s)",
            rec.restores, rec.restarts_approved, rec.give_ups
        ),
    );
    absorb(&mut rep, &mut total, "double_crash", &res);

    // --- budget-exhausted: two crashes against a budget of one. ---
    // The windows sit late in the run: a consistent cut needs every
    // rank's frame, so once the island retires no *new* wave can ever
    // complete — the waves the drill asserts on must finish first.
    let plan = FaultPlan::new(scale.seed ^ 0xBED)
        .crash_and_restart(1, SimTime::from_millis(60), SimTime::from_millis(65))
        .crash_and_restart(1, SimTime::from_millis(72), SimTime::from_millis(77));
    let exp = drill_exp(
        &scale,
        plan,
        Some(AGE),
        Some(SupervisorPolicy {
            max_restarts: 1,
            backoff_base: SimTime::from_millis(2),
            backoff_cap: SimTime::from_millis(4),
        }),
        obs(),
    );
    let res = run(&exp, "drill");
    common_checks(&mut checks, "budget-exhausted", &res);
    let rec = res.recovery.clone().unwrap_or_default();
    check(
        &mut checks,
        "budget-exhausted",
        "budget enforced then island retired",
        rec.restarts_approved == 1 && rec.give_ups == 1 && rec.failed_ranks == vec![1],
        format!(
            "{} approved, {} give-up(s), failed ranks {:?}",
            rec.restarts_approved, rec.give_ups, rec.failed_ranks
        ),
    );
    check(
        &mut checks,
        "budget-exhausted",
        "backoff was imposed",
        rec.max_backoff_ns > 0,
        format!("max backoff {} ns", rec.max_backoff_ns),
    );
    absorb(&mut rep, &mut total, "budget_exhausted", &res);

    // --- identity: snapshots must not perturb a crash-free run. ---
    // The marker plane is out-of-band (no frames on the wire, no virtual
    // time, no RNG draws), so the application story must match exactly.
    // The identity pair runs unobserved: its events would double-count in
    // the shared hub, and determinism is what is under test.
    let clean = || FaultPlan::new(scale.seed ^ 0x1DE);
    let on = run(&drill_exp(&scale, clean(), Some(AGE), None, None), "drill");
    let off = run(&drill_exp(&scale, clean(), None, None, None), "drill");
    let (m_on, m_off) = (&on.modes[0], &off.modes[0]);
    let rec_on = on.recovery.clone().unwrap_or_default();
    check(
        &mut checks,
        "identity",
        "waves ran on the clean platform",
        rec_on.snapshots_completed >= 1 && rec_on.restores == 0,
        format!(
            "{} completed, {} restore(s)",
            rec_on.snapshots_completed, rec_on.restores
        ),
    );
    check(
        &mut checks,
        "identity",
        "snapshots perturb nothing",
        m_on.mean_time == m_off.mean_time
            && m_on.mean_best == m_off.mean_best
            && m_on.mean_messages == m_off.mean_messages
            && m_on.max_rollback == m_off.max_rollback,
        format!(
            "on: t={:?} best={} msgs={}; off: t={:?} best={} msgs={}",
            m_on.mean_time,
            m_on.mean_best,
            m_on.mean_messages,
            m_off.mean_time,
            m_off.mean_best,
            m_off.mean_messages
        ),
    );
    check(
        &mut checks,
        "identity",
        "no recovery section when off",
        off.recovery.is_none(),
        format!("off.recovery = {:?}", off.recovery),
    );
    absorb(&mut rep, &mut total, "identity", &on);

    // --- audit verdict: the monitors saw every scenario's events. ---
    if let Some(a) = &auditor {
        check(
            &mut checks,
            "audit",
            "no invariant violations",
            a.violation_count() == 0,
            format!("{} violation(s) recorded", a.violation_count()),
        );
    }

    let mut rows = vec![["scenario", "check", "verdict", "detail"]
        .map(String::from)
        .to_vec()];
    for c in &checks {
        rows.push(vec![
            c.scenario.to_string(),
            c.what.to_string(),
            if c.pass { "ok" } else { "FAIL" }.to_string(),
            c.detail.clone(),
        ]);
    }
    println!("\n{}", render_table(&rows));
    let failed = checks.iter().filter(|c| !c.pass).count();
    println!(
        "drill: {}/{} checks passed; {} wave(s) completed, {} restore(s) \
         ({} from consistent cuts), {} island(s) retired, max rollback {}",
        checks.len() - failed,
        checks.len(),
        total.snapshots_completed,
        total.restores,
        total.cut_restores,
        total.give_ups,
        total.max_rollback
    );

    rep.recovery = Some(total);
    rep.obs = hub.summary();
    rep.note_degradation();
    stamp_wall(&scale, &hub, &mut rep);
    stamp_audit(&auditor, &mut rep);
    stamp_staleness(&scale, &hub, None, &mut rep);
    write_report(&scale, &rep);
    write_flight(&scale, &hub, &auditor, rep.fault_reports, "drill");
    write_trace(&scale, &hub, "drill");
    write_folded(&scale, &rep.obs);
    hub.live_final(&rep.obs);
    if failed > 0 {
        eprintln!("error: drill: {failed} check(s) failed (see table)");
        std::process::exit(1);
    }
}
