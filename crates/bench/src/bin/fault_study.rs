//! Chaos sweep: GA resilience under frame loss, across `Global_Read`
//! age bounds.
//!
//! For every cell of the loss-rate × age-bound grid (`NSCC_LOSS` ×
//! `NSCC_AGES`) the island GA runs on the lossy Ethernet with the full
//! robustness stack on — reliable delivery (seq/ack/retransmit), read
//! timeouts degrading to cached values, heartbeat failure detection and
//! a virtual-time watchdog — and reports how much of the fault-free
//! speedup survives, what the reliable layer paid for it (retransmits,
//! give-ups) and how often reads had to degrade. Runs the watchdog cut
//! short appear as structured fault reports, not hung sweeps.
//!
//! With `NSCC_JSON=1` (or `--json`) also writes `BENCH_fault_study.json`
//! with one metric set per cell.

use nscc_bench::{
    ages_from_env, banner, loss_rates_from_env, make_hub, write_report, write_trace, Scale,
};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, FaultPlan, GaExperiment, Platform, RunReport};
use nscc_dsm::Coherence;
use nscc_ga::{CostModel, TestFn};
use nscc_msg::ReliableConfig;
use nscc_sim::SimTime;

const PROCS: usize = 4;

fn main() {
    let scale = Scale::from_env();
    let losses = loss_rates_from_env();
    let ages = ages_from_env();
    print!(
        "{}",
        banner("Fault study: GA resilience under frame loss", &scale)
    );
    println!(
        "grid: loss={:?} age={:?} procs={PROCS} (reliable delivery on)",
        losses, ages
    );

    let hub = make_hub(&scale);
    let mut rows = vec![[
        "loss", "age", "speedup", "ok", "rtx", "giveup", "dropped", "degraded", "cut",
    ]
    .map(String::from)
    .to_vec()];
    let mut rep = RunReport::new("fault_study", &hub);
    rep.param("runs", scale.runs as f64)
        .param("generations", scale.generations as f64)
        .param("seed", scale.seed as f64)
        .param("procs", PROCS as f64);

    for &loss in &losses {
        for &age in &ages {
            // Every cell runs the same robustness stack; only the wire's
            // loss rate and the reads' age bound vary. The plan's seed is
            // derived from the cell so each cell's chaos is independent
            // and reproducible.
            let plan_seed = scale.seed ^ ((loss * 1e6) as u64).wrapping_mul(31) ^ age;
            let mut platform = Platform::paper_ethernet(PROCS);
            if loss > 0.0 {
                platform = platform.with_faults(FaultPlan::new(plan_seed).loss(loss));
            }
            // The default 10 ms RTO suits low-latency links; the shared
            // 10 Mbps Ethernet queues migrant batches for longer than
            // that under load, so a tight RTO would retransmit frames
            // that were merely queued.
            platform.msg.reliable = Some(ReliableConfig {
                base_rto: SimTime::from_millis(80),
                ..ReliableConfig::default()
            });
            let exp = GaExperiment {
                generations: scale.generations,
                runs: scale.runs,
                base_seed: scale.seed,
                cost: CostModel::deterministic(),
                platform,
                obs: (scale.json || scale.trace).then(|| hub.clone()),
                modes: vec![Coherence::PartialAsync { age }],
                read_timeout: Some(SimTime::from_millis(50)),
                heartbeat: Some(SimTime::from_millis(20)),
                watchdog: Some(SimTime::from_secs(3600)),
                ..GaExperiment::new(TestFn::F1Sphere, PROCS)
            };
            let res = run_ga_experiment(&exp).expect("chaos cell runs");
            let m = &res.modes[0];
            rows.push(vec![
                format!("{loss}"),
                format!("{age}"),
                f2(m.speedup),
                f2(m.success_rate),
                m.comm.retransmits.to_string(),
                m.comm.give_ups.to_string(),
                res.net.dropped.to_string(),
                m.dsm.degraded_reads.to_string(),
                res.fault_reports.len().to_string(),
            ]);
            for f in &res.fault_reports {
                eprintln!("cell loss={loss} age={age}: {}", f.summary());
            }
            let key = |metric: &str| format!("loss={loss}_age={age}_{metric}");
            rep.metric(key("speedup"), m.speedup)
                .metric(key("success_rate"), m.success_rate)
                .metric(key("retransmits"), m.comm.retransmits as f64)
                .metric(key("give_ups"), m.comm.give_ups as f64)
                .metric(key("dropped"), res.net.dropped as f64)
                .metric(key("degraded_reads"), m.dsm.degraded_reads as f64)
                .metric(key("fault_reports"), res.fault_reports.len() as f64);
            rep.fault_reports += res.fault_reports.len() as u64;
            rep.dsm.merge(&m.dsm);
            match rep.net.as_mut() {
                Some(net) => net.merge(&res.net),
                None => rep.net = Some(res.net.clone()),
            }
            match rep.comm.as_mut() {
                Some(comm) => comm.merge(&res.comm),
                None => rep.comm = Some(res.comm),
            }
        }
    }

    println!("\n{}", render_table(&rows));
    println!(
        "columns: speedup over the fault-free serial baseline; ok = fraction of runs \
         reaching the quality bar; rtx/giveup = reliable-layer retransmits and abandoned \
         frames; dropped = frames the fault layer ate; degraded = reads that timed out \
         onto a cached value; cut = runs stopped by the watchdog (see stderr)."
    );

    rep.obs = hub.summary();
    rep.note_degradation();
    write_report(&scale, &rep);
    write_trace(&scale, &hub, "fault_study");
}
