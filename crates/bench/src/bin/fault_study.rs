//! Chaos sweep: GA resilience under frame loss, across `Global_Read`
//! age bounds.
//!
//! For every cell of the loss-rate × age-bound grid (`NSCC_LOSS` ×
//! `NSCC_AGES`) the island GA runs on the lossy Ethernet with the full
//! robustness stack on — reliable delivery (seq/ack/retransmit), read
//! timeouts degrading to cached values, heartbeat failure detection,
//! warm crash recovery and a virtual-time watchdog — and reports how
//! much of the fault-free speedup survives, what the reliable layer paid
//! for it (retransmits, give-ups) and how often reads had to degrade.
//! Runs the watchdog cut short appear as structured fault reports, not
//! hung sweeps.
//!
//! With `NSCC_JSON=1` (or `--json`) also writes `BENCH_fault_study.json`
//! with one metric set per cell.
//!
//! With `NSCC_CKPT_DIR` set, every completed cell is checkpointed; a
//! killed sweep rerun with `NSCC_RESUME=1` (or `--resume`) skips the
//! finished cells and produces a byte-identical report.
//!
//! With `NSCC_FAULT_PLAN=<path>` the wire runs the fault plan from that
//! JSON document (the portable format `nscc hunt` repros carry) instead
//! of the loss-derived plan — reseeded per cell, so the grid still
//! varies. Lets a shrunk repro drive the full bench harness.

use std::sync::Arc;

use nscc_audit::Auditor;
use nscc_bench::{
    ages_from_env, attach_audit, attach_live, banner, fault_plan_from_env, loss_rates_from_env,
    make_hub, stamp_audit, stamp_staleness, stamp_wall, tap_audit, unwrap_or_flight, write_flight,
    write_folded, write_report, write_trace, ResumeOpts, Scale, SweepCkpt,
};
use nscc_core::fmt::{f2, render_table};
use nscc_core::{run_ga_experiment, FaultPlan, GaExperiment, Platform, RecoveryStyle, RunReport};
use nscc_dsm::{Coherence, DsmStats};
use nscc_ga::{CostModel, TestFn};
use nscc_msg::{CommStats, ReliableConfig};
use nscc_net::NetStats;
use nscc_obs::{Hub, HubSummary, StalenessSummary};
use nscc_sim::SimTime;

const PROCS: usize = 4;

/// Everything one grid cell contributes to the sweep's output — the
/// checkpoint unit of a resumable run. Replaying stored cells in grid
/// order reproduces the table, the metric set and every merged counter
/// exactly.
struct CellData {
    row: Vec<String>,
    metrics: Vec<(String, f64)>,
    fault_lines: Vec<String>,
    fault_count: u64,
    /// Mean cell completion time (ns) — the checkpoint header's cut time.
    t_ns: u64,
    /// Mean generations per island — the header's iteration vector.
    iters: Vec<u64>,
    dsm: DsmStats,
    net: NetStats,
    comm: CommStats,
    obs: HubSummary,
    staleness: StalenessSummary,
}

impl nscc_ckpt::Snapshot for CellData {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        self.row.encode(enc);
        self.metrics.encode(enc);
        self.fault_lines.encode(enc);
        enc.put_u64(self.fault_count);
        enc.put_u64(self.t_ns);
        self.iters.encode(enc);
        self.dsm.encode(enc);
        self.net.encode(enc);
        self.comm.encode(enc);
        self.obs.encode(enc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(CellData {
            row: nscc_ckpt::Snapshot::decode(dec)?,
            metrics: nscc_ckpt::Snapshot::decode(dec)?,
            fault_lines: nscc_ckpt::Snapshot::decode(dec)?,
            fault_count: dec.u64()?,
            t_ns: dec.u64()?,
            iters: nscc_ckpt::Snapshot::decode(dec)?,
            dsm: nscc_ckpt::Snapshot::decode(dec)?,
            net: nscc_ckpt::Snapshot::decode(dec)?,
            comm: nscc_ckpt::Snapshot::decode(dec)?,
            obs: nscc_ckpt::Snapshot::decode(dec)?,
            staleness: nscc_ckpt::Snapshot::decode(dec)?,
        })
    }
}

/// Run one grid cell. `exp_obs` is the hub clone the experiment streams
/// events into (`None` when observability is off for this run);
/// `auditor` is the bin's shared coherence auditor, used here only to
/// label a deadlock-path flight dump.
fn run_cell(
    scale: &Scale,
    loss: f64,
    age: u64,
    plan_override: Option<&FaultPlan>,
    exp_obs: Option<Hub>,
    auditor: &Option<Arc<Auditor>>,
) -> CellData {
    // Every cell runs the same robustness stack; only the wire's loss
    // rate and the reads' age bound vary. The plan's seed is derived from
    // the cell so each cell's chaos is independent and reproducible —
    // an NSCC_FAULT_PLAN override keeps its events but is reseeded the
    // same way, so the grid still varies cell to cell.
    let plan_seed = scale.seed ^ ((loss * 1e6) as u64).wrapping_mul(31) ^ age;
    let mut platform = Platform::paper_ethernet(PROCS);
    match plan_override {
        Some(plan) => platform = platform.with_faults(plan.clone().with_seed(plan_seed)),
        None if loss > 0.0 => {
            platform = platform.with_faults(FaultPlan::new(plan_seed).loss(loss));
        }
        None => {}
    }
    // The default 10 ms RTO suits low-latency links; the shared 10 Mbps
    // Ethernet queues migrant batches for longer than that under load,
    // so a tight RTO would retransmit frames that were merely queued.
    platform.msg.reliable = Some(ReliableConfig {
        base_rto: SimTime::from_millis(80),
        ..ReliableConfig::default()
    });
    platform.msg.mailbox_warn = scale.mailbox_warn;
    let exp = GaExperiment {
        generations: scale.generations,
        runs: scale.runs,
        base_seed: scale.seed,
        cost: CostModel::deterministic(),
        platform,
        obs: exp_obs,
        modes: vec![Coherence::PartialAsync { age }],
        read_timeout: Some(SimTime::from_millis(50)),
        heartbeat: Some(SimTime::from_millis(20)),
        watchdog: Some(SimTime::from_secs(3600)),
        recovery: Some(RecoveryStyle::Warm),
        inject_stale: scale.inject_stale,
        ..GaExperiment::new(TestFn::F1Sphere, PROCS)
    };
    let res = unwrap_or_flight(
        run_ga_experiment(&exp),
        scale,
        exp.obs.as_ref(),
        auditor,
        "fault_study",
    );
    let m = &res.modes[0];
    let row = vec![
        format!("{loss}"),
        format!("{age}"),
        f2(m.speedup),
        f2(m.success_rate),
        m.comm.retransmits.to_string(),
        m.comm.give_ups.to_string(),
        res.net.dropped.to_string(),
        m.dsm.degraded_reads.to_string(),
        res.fault_reports.len().to_string(),
    ];
    let fault_lines = res
        .fault_reports
        .iter()
        .map(|f| format!("cell loss={loss} age={age}: {}", f.summary()))
        .collect();
    let key = |metric: &str| format!("loss={loss}_age={age}_{metric}");
    let metrics = vec![
        (key("speedup"), m.speedup),
        (key("success_rate"), m.success_rate),
        (key("retransmits"), m.comm.retransmits as f64),
        (key("give_ups"), m.comm.give_ups as f64),
        (key("dropped"), res.net.dropped as f64),
        (key("degraded_reads"), m.dsm.degraded_reads as f64),
        (key("fault_reports"), res.fault_reports.len() as f64),
        (key("restores"), m.restores as f64),
        (key("max_rollback"), m.max_rollback as f64),
    ];
    CellData {
        row,
        metrics,
        fault_lines,
        fault_count: res.fault_reports.len() as u64,
        t_ns: m.mean_time.as_nanos(),
        iters: vec![m.mean_generations as u64],
        dsm: m.dsm,
        net: res.net.clone(),
        comm: m.comm,
        obs: Hub::new().summary(),
        staleness: StalenessSummary::default(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let ropts = ResumeOpts::from_env();
    let mut ckpt = SweepCkpt::from_opts(&ropts, "fault_study");
    let losses = loss_rates_from_env();
    let ages = ages_from_env();
    let plan_override = fault_plan_from_env();
    if let Some(plan) = &plan_override {
        println!("fault plan override (NSCC_FAULT_PLAN): {}", plan.describe());
    }
    print!(
        "{}",
        banner("Fault study: GA resilience under frame loss", &scale)
    );
    println!(
        "grid: loss={:?} age={:?} procs={PROCS} (reliable delivery on)",
        losses, ages
    );

    let hub = make_hub(&scale);
    attach_live(&scale, &hub, "fault_study");
    let auditor = attach_audit(&scale, &hub);
    let mut rows = vec![[
        "loss", "age", "speedup", "ok", "rtx", "giveup", "dropped", "degraded", "cut",
    ]
    .map(String::from)
    .to_vec()];
    let mut rep = RunReport::new("fault_study", &hub);
    rep.param("runs", scale.runs as f64)
        .param("generations", scale.generations as f64)
        .param("seed", scale.seed as f64)
        .param("procs", PROCS as f64);

    // Checkpointed runs give each cell its own hub (so a stored cell
    // carries its own summary) and merge the summaries in grid order;
    // plain runs keep the single shared hub.
    let mut obs_merged = ckpt.as_ref().map(|_| Hub::new().summary());
    let mut stal_merged = ckpt.as_ref().map(|_| StalenessSummary::default());
    let mut cell_idx = 0u64;
    for &loss in &losses {
        for &age in &ages {
            let loaded: Option<CellData> = ckpt
                .as_ref()
                .and_then(|c| c.load_cell(cell_idx))
                .and_then(|payload| match nscc_ckpt::from_bytes(&payload) {
                    Ok(cell) => Some(cell),
                    Err(e) => {
                        eprintln!("warning: recomputing cell {cell_idx}: {e}");
                        None
                    }
                });
            let cell = match loaded {
                Some(cell) => cell,
                None => {
                    let cell = if ckpt.is_some() {
                        let cell_hub = make_hub(&scale);
                        tap_audit(&auditor, &cell_hub);
                        let exp_obs = scale.wants_obs().then(|| cell_hub.clone());
                        let mut cell =
                            run_cell(&scale, loss, age, plan_override.as_ref(), exp_obs, &auditor);
                        cell.obs = cell_hub.summary();
                        cell.staleness = cell_hub.staleness_summary();
                        // Carry the cell's wall-clock scheduler cost and
                        // flight ring into the main hub (the feed/report
                        // and any post-mortem dump read from there).
                        hub.adopt_sched(&cell_hub);
                        hub.adopt_flight(&cell_hub);
                        cell
                    } else {
                        let exp_obs = scale.wants_obs().then(|| hub.clone());
                        run_cell(&scale, loss, age, plan_override.as_ref(), exp_obs, &auditor)
                    };
                    if let Some(ck) = ckpt.as_mut() {
                        ck.save_cell(
                            cell_idx,
                            cell.t_ns,
                            &cell.iters,
                            &nscc_ckpt::to_bytes(&cell),
                        );
                    }
                    cell
                }
            };
            rows.push(cell.row.clone());
            for line in &cell.fault_lines {
                eprintln!("{line}");
            }
            for (k, v) in &cell.metrics {
                rep.metric(k.clone(), *v);
            }
            rep.fault_reports += cell.fault_count;
            rep.dsm.merge(&cell.dsm);
            match rep.net.as_mut() {
                Some(net) => net.merge(&cell.net),
                None => rep.net = Some(cell.net.clone()),
            }
            match rep.comm.as_mut() {
                Some(comm) => comm.merge(&cell.comm),
                None => rep.comm = Some(cell.comm),
            }
            if let Some(acc) = obs_merged.as_mut() {
                acc.merge(&cell.obs);
            }
            if let Some(acc) = stal_merged.as_mut() {
                acc.merge(&cell.staleness);
            }
            cell_idx += 1;
        }
    }

    println!("\n{}", render_table(&rows));
    println!(
        "columns: speedup over the fault-free serial baseline; ok = fraction of runs \
         reaching the quality bar; rtx/giveup = reliable-layer retransmits and abandoned \
         frames; dropped = frames the fault layer ate; degraded = reads that timed out \
         onto a cached value; cut = runs stopped by the watchdog (see stderr)."
    );

    rep.obs = match obs_merged {
        Some(acc) => acc,
        None => hub.summary(),
    };
    rep.note_degradation();
    stamp_wall(&scale, &hub, &mut rep);
    stamp_audit(&auditor, &mut rep);
    stamp_staleness(&scale, &hub, stal_merged, &mut rep);
    write_report(&scale, &rep);
    write_flight(&scale, &hub, &auditor, rep.fault_reports, "fault_study");
    if ckpt.is_some() {
        if scale.trace {
            eprintln!(
                "note: NSCC_TRACE is unsupported with NSCC_CKPT_DIR (events live in \
                 per-cell hubs); no TRACE_fault_study.json written"
            );
        }
    } else {
        write_trace(&scale, &hub, "fault_study");
    }
    write_folded(&scale, &rep.obs);
    hub.live_final(&rep.obs);
}
