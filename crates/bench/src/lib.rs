//! Shared utilities for the NSCC benchmark harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index). All binaries accept a scale through
//! environment variables so `--quick` smoke runs and full paper-scale
//! sweeps use the same code:
//!
//! * `NSCC_RUNS` — repetitions per cell (paper: 25 for GA, 10 for Bayes).
//! * `NSCC_GENS` — serial-baseline GA generations (paper: 1000).
//! * `NSCC_CI` — Bayes CI half-width (paper: 0.01).
//! * `NSCC_SEED` — base seed.
//! * `NSCC_JSON` — set to `1`/`true` (or pass `--json`) to also write a
//!   machine-readable `BENCH_<name>.json` run report into the working
//!   directory.
//! * `NSCC_TRACE` — set to `1`/`true` (or pass `--trace`) to also dump the
//!   hub's raw event/span streams as `TRACE_<name>.json` for
//!   `nscc inspect`.
//! * `NSCC_SNAP_MS` — virtual-time cadence (milliseconds) of periodic
//!   metric snapshots recorded into the report's `obs.snapshots` series
//!   (0 disables; default 100).
//! * `NSCC_MODES` — comma-separated coherence labels (`sync`, `async`,
//!   `age=N`) restricting which modes the GA bins report; unset runs the
//!   full Figure-2 mode family. Single-mode runs (e.g. `NSCC_MODES=age=0`
//!   vs `NSCC_MODES=age=20`) produce reports whose histograms describe
//!   that mode alone — the inputs `nscc diff` is built for.

#![warn(missing_docs)]

use std::fmt::Write as _;

use nscc_core::RunReport;
use nscc_dsm::Coherence;
use nscc_obs::Hub;

/// Harness scale, read from the environment with bench-friendly defaults.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Repetitions per experiment cell.
    pub runs: usize,
    /// Serial GA generations.
    pub generations: u64,
    /// Bayes CI half-width target.
    pub ci: f64,
    /// Base seed.
    pub seed: u64,
    /// Whether to write a `BENCH_<name>.json` run report.
    pub json: bool,
    /// Whether to dump the raw event/span streams as `TRACE_<name>.json`.
    pub trace: bool,
    /// Virtual-time cadence of periodic metric snapshots, in milliseconds
    /// (0 disables).
    pub snap_ms: u64,
}

impl Scale {
    /// Read the scale from the environment (see module docs). JSON output
    /// is enabled by `NSCC_JSON=1`/`true` or a `--json` argument.
    pub fn from_env() -> Scale {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        fn flag(name: &str, arg: &str) -> bool {
            matches!(std::env::var(name).as_deref(), Ok("1") | Ok("true"))
                || std::env::args().any(|a| a == arg)
        }
        Scale {
            runs: var("NSCC_RUNS", 3),
            generations: var("NSCC_GENS", 120),
            ci: var("NSCC_CI", 0.02),
            seed: var("NSCC_SEED", 42),
            json: flag("NSCC_JSON", "--json"),
            trace: flag("NSCC_TRACE", "--trace"),
            snap_ms: var("NSCC_SNAP_MS", 100),
        }
    }

    /// The paper's full scale (25 GA runs, 1000 generations, CI ±0.01).
    pub fn paper() -> Scale {
        Scale {
            runs: 25,
            generations: 1000,
            ci: 0.01,
            seed: 42,
            json: false,
            trace: false,
            snap_ms: 100,
        }
    }
}

/// The coherence modes the GA bins should report: the `NSCC_MODES`
/// restriction when set and non-empty, the full Figure-2 family
/// otherwise. Unknown labels are warned about and skipped.
pub fn modes_from_env() -> Option<Vec<Coherence>> {
    let raw = std::env::var("NSCC_MODES").ok()?;
    let mut modes = Vec::new();
    for tok in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match Coherence::parse(tok) {
            Some(m) => modes.push(m),
            None => eprintln!("NSCC_MODES: ignoring unknown mode label {tok:?}"),
        }
    }
    (!modes.is_empty()).then_some(modes)
}

/// Build the observability hub for a bench binary: snapshot cadence from
/// the scale (virtual-time milliseconds), everything else at defaults.
pub fn make_hub(scale: &Scale) -> Hub {
    let hub = Hub::new();
    if scale.snap_ms > 0 {
        hub.sample_every(scale.snap_ms.saturating_mul(1_000_000));
    }
    hub
}

/// Dump the hub's raw event/span streams as `TRACE_<name>.json` when
/// tracing is enabled (no-op otherwise), echoing the path written.
pub fn write_trace(scale: &Scale, hub: &Hub, name: &str) {
    if !scale.trace {
        return;
    }
    let path = format!("TRACE_{name}.json");
    match std::fs::write(&path, hub.export_events_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// A figure/table banner with the scale echoed, so saved outputs are
/// self-describing.
pub fn banner(title: &str, scale: &Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "=== {title} ===");
    let _ = writeln!(
        s,
        "scale: runs={} generations={} ci=±{} seed={} json={}",
        scale.runs,
        scale.generations,
        scale.ci,
        scale.seed,
        if scale.json { "on" } else { "off" }
    );
    s
}

/// Write the run report into the working directory when JSON output is
/// enabled (no-op otherwise), echoing the path written.
pub fn write_report(scale: &Scale, report: &RunReport) {
    if !scale.json {
        return;
    }
    match report.write_json(".") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", report.filename()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_defaults() {
        let s = Scale::from_env();
        assert!(s.runs >= 1);
        assert!(s.generations >= 1);
        assert!(s.ci > 0.0);
    }

    #[test]
    fn modes_env_parses_labels_and_skips_junk() {
        std::env::set_var("NSCC_MODES", "age=0, age=20, bogus");
        let m = modes_from_env().expect("modes parse");
        assert_eq!(
            m,
            vec![
                Coherence::PartialAsync { age: 0 },
                Coherence::PartialAsync { age: 20 },
            ]
        );
        std::env::remove_var("NSCC_MODES");
        assert!(modes_from_env().is_none());
    }

    #[test]
    fn banner_echoes_scale() {
        let b = banner("Figure 2", &Scale::paper());
        assert!(b.contains("Figure 2"));
        assert!(b.contains("runs=25"));
        assert!(b.contains("1000"));
    }
}
