//! Shared utilities for the NSCC benchmark harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index). All binaries accept a scale through
//! environment variables so `--quick` smoke runs and full paper-scale
//! sweeps use the same code:
//!
//! * `NSCC_RUNS` — repetitions per cell (paper: 25 for GA, 10 for Bayes).
//! * `NSCC_GENS` — serial-baseline GA generations (paper: 1000).
//! * `NSCC_CI` — Bayes CI half-width (paper: 0.01).
//! * `NSCC_SEED` — base seed.
//! * `NSCC_JSON` — set to `1`/`true` (or pass `--json`) to also write a
//!   machine-readable `BENCH_<name>.json` run report into the working
//!   directory.
//! * `NSCC_TRACE` — set to `1`/`true` (or pass `--trace`) to also dump the
//!   hub's raw event/span streams as `TRACE_<name>.json` for
//!   `nscc inspect`.
//! * `NSCC_SNAP_MS` — virtual-time cadence (milliseconds) of periodic
//!   metric snapshots recorded into the report's `obs.snapshots` series
//!   (0 is the explicit "disabled" no-op; default 100).
//! * `NSCC_LIVE` — live telemetry feed destination: a writable file path
//!   (`NSCC_LIVE=live.ndjson`) or a raw open file descriptor
//!   (`NSCC_LIVE=3`). Each periodic snapshot is streamed, as it is cut,
//!   as one line of versioned JSON (`nscc_obs::live`) that `nscc top`
//!   can tail while the run is going. Purely additive: reports, traces
//!   and profiles stay byte-identical with the feed on or off, and an
//!   unset `NSCC_LIVE` costs nothing.
//! * `NSCC_WALL` — set to `1`/`true` to attach wall-clock scheduler
//!   self-accounting (events/sec, park/unpark counts, per-process
//!   executing vs. parked time) and embed it as the report's `wall`
//!   section. Real host-clock numbers, so nondeterministic — off by
//!   default to keep same-seed reports byte-identical (`"wall":null`).
//!   `NSCC_LIVE` implies the accounting (the feed carries it) without
//!   the report section.
//! * `NSCC_MODES` — comma-separated coherence labels (`sync`, `async`,
//!   `age=N`) restricting which modes the GA bins report; unset runs the
//!   full Figure-2 mode family. Single-mode runs (e.g. `NSCC_MODES=age=0`
//!   vs `NSCC_MODES=age=20`) produce reports whose histograms describe
//!   that mode alone — the inputs `nscc diff` is built for.
//! * `NSCC_LOSS` / `NSCC_AGES` — the loss-rate × age-bound grid of the
//!   `fault_study` chaos sweep (comma-separated).
//! * `NSCC_MAILBOX_WARN` — mailbox-depth warning threshold (messages).
//!   When set, a rank whose mailbox backlog crosses it emits a one-line
//!   stderr warning plus an observability event, and the run report
//!   records the high watermark.
//! * `NSCC_FOLDED` — path of a collapsed-stack profile to write
//!   (`process;phase;location count` lines, the input format of
//!   `inferno` / `flamegraph.pl`). Setting it turns on the hub's
//!   deterministic virtual-time sampling profiler; same seed → byte
//!   identical output.
//! * `NSCC_PROFILE_US` — sampling period of that profiler in virtual
//!   microseconds (default 100; only meaningful with `NSCC_FOLDED`).
//! * `NSCC_CKPT_DIR` — directory for sweep checkpoints. When set, the
//!   sweep bins (`fault_study`, `fig2`, `fig3`, `fig4`, `warp_study`)
//!   persist each completed cell so a killed run can restart from the
//!   last completed point.
//! * `NSCC_RESUME` — set to `1`/`true` (or pass `--resume`) to reuse the
//!   cells already in `NSCC_CKPT_DIR` instead of clearing them; the
//!   resumed run produces a byte-identical `BENCH_<name>.json`.
//! * `NSCC_CKPT_EXIT_AFTER` — testing hook: exit with code 3 after this
//!   many cells have been computed *and checkpointed* by this process
//!   (simulating a mid-sweep kill at a deterministic point).
//! * `NSCC_AUDIT` — set to `1`/`true` to run the online coherence
//!   auditor (`nscc-audit`): invariant monitors tap the event stream and
//!   their findings land in the report's `audit` section (rendered by
//!   `nscc audit`, enforced by `nscc gate`). Monitors are pure observers:
//!   the rest of the report stays byte-identical with auditing on or off.
//! * `NSCC_FLIGHT` — black-box flight recorder: keep the most recent N
//!   events in a bounded ring and dump them as `FLIGHT_<name>.json` when
//!   the run ends badly (a monitor violation, a watchdog-cut run, or a
//!   deadlock). Read the dump with `nscc postmortem`. The ring is a side
//!   channel; reports stay byte-identical with it on or off.
//! * `NSCC_STALENESS` — set to `1`/`true` to arm the per-hop staleness
//!   tracer: every DSM update's provenance is stamped as it crosses each
//!   layer (publish, transit, fault delay, retransmits, mailbox dwell,
//!   apply), and on every read release the observed age is decomposed
//!   into the seven named stage durations. The per-stage log₂ histograms
//!   — overall, by location and by writer→reader link — land in the
//!   report's `staleness` section (rendered by `nscc anatomy`), and
//!   write→apply→release flow arrows join the Perfetto spans. Purely
//!   additive: outside that one section the report stays byte-identical
//!   with the tracer on or off.
//! * `NSCC_INJECT_STALE` — fault-injection knob honoured by the
//!   `fault_study` bin: deliberately release this many would-block reads
//!   with their stale cached value, *violating* the age bound so the
//!   auditor and flight recorder have something real to catch. Testing
//!   hook; leave unset for honest runs.
//! * `NSCC_FAULT_PLAN` — path to a versioned fault-plan JSON document
//!   (the portable format `nscc hunt` repros carry). The `fault_study`
//!   bin then wraps the wire in *that* plan — reseeded per cell, so the
//!   grid stays meaningful — instead of deriving a loss-only plan from
//!   `NSCC_LOSS`. Lets a shrunk hunt repro drive the full bench harness.
//!
//! A variable that is *set but malformed* is a hard error: the binary
//! prints one line naming the variable and the expected format and exits
//! with code 2, rather than silently running at a default scale.

#![warn(missing_docs)]

pub mod headless;

use std::fmt::Write as _;
use std::sync::Arc;

use nscc_audit::{render_flight_dump, Auditor, FlightDump};
use nscc_core::RunReport;
use nscc_dsm::Coherence;
use nscc_obs::{Hub, HubSummary};

/// Harness scale, read from the environment with bench-friendly defaults.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Repetitions per experiment cell.
    pub runs: usize,
    /// Serial GA generations.
    pub generations: u64,
    /// Bayes CI half-width target.
    pub ci: f64,
    /// Base seed.
    pub seed: u64,
    /// Whether to write a `BENCH_<name>.json` run report.
    pub json: bool,
    /// Whether to dump the raw event/span streams as `TRACE_<name>.json`.
    pub trace: bool,
    /// Virtual-time cadence of periodic metric snapshots, in milliseconds
    /// (0 disables).
    pub snap_ms: u64,
    /// Mailbox-depth warning threshold (messages); `None` disables the
    /// warning (the high watermark is still recorded).
    pub mailbox_warn: Option<u64>,
    /// Path of the collapsed-stack profile to write (`NSCC_FOLDED`);
    /// `None` leaves the sampling profiler off entirely.
    pub folded: Option<String>,
    /// Sampling period of the virtual-time profiler, in virtual
    /// microseconds (`NSCC_PROFILE_US`).
    pub profile_us: u64,
    /// Live telemetry feed destination (`NSCC_LIVE`); `None` leaves the
    /// feed detached entirely.
    pub live: Option<LiveTarget>,
    /// Whether to embed wall-clock scheduler accounting as the report's
    /// `wall` section (`NSCC_WALL`).
    pub wall: bool,
    /// Whether to run the online coherence auditor (`NSCC_AUDIT`).
    pub audit: bool,
    /// Flight-recorder ring capacity in events (`NSCC_FLIGHT`); `None`
    /// leaves the recorder off entirely.
    pub flight: Option<u64>,
    /// How many would-block reads the `fault_study` bin should release
    /// stale, deliberately violating the age bound (`NSCC_INJECT_STALE`;
    /// 0 = honest run).
    pub inject_stale: u64,
    /// Whether to arm the per-hop staleness tracer and stamp the
    /// report's `staleness` anatomy section (`NSCC_STALENESS`).
    pub staleness: bool,
}

/// Where the live telemetry feed goes: a file path the bench creates, or
/// a raw file descriptor the caller already opened (e.g. a pipe to
/// `nscc top`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveTarget {
    /// Create/truncate this file and stream lines into it.
    Path(String),
    /// Adopt this already-open descriptor (Unix only).
    Fd(i32),
}

impl Scale {
    /// Read the scale from the environment (see module docs). JSON output
    /// is enabled by `NSCC_JSON=1`/`true` or a `--json` argument.
    ///
    /// A *present but malformed* variable is a hard error (one line
    /// naming the variable and the expected format, exit code 2) — a
    /// typo'd `NSCC_GENS=1OOO` silently running the default scale would
    /// waste a paper-scale sweep.
    pub fn from_env() -> Scale {
        match Scale::parse(&env_lookup) {
            Ok(mut s) => {
                s.json |= std::env::args().any(|a| a == "--json");
                s.trace |= std::env::args().any(|a| a == "--trace");
                s
            }
            Err(e) => die(&e),
        }
    }

    /// Pure parsing core of [`from_env`](Scale::from_env): `get` maps a
    /// variable name to its value when set. Exposed for tests.
    pub fn parse(get: &dyn Fn(&str) -> Option<String>) -> Result<Scale, String> {
        Ok(Scale {
            runs: env_num(get, "NSCC_RUNS", 3, "a positive integer (e.g. NSCC_RUNS=5)")?,
            generations: env_num(
                get,
                "NSCC_GENS",
                120,
                "a positive integer (e.g. NSCC_GENS=200)",
            )?,
            ci: env_num(
                get,
                "NSCC_CI",
                0.02,
                "a positive decimal (e.g. NSCC_CI=0.01)",
            )?,
            seed: env_num(
                get,
                "NSCC_SEED",
                42,
                "an unsigned integer (e.g. NSCC_SEED=42)",
            )?,
            json: env_flag(get, "NSCC_JSON")?,
            trace: env_flag(get, "NSCC_TRACE")?,
            snap_ms: env_num(
                get,
                "NSCC_SNAP_MS",
                100,
                "milliseconds as an unsigned integer (e.g. NSCC_SNAP_MS=100)",
            )?,
            mailbox_warn: env_opt_num(
                get,
                "NSCC_MAILBOX_WARN",
                "a positive integer (e.g. NSCC_MAILBOX_WARN=64)",
            )?,
            folded: get("NSCC_FOLDED")
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty()),
            profile_us: match env_num(
                get,
                "NSCC_PROFILE_US",
                100,
                "a positive integer of virtual microseconds (e.g. NSCC_PROFILE_US=100)",
            )? {
                0 => {
                    return Err("NSCC_PROFILE_US=\"0\" is malformed: expected a positive \
                                integer of virtual microseconds (e.g. NSCC_PROFILE_US=100)"
                        .to_string())
                }
                us => us,
            },
            live: parse_live(get)?,
            wall: env_flag(get, "NSCC_WALL")?,
            audit: env_flag(get, "NSCC_AUDIT")?,
            flight: match env_opt_num(
                get,
                "NSCC_FLIGHT",
                "a positive integer of events (e.g. NSCC_FLIGHT=256)",
            )? {
                Some(0) => {
                    return Err("NSCC_FLIGHT=\"0\" is malformed: expected a positive \
                                integer of events (e.g. NSCC_FLIGHT=256)"
                        .to_string())
                }
                cap => cap,
            },
            inject_stale: env_num(
                get,
                "NSCC_INJECT_STALE",
                0,
                "an unsigned integer of reads (e.g. NSCC_INJECT_STALE=4)",
            )?,
            staleness: env_flag(get, "NSCC_STALENESS")?,
        })
    }

    /// Whether any observability consumer is enabled — JSON report, raw
    /// trace, folded profile, live feed, or wall accounting — i.e.
    /// whether the bench should attach a hub to the experiment at all.
    pub fn wants_obs(&self) -> bool {
        self.json
            || self.trace
            || self.folded.is_some()
            || self.live.is_some()
            || self.wall
            || self.audit
            || self.flight.is_some()
            || self.inject_stale > 0
            || self.staleness
    }

    /// The paper's full scale (25 GA runs, 1000 generations, CI ±0.01).
    pub fn paper() -> Scale {
        Scale {
            runs: 25,
            generations: 1000,
            ci: 0.01,
            seed: 42,
            json: false,
            trace: false,
            snap_ms: 100,
            mailbox_warn: None,
            folded: None,
            profile_us: 100,
            live: None,
            wall: false,
            audit: false,
            flight: None,
            inject_stale: 0,
            staleness: false,
        }
    }
}

/// Parse `NSCC_LIVE`: absent → `None`; all-digits → an adopted file
/// descriptor; anything else non-empty → a file path. An empty (or
/// unparsable-fd) value is malformed — the one-line exit-2 contract.
fn parse_live(get: &dyn Fn(&str) -> Option<String>) -> Result<Option<LiveTarget>, String> {
    const EXPECTED: &str = "a writable file path or a raw open file descriptor \
                            (e.g. NSCC_LIVE=live.ndjson or NSCC_LIVE=3)";
    let raw = match get("NSCC_LIVE") {
        None => return Ok(None),
        Some(raw) => raw,
    };
    let val = raw.trim();
    if val.is_empty() {
        return Err(format!(
            "NSCC_LIVE={raw:?} is malformed: expected {EXPECTED}"
        ));
    }
    if val.bytes().all(|b| b.is_ascii_digit()) {
        return match val.parse::<i32>() {
            Ok(fd) => Ok(Some(LiveTarget::Fd(fd))),
            Err(_) => Err(format!(
                "NSCC_LIVE={raw:?} is malformed: expected {EXPECTED}"
            )),
        };
    }
    Ok(Some(LiveTarget::Path(val.to_string())))
}

/// Environment lookup used by the `*_from_env` readers.
fn env_lookup(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Print a one-line error and exit 2 — the bench binaries' contract for
/// malformed `NSCC_*` variables.
fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// A numeric variable: absent → `default`; present and parsable → the
/// value; present but malformed → a one-line error naming the variable
/// and the expected format.
fn env_num<T: std::str::FromStr>(
    get: &dyn Fn(&str) -> Option<String>,
    name: &str,
    default: T,
    expected: &str,
) -> Result<T, String> {
    match get(name) {
        None => Ok(default),
        Some(raw) => raw
            .trim()
            .parse()
            .map_err(|_| format!("{name}={raw:?} is malformed: expected {expected}")),
    }
}

/// An optional numeric variable: absent → `None`; present and parsable →
/// `Some(value)`; present but malformed → a one-line error.
fn env_opt_num<T: std::str::FromStr>(
    get: &dyn Fn(&str) -> Option<String>,
    name: &str,
    expected: &str,
) -> Result<Option<T>, String> {
    match get(name) {
        None => Ok(None),
        Some(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{name}={raw:?} is malformed: expected {expected}")),
    }
}

/// A boolean variable: `1`/`true` on, `0`/`false`/unset off, anything
/// else malformed.
fn env_flag(get: &dyn Fn(&str) -> Option<String>, name: &str) -> Result<bool, String> {
    match get(name).as_deref().map(str::trim) {
        None | Some("") | Some("0") | Some("false") => Ok(false),
        Some("1") | Some("true") => Ok(true),
        Some(raw) => Err(format!(
            "{name}={raw:?} is malformed: expected 1 or 0 (or true/false)"
        )),
    }
}

/// Parse a comma-separated list variable; absent or empty → `default`.
fn env_list<T: std::str::FromStr + Clone>(
    get: &dyn Fn(&str) -> Option<String>,
    name: &str,
    default: &[T],
    expected: &str,
) -> Result<Vec<T>, String> {
    let raw = match get(name) {
        None => return Ok(default.to_vec()),
        Some(raw) => raw,
    };
    let toks: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    if toks.is_empty() {
        return Ok(default.to_vec());
    }
    toks.iter()
        .map(|t| {
            t.parse()
                .map_err(|_| format!("{name}={raw:?} is malformed: expected {expected}"))
        })
        .collect()
}

/// The loss-rate axis of the `fault_study` sweep: `NSCC_LOSS` as a
/// comma-separated list of per-frame drop probabilities in `[0, 1)`.
pub fn loss_rates_from_env() -> Vec<f64> {
    let rates = env_list(
        &env_lookup,
        "NSCC_LOSS",
        &[0.0, 0.01, 0.05],
        "comma-separated probabilities in [0,1) (e.g. NSCC_LOSS=0.01,0.05)",
    )
    .unwrap_or_else(|e| die(&e));
    if let Some(bad) = rates.iter().find(|p| !(0.0..1.0).contains(*p)) {
        die(&format!(
            "NSCC_LOSS contains {bad}: expected comma-separated probabilities in [0,1)"
        ));
    }
    rates
}

/// The age-bound axis of the `fault_study` sweep: `NSCC_AGES` as a
/// comma-separated list of `Global_Read` age bounds (iterations).
pub fn ages_from_env() -> Vec<u64> {
    env_list(
        &env_lookup,
        "NSCC_AGES",
        &[0, 10, 30],
        "comma-separated unsigned integers (e.g. NSCC_AGES=0,10,30)",
    )
    .unwrap_or_else(|e| die(&e))
}

/// The fault-plan override: `NSCC_FAULT_PLAN` as a path to a versioned
/// fault-plan JSON document (the portable format hunt repros carry).
/// Absent → `None` (the bin derives its own plan); present but
/// unreadable or malformed → the one-line exit-2 contract, naming the
/// path and the first parse error.
pub fn fault_plan_from_env() -> Option<nscc_core::FaultPlan> {
    let raw = env_lookup("NSCC_FAULT_PLAN")?;
    let path = raw.trim();
    if path.is_empty() {
        die(&format!(
            "NSCC_FAULT_PLAN={raw:?} is malformed: expected a path to a fault-plan JSON file"
        ));
    }
    match nscc_core::FaultPlan::load(std::path::Path::new(path)) {
        Ok(plan) => Some(plan),
        Err(e) => die(&format!("NSCC_FAULT_PLAN: {e}")),
    }
}

/// The coherence modes the GA bins should report: the `NSCC_MODES`
/// restriction when set and non-empty, the full Figure-2 family
/// otherwise. An unknown label is a hard error (exit 2) — a typo'd mode
/// silently narrowing a sweep is worse than stopping.
pub fn modes_from_env() -> Option<Vec<Coherence>> {
    match parse_modes(&env_lookup) {
        Ok(modes) => modes,
        Err(e) => die(&e),
    }
}

/// Pure parsing core of [`modes_from_env`]. Exposed for tests.
pub fn parse_modes(get: &dyn Fn(&str) -> Option<String>) -> Result<Option<Vec<Coherence>>, String> {
    let raw = match get("NSCC_MODES") {
        None => return Ok(None),
        Some(raw) => raw,
    };
    let mut modes = Vec::new();
    for tok in raw.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match Coherence::parse(tok) {
            Some(m) => modes.push(m),
            None => {
                return Err(format!(
                    "NSCC_MODES contains unknown label {tok:?}: expected \
                     comma-separated sync, async, or age=N"
                ))
            }
        }
    }
    Ok((!modes.is_empty()).then_some(modes))
}

/// Checkpoint/resume options for the sweep bins, read from the
/// environment (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ResumeOpts {
    /// Checkpoint directory (`NSCC_CKPT_DIR`); `None` disables
    /// checkpointing entirely.
    pub dir: Option<String>,
    /// Reuse cells already in the store (`NSCC_RESUME` or `--resume`)
    /// instead of clearing them.
    pub resume: bool,
    /// Exit with code 3 after this many cells have been computed and
    /// checkpointed by this process (`NSCC_CKPT_EXIT_AFTER`; testing
    /// hook simulating a mid-sweep kill).
    pub exit_after: Option<u64>,
}

impl ResumeOpts {
    /// Read the options from the environment and argv.
    pub fn from_env() -> ResumeOpts {
        let resume_arg = std::env::args().any(|a| a == "--resume");
        match ResumeOpts::parse(&env_lookup, resume_arg) {
            Ok(o) => o,
            Err(e) => die(&e),
        }
    }

    /// Pure parsing core of [`from_env`](ResumeOpts::from_env). Exposed
    /// for tests; `resume_arg` is whether `--resume` was on the command
    /// line.
    pub fn parse(
        get: &dyn Fn(&str) -> Option<String>,
        resume_arg: bool,
    ) -> Result<ResumeOpts, String> {
        let dir = get("NSCC_CKPT_DIR")
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        let resume = env_flag(get, "NSCC_RESUME")? || resume_arg;
        let exit_after = env_opt_num(
            get,
            "NSCC_CKPT_EXIT_AFTER",
            "a positive integer (e.g. NSCC_CKPT_EXIT_AFTER=2)",
        )?;
        if dir.is_none() && (resume || exit_after.is_some()) {
            return Err(
                "NSCC_RESUME/NSCC_CKPT_EXIT_AFTER require NSCC_CKPT_DIR to be set".to_string(),
            );
        }
        Ok(ResumeOpts {
            dir,
            resume,
            exit_after,
        })
    }
}

/// Per-cell checkpointing of a sweep binary: each completed cell is one
/// generation in a [`nscc_ckpt::CkptStore`], keyed by its cell index, so
/// a killed sweep resumes from the last completed point and replays the
/// stored cells into a byte-identical report.
pub struct SweepCkpt {
    store: nscc_ckpt::CkptStore,
    resume: bool,
    exit_after: Option<u64>,
    computed: u64,
}

impl SweepCkpt {
    /// Open the store for bench `name` under `opts.dir` (a per-binary
    /// subdirectory, so one `NSCC_CKPT_DIR` serves several bins). `None`
    /// when checkpointing is disabled. A fresh (non-resume) run clears
    /// any stale generations first.
    pub fn from_opts(opts: &ResumeOpts, name: &str) -> Option<SweepCkpt> {
        let dir = opts.dir.as_ref()?;
        let path = std::path::Path::new(dir).join(name);
        let store = match nscc_ckpt::CkptStore::open(&path) {
            Ok(s) => s,
            Err(e) => die(&format!("cannot open checkpoint store {path:?}: {e}")),
        };
        if !opts.resume {
            if let Err(e) = store.clear() {
                die(&format!("cannot clear checkpoint store {path:?}: {e}"));
            }
        }
        Some(SweepCkpt {
            store,
            resume: opts.resume,
            exit_after: opts.exit_after,
            computed: 0,
        })
    }

    /// The payload checkpointed for `cell`, when resuming and the cell
    /// completed in a previous run (corrupt generations are skipped —
    /// the cell is simply recomputed).
    pub fn load_cell(&self, cell: u64) -> Option<Vec<u8>> {
        if !self.resume {
            return None;
        }
        let gens = self.store.generations().ok()?;
        let info = gens.iter().find(|g| g.gen == cell && g.ok())?;
        match nscc_ckpt::CkptStore::load_path(&info.path) {
            Ok((_, payload)) => Some(payload),
            Err(e) => {
                eprintln!("warning: recomputing cell {cell}: {e}");
                None
            }
        }
    }

    /// Persist a freshly computed `cell` (`t_ns`/`iters` are the cell's
    /// virtual completion time and per-node iteration vector, shown by
    /// `nscc inspect --ckpt`). When `NSCC_CKPT_EXIT_AFTER` is reached the
    /// process exits with code 3 — the deterministic "kill" the resume CI
    /// job relies on.
    pub fn save_cell(&mut self, cell: u64, t_ns: u64, iters: &[u64], payload: &[u8]) {
        if let Err(e) = self.store.save(cell, t_ns, iters, payload) {
            die(&format!("cannot checkpoint cell {cell}: {e}"));
        }
        self.computed += 1;
        if let Some(limit) = self.exit_after {
            if self.computed >= limit {
                eprintln!(
                    "NSCC_CKPT_EXIT_AFTER: exiting after {limit} checkpointed cell(s); \
                     resume with NSCC_RESUME=1"
                );
                std::process::exit(3);
            }
        }
    }
}

/// Build the observability hub for a bench binary: snapshot cadence from
/// the scale (virtual-time milliseconds; 0 is the explicit "disabled"
/// no-op), wall accounting when the feed or `NSCC_WALL` asks for it,
/// everything else at defaults.
pub fn make_hub(scale: &Scale) -> Hub {
    let hub = Hub::new();
    hub.sample_every(scale.snap_ms.saturating_mul(1_000_000));
    if scale.folded.is_some() {
        hub.profile_every(scale.profile_us.saturating_mul(1_000));
    }
    if scale.wall || scale.live.is_some() {
        hub.enable_wall();
    }
    if let Some(cap) = scale.flight {
        hub.enable_flight(cap);
    }
    if scale.staleness {
        hub.enable_staleness();
    }
    hub
}

/// Whether the bin was asked (via `--all-functions`) to sweep the full
/// eight-function GA test bed instead of the four cheapest.
pub fn all_functions_flag() -> bool {
    std::env::args().any(|a| a == "--all-functions")
}

/// Build the online coherence auditor and tap it into `hub` when
/// `NSCC_AUDIT` asked for it (`None` otherwise). One auditor serves the
/// whole bin — sweep bins with per-cell hubs tap each cell hub into the
/// *same* auditor with [`tap_audit`], accumulating a single summary.
pub fn attach_audit(scale: &Scale, hub: &Hub) -> Option<Arc<Auditor>> {
    if !scale.audit {
        return None;
    }
    let auditor = Arc::new(Auditor::new());
    hub.set_tap(auditor.clone());
    Some(auditor)
}

/// Tap a per-cell hub into the bin's shared auditor (no-op when auditing
/// is off).
pub fn tap_audit(auditor: &Option<Arc<Auditor>>, hub: &Hub) {
    if let Some(a) = auditor {
        hub.set_tap(a.clone());
    }
}

/// Embed the auditor's findings as the report's `audit` section (no-op
/// when auditing is off — the section stays `null` and the report
/// byte-identical to an unaudited run).
pub fn stamp_audit(auditor: &Option<Arc<Auditor>>, report: &mut RunReport) {
    if let Some(a) = auditor {
        report.audit = Some(a.summary());
    }
}

/// Embed the staleness tracer's anatomy as the report's `staleness`
/// section when `NSCC_STALENESS` asked for it (no-op otherwise — the
/// section stays `null` and the report byte-identical to an untraced
/// run). Sweep bins that aggregate per-cell hubs pass the merged
/// summary; single-hub bins pass `None` and the main hub's own anatomy
/// is stamped.
pub fn stamp_staleness(
    scale: &Scale,
    hub: &Hub,
    merged: Option<nscc_obs::StalenessSummary>,
    report: &mut RunReport,
) {
    if scale.staleness {
        report.staleness = Some(merged.unwrap_or_else(|| hub.staleness_summary()));
    }
}

/// Cut the black-box dump when the run ended badly: with `NSCC_FLIGHT`
/// set and either a monitor violation or a watchdog-cut run on record,
/// write the hub's event ring (plus the recorded violations) as
/// `FLIGHT_<name>.json` for `nscc postmortem`. Clean runs write nothing.
pub fn write_flight(
    scale: &Scale,
    hub: &Hub,
    auditor: &Option<Arc<Auditor>>,
    fault_reports: u64,
    name: &str,
) {
    let cap = match scale.flight {
        Some(cap) => cap,
        None => return,
    };
    let violations = auditor.as_ref().map_or(0, |a| a.violation_count());
    if violations == 0 && fault_reports == 0 {
        return;
    }
    let reason = if violations > 0 { "violation" } else { "fault" };
    let dump = FlightDump::new(
        name,
        scale.seed,
        reason,
        cap,
        hub.flight_events(),
        auditor.as_ref().map(|a| a.recorded()).unwrap_or_default(),
    )
    .with_proc_names(hub.summary().proc_names.values().cloned().collect());
    write_flight_doc(&dump);
}

/// Write a flight dump to `FLIGHT_<bench>.json`, echoing the path.
fn write_flight_doc(dump: &FlightDump) {
    let path = format!("FLIGHT_{}.json", dump.bench);
    let mut body = render_flight_dump(dump);
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Unwrap an experiment result; on a simulation error (deadlock — every
/// live process blocked with nothing left to run) cut the flight dump
/// first, then exit 1. With `NSCC_FLIGHT` set the ring holds the last
/// events before the hang, including the scheduler's per-process
/// deadlock breadcrumbs.
pub fn unwrap_or_flight<T>(
    res: Result<T, nscc_sim::SimError>,
    scale: &Scale,
    hub: Option<&Hub>,
    auditor: &Option<Arc<Auditor>>,
    name: &str,
) -> T {
    match res {
        Ok(t) => t,
        Err(e) => {
            if let (Some(cap), Some(hub)) = (scale.flight, hub) {
                let dump = FlightDump::new(
                    name,
                    scale.seed,
                    "deadlock",
                    cap,
                    hub.flight_events(),
                    auditor.as_ref().map(|a| a.recorded()).unwrap_or_default(),
                )
                .with_proc_names(hub.summary().proc_names.values().cloned().collect());
                write_flight_doc(&dump);
            }
            eprintln!("error: {name}: simulation failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Attach the live telemetry feed to `hub` when `NSCC_LIVE` is set (no-op
/// otherwise). Call once, on the main hub, right after [`make_hub`] —
/// per-cell checkpoint hubs must not each reopen the feed.
pub fn attach_live(scale: &Scale, hub: &Hub, bench: &str) {
    let target = match &scale.live {
        Some(t) => t,
        None => return,
    };
    let out: Box<dyn std::io::Write + Send> = match target {
        LiveTarget::Path(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(f),
            Err(e) => die(&format!("cannot open NSCC_LIVE path {path:?}: {e}")),
        },
        LiveTarget::Fd(fd) => {
            #[cfg(unix)]
            {
                use std::os::fd::FromRawFd;
                // SAFETY: the caller handed us this descriptor via
                // NSCC_LIVE precisely so we take ownership of it; nothing
                // else in the bench touches raw fds.
                unsafe { Box::new(std::fs::File::from_raw_fd(*fd)) }
            }
            #[cfg(not(unix))]
            {
                die(&format!(
                    "NSCC_LIVE={fd} is a raw file descriptor, which only works on Unix; \
                     use a file path instead"
                ));
            }
        }
    };
    hub.set_live(out, bench);
}

/// Embed the wall-clock scheduler accounting as the report's `wall`
/// section when `NSCC_WALL` asked for it (no-op otherwise — the section
/// stays `null` and the report deterministic).
pub fn stamp_wall(scale: &Scale, hub: &Hub, report: &mut RunReport) {
    if scale.wall {
        report.wall = Some(hub.sched());
    }
}

/// Dump the hub's raw event/span streams as `TRACE_<name>.json` when
/// tracing is enabled (no-op otherwise), echoing the path written.
pub fn write_trace(scale: &Scale, hub: &Hub, name: &str) {
    if !scale.trace {
        return;
    }
    let path = format!("TRACE_{name}.json");
    match std::fs::write(&path, hub.export_events_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Render a hub summary's virtual-time profile as collapsed-stack lines
/// (`process;phase;location count`, sorted) — the input format of
/// `inferno` and `flamegraph.pl`. Rows that never accumulated a sample
/// are omitted; rows whose phase has no detail collapse to two frames.
pub fn folded_stacks(obs: &HubSummary) -> String {
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for row in &obs.profile {
        if row.samples == 0 {
            continue;
        }
        let proc = obs
            .proc_names
            .get(&row.pid)
            .cloned()
            .unwrap_or_else(|| format!("p{}", row.pid));
        let stack = if row.detail.is_empty() {
            format!("{proc};{}", row.phase)
        } else {
            format!("{proc};{};{}", row.phase, row.detail)
        };
        *merged.entry(stack).or_insert(0) += row.samples;
    }
    let mut out = String::new();
    for (stack, samples) in merged {
        let _ = writeln!(out, "{stack} {samples}");
    }
    out
}

/// Write the collapsed-stack profile to the `NSCC_FOLDED` path when one
/// is set (no-op otherwise), echoing the path written. The profile is a
/// pure function of the virtual clock, so same-seed runs produce byte
/// identical files.
pub fn write_folded(scale: &Scale, obs: &HubSummary) {
    let path = match &scale.folded {
        Some(p) => p,
        None => return,
    };
    match std::fs::write(path, folded_stacks(obs)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// A figure/table banner with the scale echoed, so saved outputs are
/// self-describing.
pub fn banner(title: &str, scale: &Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "=== {title} ===");
    let _ = writeln!(
        s,
        "scale: runs={} generations={} ci=±{} seed={} json={}",
        scale.runs,
        scale.generations,
        scale.ci,
        scale.seed,
        if scale.json { "on" } else { "off" }
    );
    s
}

/// Write the run report into the working directory when JSON output is
/// enabled (no-op otherwise), echoing the path written.
pub fn write_report(scale: &Scale, report: &RunReport) {
    if !scale.json {
        return;
    }
    match report.write_json(".") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", report.filename()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake environment for the pure parsers.
    fn env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn env_scale_defaults() {
        let s = Scale::parse(&env(&[])).unwrap();
        assert_eq!((s.runs, s.generations, s.seed), (3, 120, 42));
        assert!(s.ci > 0.0);
        assert!(!s.json && !s.trace);
    }

    #[test]
    fn env_scale_reads_values_and_flags() {
        let get = env(&[
            ("NSCC_RUNS", "7"),
            ("NSCC_JSON", "true"),
            ("NSCC_CI", " 0.5 "),
        ]);
        let s = Scale::parse(&get).unwrap();
        assert_eq!(s.runs, 7);
        assert!(s.json);
        assert_eq!(s.ci, 0.5);
    }

    #[test]
    fn malformed_env_names_the_variable_and_the_format() {
        let e = Scale::parse(&env(&[("NSCC_GENS", "1OOO")])).unwrap_err();
        assert!(e.contains("NSCC_GENS=\"1OOO\""), "{e}");
        assert!(e.contains("positive integer"), "{e}");
        let e = Scale::parse(&env(&[("NSCC_JSON", "yes")])).unwrap_err();
        assert!(e.contains("NSCC_JSON"), "{e}");
        assert!(e.contains("1 or 0"), "{e}");
    }

    #[test]
    fn modes_env_parses_labels_and_rejects_junk() {
        let m = parse_modes(&env(&[("NSCC_MODES", "age=0, age=20")]))
            .unwrap()
            .expect("modes parse");
        assert_eq!(
            m,
            vec![
                Coherence::PartialAsync { age: 0 },
                Coherence::PartialAsync { age: 20 },
            ]
        );
        assert!(parse_modes(&env(&[])).unwrap().is_none());
        let e = parse_modes(&env(&[("NSCC_MODES", "age=0, bogus")])).unwrap_err();
        assert!(e.contains("bogus"), "{e}");
        assert!(e.contains("age=N"), "{e}");
    }

    #[test]
    fn list_env_parses_and_defaults() {
        let v: Vec<f64> = env_list(&env(&[]), "NSCC_LOSS", &[0.5], "probabilities").unwrap();
        assert_eq!(v, vec![0.5]);
        let v: Vec<f64> =
            env_list(&env(&[("NSCC_LOSS", "0.01, 0.05")]), "NSCC_LOSS", &[], "p").unwrap();
        assert_eq!(v, vec![0.01, 0.05]);
        let e =
            env_list::<f64>(&env(&[("NSCC_LOSS", "0.01,x")]), "NSCC_LOSS", &[], "p").unwrap_err();
        assert!(e.contains("NSCC_LOSS"), "{e}");
    }

    #[test]
    fn mailbox_warn_parses_and_rejects_junk() {
        assert_eq!(Scale::parse(&env(&[])).unwrap().mailbox_warn, None);
        let s = Scale::parse(&env(&[("NSCC_MAILBOX_WARN", "64")])).unwrap();
        assert_eq!(s.mailbox_warn, Some(64));
        let e = Scale::parse(&env(&[("NSCC_MAILBOX_WARN", "lots")])).unwrap_err();
        assert!(e.contains("NSCC_MAILBOX_WARN"), "{e}");
    }

    #[test]
    fn folded_profile_parses_and_renders() {
        let s = Scale::parse(&env(&[])).unwrap();
        assert_eq!(s.folded, None);
        assert_eq!(s.profile_us, 100);
        assert!(!s.wants_obs());
        let s = Scale::parse(&env(&[
            ("NSCC_FOLDED", " out.folded "),
            ("NSCC_PROFILE_US", "50"),
        ]))
        .unwrap();
        assert_eq!(s.folded.as_deref(), Some("out.folded"));
        assert_eq!(s.profile_us, 50);
        assert!(s.wants_obs(), "a folded profile needs an attached hub");
        let e = Scale::parse(&env(&[("NSCC_PROFILE_US", "0")])).unwrap_err();
        assert!(e.contains("NSCC_PROFILE_US"), "{e}");

        let mut obs = Hub::new().summary();
        obs.proc_names.insert(0, "island0".to_string());
        for (pid, phase, detail, samples) in [
            (0u32, "compute", "", 3u64),
            (0, "Global_Read", "best", 2),
            (1, "compute", "", 1),
            (2, "barrier", "", 0),
        ] {
            obs.profile.push(nscc_obs::ProfileRow {
                pid,
                phase: phase.to_string(),
                detail: detail.to_string(),
                samples,
            });
        }
        let text = folded_stacks(&obs);
        assert_eq!(
            text, "island0;Global_Read;best 2\nisland0;compute 3\np1;compute 1\n",
            "sorted, named, zero-sample rows dropped"
        );
    }

    #[test]
    fn live_env_parses_paths_fds_and_rejects_junk() {
        let s = Scale::parse(&env(&[])).unwrap();
        assert_eq!(s.live, None);
        assert!(!s.wall);

        let s = Scale::parse(&env(&[("NSCC_LIVE", " live.ndjson ")])).unwrap();
        assert_eq!(s.live, Some(LiveTarget::Path("live.ndjson".into())));
        assert!(s.wants_obs(), "a live feed needs an attached hub");

        let s = Scale::parse(&env(&[("NSCC_LIVE", "3")])).unwrap();
        assert_eq!(s.live, Some(LiveTarget::Fd(3)));

        // Empty value is malformed, not silently off.
        let e = Scale::parse(&env(&[("NSCC_LIVE", "  ")])).unwrap_err();
        assert!(e.contains("NSCC_LIVE"), "{e}");
        assert!(e.contains("file descriptor"), "{e}");

        // An fd-looking value too large for an fd is malformed.
        let e = Scale::parse(&env(&[("NSCC_LIVE", "99999999999999999999")])).unwrap_err();
        assert!(e.contains("NSCC_LIVE"), "{e}");

        let s = Scale::parse(&env(&[("NSCC_WALL", "1")])).unwrap();
        assert!(s.wall);
        assert!(s.wants_obs(), "wall accounting needs an attached hub");
        let e = Scale::parse(&env(&[("NSCC_WALL", "yes")])).unwrap_err();
        assert!(e.contains("NSCC_WALL"), "{e}");
    }

    #[test]
    fn audit_and_flight_env_parse_and_reject_junk() {
        let s = Scale::parse(&env(&[])).unwrap();
        assert!(!s.audit);
        assert_eq!(s.flight, None);
        assert_eq!(s.inject_stale, 0);

        let s = Scale::parse(&env(&[("NSCC_AUDIT", "1")])).unwrap();
        assert!(s.audit);
        assert!(s.wants_obs(), "the auditor needs an attached hub");
        let e = Scale::parse(&env(&[("NSCC_AUDIT", "on")])).unwrap_err();
        assert!(e.contains("NSCC_AUDIT"), "{e}");

        let s = Scale::parse(&env(&[("NSCC_FLIGHT", " 256 ")])).unwrap();
        assert_eq!(s.flight, Some(256));
        assert!(s.wants_obs(), "the flight ring needs an attached hub");
        // Malformed values are hard errors, not silent defaults.
        let e = Scale::parse(&env(&[("NSCC_FLIGHT", "lots")])).unwrap_err();
        assert!(e.contains("NSCC_FLIGHT=\"lots\""), "{e}");
        assert!(e.contains("positive integer"), "{e}");
        let e = Scale::parse(&env(&[("NSCC_FLIGHT", "0")])).unwrap_err();
        assert!(e.contains("NSCC_FLIGHT"), "{e}");
        let e = Scale::parse(&env(&[("NSCC_FLIGHT", "-5")])).unwrap_err();
        assert!(e.contains("NSCC_FLIGHT"), "{e}");

        let s = Scale::parse(&env(&[("NSCC_INJECT_STALE", "4")])).unwrap();
        assert_eq!(s.inject_stale, 4);
        assert!(s.wants_obs(), "stale injection is observe-gated");
        let e = Scale::parse(&env(&[("NSCC_INJECT_STALE", "many")])).unwrap_err();
        assert!(e.contains("NSCC_INJECT_STALE"), "{e}");
    }

    #[test]
    fn staleness_env_arms_the_tracer_and_stamps_the_section() {
        let s = Scale::parse(&env(&[])).unwrap();
        assert!(!s.staleness);
        assert!(!make_hub(&s).staleness_enabled());

        let s = Scale::parse(&env(&[("NSCC_STALENESS", "1")])).unwrap();
        assert!(s.staleness);
        assert!(s.wants_obs(), "the hop tracer needs an attached hub");
        let hub = make_hub(&s);
        assert!(hub.staleness_enabled());
        let e = Scale::parse(&env(&[("NSCC_STALENESS", "armed")])).unwrap_err();
        assert!(e.contains("NSCC_STALENESS"), "{e}");

        // Untraced runs keep the section null; traced runs stamp the
        // main hub's anatomy, and sweep bins can pass a merged one.
        let mut rep = RunReport::new("unit", &hub);
        stamp_staleness(&Scale::paper(), &hub, None, &mut rep);
        assert!(rep.staleness.is_none());
        stamp_staleness(&s, &hub, None, &mut rep);
        assert!(rep.staleness.is_some());
        let mut merged = nscc_obs::StalenessSummary::default();
        merged.released = 7;
        let mut rep2 = RunReport::new("unit2", &hub);
        stamp_staleness(&s, &hub, Some(merged), &mut rep2);
        assert_eq!(rep2.staleness.expect("stamped").released, 7);
    }

    #[test]
    fn make_hub_enables_flight_ring_on_request() {
        let mut scale = Scale::paper();
        assert!(!make_hub(&scale).flight_enabled());
        scale.flight = Some(8);
        let hub = make_hub(&scale);
        assert!(hub.flight_enabled());
        assert_eq!(hub.flight_capacity(), 8);
    }

    #[test]
    fn attach_audit_taps_and_stamps() {
        let mut scale = Scale::paper();
        assert!(attach_audit(&scale, &Hub::new()).is_none());
        scale.audit = true;
        let hub = make_hub(&scale);
        let auditor = attach_audit(&scale, &hub);
        assert!(hub.tap_enabled());
        // A violating ReadDone through the hub reaches the auditor.
        hub.emit(nscc_obs::ObsEvent::ReadDone {
            t_ns: 1,
            rank: 0,
            loc: 0,
            curr_iter: 10,
            requested: 2,
            delivered: 3,
            staleness: 7,
            blocked: false,
            block_ns: 0,
        });
        assert_eq!(auditor.as_ref().unwrap().violation_count(), 1);
        // Per-cell hubs share the same auditor via tap_audit.
        let cell = make_hub(&scale);
        tap_audit(&auditor, &cell);
        cell.emit(nscc_obs::ObsEvent::SeqAccept {
            t_ns: 2,
            src: 0,
            dst: 1,
            seq: 9,
        });
        cell.emit(nscc_obs::ObsEvent::SeqAccept {
            t_ns: 3,
            src: 0,
            dst: 1,
            seq: 9,
        });
        assert_eq!(auditor.as_ref().unwrap().violation_count(), 2);

        let mut rep = RunReport::new("unit", &hub);
        stamp_audit(&auditor, &mut rep);
        let audit = rep.audit.expect("audit section stamped");
        assert_eq!(audit.violations, 2);
        stamp_audit(&None, &mut RunReport::new("unit2", &hub));
    }

    #[test]
    fn make_hub_honours_explicit_snapshot_disable_and_wall() {
        let mut scale = Scale::paper();
        scale.snap_ms = 0;
        let hub = make_hub(&scale);
        hub.emit(nscc_obs::ObsEvent::Write {
            t_ns: 10_000_000_000,
            rank: 0,
            loc: 0,
            age: 1,
        });
        assert!(
            hub.snapshots().is_empty(),
            "NSCC_SNAP_MS=0 is an explicit disable"
        );
        assert!(!hub.wants_wall());

        scale.wall = true;
        assert!(make_hub(&scale).wants_wall());
        scale.wall = false;
        scale.live = Some(LiveTarget::Path("x".into()));
        assert!(
            make_hub(&scale).wants_wall(),
            "a live feed implies wall accounting"
        );
    }

    #[test]
    fn resume_opts_parse() {
        let o = ResumeOpts::parse(&env(&[]), false).unwrap();
        assert!(o.dir.is_none() && !o.resume && o.exit_after.is_none());
        let o = ResumeOpts::parse(
            &env(&[
                ("NSCC_CKPT_DIR", "ck"),
                ("NSCC_RESUME", "1"),
                ("NSCC_CKPT_EXIT_AFTER", "2"),
            ]),
            false,
        )
        .unwrap();
        assert_eq!(o.dir.as_deref(), Some("ck"));
        assert!(o.resume);
        assert_eq!(o.exit_after, Some(2));
        // --resume argument also turns resume on.
        let o = ResumeOpts::parse(&env(&[("NSCC_CKPT_DIR", "ck")]), true).unwrap();
        assert!(o.resume);
        // Resume without a directory is a configuration error, not a
        // silent cold run.
        let e = ResumeOpts::parse(&env(&[("NSCC_RESUME", "1")]), false).unwrap_err();
        assert!(e.contains("NSCC_CKPT_DIR"), "{e}");
    }

    #[test]
    fn sweep_ckpt_saves_and_resumes_cells() {
        let dir = std::env::temp_dir().join(format!("nscc-bench-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ResumeOpts {
            dir: Some(dir.to_string_lossy().into_owned()),
            resume: false,
            exit_after: None,
        };
        let mut ck = SweepCkpt::from_opts(&opts, "demo").expect("store");
        assert!(ck.load_cell(0).is_none(), "fresh run never loads");
        ck.save_cell(0, 123, &[7], b"cell-zero");
        ck.save_cell(1, 456, &[8], b"cell-one");

        let resumed = ResumeOpts {
            resume: true,
            ..opts.clone()
        };
        let ck2 = SweepCkpt::from_opts(&resumed, "demo").expect("store");
        assert_eq!(ck2.load_cell(0).as_deref(), Some(&b"cell-zero"[..]));
        assert_eq!(ck2.load_cell(1).as_deref(), Some(&b"cell-one"[..]));
        assert!(ck2.load_cell(2).is_none(), "uncomputed cell is absent");

        // A fresh (non-resume) open clears the old generations.
        let ck3 = SweepCkpt::from_opts(&opts, "demo").expect("store");
        let _ = &ck3;
        let ck4 = SweepCkpt::from_opts(&resumed, "demo").expect("store");
        assert!(ck4.load_cell(0).is_none(), "cleared store has no cells");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn banner_echoes_scale() {
        let b = banner("Figure 2", &Scale::paper());
        assert!(b.contains("Figure 2"));
        assert!(b.contains("runs=25"));
        assert!(b.contains("1000"));
    }
}
