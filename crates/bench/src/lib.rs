//! Shared utilities for the NSCC benchmark harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see
//! DESIGN.md's experiment index). All binaries accept a scale through
//! environment variables so `--quick` smoke runs and full paper-scale
//! sweeps use the same code:
//!
//! * `NSCC_RUNS` — repetitions per cell (paper: 25 for GA, 10 for Bayes).
//! * `NSCC_GENS` — serial-baseline GA generations (paper: 1000).
//! * `NSCC_CI` — Bayes CI half-width (paper: 0.01).
//! * `NSCC_SEED` — base seed.
//! * `NSCC_JSON` — set to `1`/`true` (or pass `--json`) to also write a
//!   machine-readable `BENCH_<name>.json` run report into the working
//!   directory.

#![warn(missing_docs)]

use std::fmt::Write as _;

use nscc_core::RunReport;

/// Harness scale, read from the environment with bench-friendly defaults.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Repetitions per experiment cell.
    pub runs: usize,
    /// Serial GA generations.
    pub generations: u64,
    /// Bayes CI half-width target.
    pub ci: f64,
    /// Base seed.
    pub seed: u64,
    /// Whether to write a `BENCH_<name>.json` run report.
    pub json: bool,
}

impl Scale {
    /// Read the scale from the environment (see module docs). JSON output
    /// is enabled by `NSCC_JSON=1`/`true` or a `--json` argument.
    pub fn from_env() -> Scale {
        fn var<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let json = matches!(std::env::var("NSCC_JSON").as_deref(), Ok("1") | Ok("true"))
            || std::env::args().any(|a| a == "--json");
        Scale {
            runs: var("NSCC_RUNS", 3),
            generations: var("NSCC_GENS", 120),
            ci: var("NSCC_CI", 0.02),
            seed: var("NSCC_SEED", 42),
            json,
        }
    }

    /// The paper's full scale (25 GA runs, 1000 generations, CI ±0.01).
    pub fn paper() -> Scale {
        Scale {
            runs: 25,
            generations: 1000,
            ci: 0.01,
            seed: 42,
            json: false,
        }
    }
}

/// A figure/table banner with the scale echoed, so saved outputs are
/// self-describing.
pub fn banner(title: &str, scale: &Scale) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "=== {title} ===");
    let _ = writeln!(
        s,
        "scale: runs={} generations={} ci=±{} seed={} json={}",
        scale.runs,
        scale.generations,
        scale.ci,
        scale.seed,
        if scale.json { "on" } else { "off" }
    );
    s
}

/// Write the run report into the working directory when JSON output is
/// enabled (no-op otherwise), echoing the path written.
pub fn write_report(scale: &Scale, report: &RunReport) {
    if !scale.json {
        return;
    }
    match report.write_json(".") {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", report.filename()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scale_defaults() {
        let s = Scale::from_env();
        assert!(s.runs >= 1);
        assert!(s.generations >= 1);
        assert!(s.ci > 0.0);
    }

    #[test]
    fn banner_echoes_scale() {
        let b = banner("Figure 2", &Scale::paper());
        assert!(b.contains("Figure 2"));
        assert!(b.contains("runs=25"));
        assert!(b.contains("1000"));
    }
}
