//! Library-level headless experiment entrypoint for the fuzz hunter.
//!
//! The bench binaries print tables, write reports and `exit(1)` on a
//! simulation error — none of which a fuzzing driver can use. This
//! module runs the same chaos-study experiment cell as `fault_study`
//! (island GA, `Global_Read` at one age bound, full robustness stack,
//! watchdog always armed) but returns every verdict as data:
//!
//! * the online auditor's recorded violations, as deterministic strings;
//! * structured fault reports (watchdog cuts, deadlocks under chaos);
//! * a hard simulation error (deadlock outside the watchdog's reach),
//!   including any deadlock breadcrumbs, instead of a process exit;
//! * recovery counters (`restores`, `max_rollback`) and the completion
//!   rate, for the rollback-bound and completion oracles;
//! * the staleness tracer's conservation verdict (`traced_releases`,
//!   `conservation_violations`) — the hop tracer is always armed here,
//!   so the fuzzer hunts decomposition bugs for free.
//!
//! Same [`HeadlessSpec`] → byte-identical [`HeadlessOutcome`]: the run
//! is a deterministic discrete-event simulation, so a hunt finding
//! replays exactly from its spec alone.

use std::sync::Arc;

use nscc_audit::Auditor;
use nscc_core::{run_ga_experiment, FaultPlan, GaExperiment, Platform, RecoveryStyle};
use nscc_dsm::Coherence;
use nscc_ga::{CostModel, SupervisorPolicy, TestFn};
use nscc_msg::ReliableConfig;
use nscc_obs::Hub;
use nscc_sim::SimTime;

/// One complete headless trial: everything the generator mutates,
/// nothing read from the environment.
#[derive(Debug, Clone)]
pub struct HeadlessSpec {
    /// Island count (the experiment's processor count).
    pub procs: usize,
    /// Serial-baseline generations (small for fuzzing; the paper's 1000
    /// would make each trial cost seconds).
    pub generations: u64,
    /// Repetitions per trial (fuzzing wants 1).
    pub runs: usize,
    /// Base seed for the GA runs.
    pub seed: u64,
    /// `Global_Read` age bound (the one coherence mode exercised).
    pub age: u64,
    /// Fault plan for the wire; `None` (or a no-op plan) keeps it clean.
    pub plan: Option<FaultPlan>,
    /// Reliable-delivery configuration; `None` runs the raw datagram
    /// layer (no retransmits — loss then shows up as degraded reads and
    /// watchdog cuts instead).
    pub reliable: Option<ReliableConfig>,
    /// Blocked reads degrade to the cached value after this long.
    pub read_timeout: Option<SimTime>,
    /// Failure-detector heartbeat period.
    pub heartbeat: Option<SimTime>,
    /// Virtual-time watchdog — always armed: a fuzzer must never hang.
    pub watchdog: SimTime,
    /// Deliberately release this many would-block reads stale (the
    /// `NSCC_INJECT_STALE` sabotage; the staleness oracle must catch it).
    pub inject_stale: u64,
    /// Chandy–Lamport snapshot cadence in generations (`None` = off).
    pub snapshots: Option<u64>,
    /// Whether crashes go through the default supervision policy.
    pub supervision: bool,
}

impl HeadlessSpec {
    /// A clean, fast, fault-free trial — the baseline the generator
    /// mutates away from.
    pub fn quick(seed: u64) -> HeadlessSpec {
        HeadlessSpec {
            procs: 4,
            generations: 40,
            runs: 1,
            seed,
            age: 10,
            plan: None,
            reliable: Some(ReliableConfig {
                base_rto: SimTime::from_millis(80),
                ..ReliableConfig::default()
            }),
            read_timeout: Some(SimTime::from_millis(50)),
            heartbeat: Some(SimTime::from_millis(20)),
            watchdog: SimTime::from_secs(3600),
            inject_stale: 0,
            snapshots: None,
            supervision: false,
        }
    }
}

/// Everything one headless trial reported, as plain data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeadlessOutcome {
    /// The auditor's recorded violations, one deterministic line each
    /// (`monitor@t_ns rank=N: detail`).
    pub violations: Vec<String>,
    /// Total violations counted (recording caps at the auditor's ring
    /// size; this is the uncapped count).
    pub violation_count: u64,
    /// One summary line per watchdog-cut / deadlocked run under chaos.
    pub fault_summaries: Vec<String>,
    /// A hard simulation error (deadlock with the watchdog never firing),
    /// rendered with its breadcrumb notes. The run produced no report.
    pub sim_error: Option<String>,
    /// Fraction of runs in which every island reached the quality bar.
    pub success_rate: f64,
    /// Crash recoveries performed across all islands and runs.
    pub restores: u64,
    /// Largest warm-restore rollback (generations) seen in any run.
    pub max_rollback: u64,
    /// Reliable-layer frames abandoned after exhausting retries.
    pub give_ups: u64,
    /// Blocked reads the staleness tracer decomposed into stage
    /// durations (the tracer is always armed in headless runs).
    pub traced_releases: u64,
    /// Traced releases whose stage sum did NOT equal the observed age —
    /// nonzero means a hop stamp is wrong or missing.
    pub conservation_violations: u64,
}

/// Run one trial and collect every verdict. Never exits and never
/// panics on a simulation error; the worst outcome is an
/// [`HeadlessOutcome::sim_error`].
pub fn run_headless(spec: &HeadlessSpec) -> HeadlessOutcome {
    let hub = Hub::new();
    // The hop tracer is free under fuzzing and turns every trial into a
    // conservation check: stage sums must equal observed ages exactly.
    hub.enable_staleness();
    let auditor = Arc::new(Auditor::new());
    hub.set_tap(auditor.clone());

    let mut platform = Platform::paper_ethernet(spec.procs);
    if let Some(plan) = spec.plan.as_ref().filter(|p| !p.is_noop()) {
        platform = platform.with_faults(plan.clone());
    }
    platform.msg.reliable = spec.reliable.clone();

    let exp = GaExperiment {
        generations: spec.generations,
        runs: spec.runs,
        base_seed: spec.seed,
        cost: CostModel::deterministic(),
        platform,
        obs: Some(hub.clone()),
        modes: vec![Coherence::PartialAsync { age: spec.age }],
        read_timeout: spec.read_timeout,
        heartbeat: spec.heartbeat,
        watchdog: Some(spec.watchdog),
        recovery: Some(RecoveryStyle::Warm),
        inject_stale: spec.inject_stale,
        snapshots: spec.snapshots,
        supervision: spec.supervision.then(SupervisorPolicy::default),
        ..GaExperiment::new(TestFn::F1Sphere, spec.procs)
    };

    let mut out = HeadlessOutcome::default();
    match run_ga_experiment(&exp) {
        Ok(res) => {
            let m = &res.modes[0];
            out.success_rate = m.success_rate;
            out.restores = m.restores;
            out.max_rollback = m.max_rollback;
            out.give_ups = m.comm.give_ups;
            out.fault_summaries = res.fault_reports.iter().map(|f| f.summary()).collect();
        }
        Err(e) => out.sim_error = Some(e.to_string()),
    }
    let stal = hub.staleness_summary();
    out.traced_releases = stal.released;
    out.conservation_violations = stal.conservation_violations;
    out.violation_count = auditor.violation_count();
    out.violations = auditor
        .recorded()
        .iter()
        .map(|v| format!("{}@{} rank={}: {}", v.monitor, v.t_ns, v.rank, v.detail))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_quick_trial_is_quiet_and_deterministic() {
        let spec = HeadlessSpec::quick(7);
        let a = run_headless(&spec);
        assert_eq!(a.sim_error, None);
        assert_eq!(a.violation_count, 0, "clean run must not trip the audit");
        assert!(a.fault_summaries.is_empty());
        assert_eq!(a.success_rate, 1.0);
        assert!(a.traced_releases > 0, "the armed tracer saw releases");
        assert_eq!(
            a.conservation_violations, 0,
            "stage sums must equal observed ages exactly"
        );
        let b = run_headless(&spec);
        assert_eq!(a, b, "same spec must reproduce byte-identically");
    }

    #[test]
    fn inject_stale_sabotage_trips_the_staleness_monitor() {
        let spec = HeadlessSpec {
            inject_stale: 2,
            ..HeadlessSpec::quick(7)
        };
        let out = run_headless(&spec);
        assert!(
            out.violation_count > 0,
            "sabotaged reads must be flagged: {out:?}"
        );
        assert!(
            out.violations.iter().any(|v| v.starts_with("staleness@")),
            "the staleness monitor names the violation: {:?}",
            out.violations
        );
    }

    #[test]
    fn noop_plan_matches_no_plan() {
        let clean = run_headless(&HeadlessSpec::quick(11));
        let noop = run_headless(&HeadlessSpec {
            plan: Some(FaultPlan::new(99)),
            ..HeadlessSpec::quick(11)
        });
        assert_eq!(clean, noop, "a no-op plan must not perturb the wire");
    }
}
