//! Criterion benchmarks that exercise each paper figure/table end-to-end
//! at a reduced scale — one benchmark per table and figure, as the
//! regeneration index in DESIGN.md requires. (Full-scale regeneration
//! lives in the `fig2`/`fig3`/`fig4`/`table1`/`table2` binaries; these
//! keep `cargo bench` exercising the same code paths in minutes.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use nscc_bayes::{StopRule, Table2Net};
use nscc_core::{
    run_bayes_experiment, run_ga_experiment, run_sequential, BayesExperiment, GaExperiment,
    Platform,
};
use nscc_dsm::Coherence;
use nscc_ga::{CostModel, TestFn, ALL_FUNCTIONS};

fn quick_ga(func: TestFn, procs: usize, load: f64) -> GaExperiment {
    GaExperiment {
        generations: 40,
        runs: 1,
        cap_factor: 4,
        platform: if load > 0.0 {
            Platform::loaded_ethernet(procs, load)
        } else {
            Platform::paper_ethernet(procs)
        },
        cost: CostModel::default(),
        ..GaExperiment::new(func, procs)
    }
}

fn quick_bayes(net: Table2Net) -> BayesExperiment {
    BayesExperiment {
        stop: StopRule {
            halfwidth: 0.04,
            ..StopRule::default()
        },
        runs: 1,
        ..BayesExperiment::new(net, 2)
    }
}

/// Table 1: evaluate the whole test bed at its optima and random points.
fn table1(c: &mut Criterion) {
    c.bench_function("table1/evaluate_test_bed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in ALL_FUNCTIONS {
                acc += f.eval(&f.argmin());
            }
            acc
        });
    });
}

/// Table 2: one sequential inference run per network (reduced CI).
fn table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for netid in [Table2Net::A, Table2Net::Hailfinder] {
        g.bench_function(format!("seq_inference_{}", netid.name()), |b| {
            let exp = quick_bayes(netid);
            b.iter(|| run_sequential(&exp, 1));
        });
    }
    g.finish();
}

/// Figure 2: one reduced GA cell (f1, 4 procs, unloaded).
fn fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("ga_cell_f1_4procs_unloaded", |b| {
        let exp = quick_ga(TestFn::F1Sphere, 4, 0.0);
        b.iter(|| run_ga_experiment(&exp).expect("experiment runs"));
    });
    g.finish();
}

/// Figure 3: one reduced Bayes cell (Hailfinder, 2 procs).
fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("bayes_cell_hailfinder_2procs", |b| {
        let exp = quick_bayes(Table2Net::Hailfinder);
        b.iter(|| run_bayes_experiment(&exp).expect("experiment runs"));
    });
    g.finish();
}

/// Figure 4: one reduced loaded-network GA cell (f1, 4 procs, 2 Mbps).
fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("ga_cell_f1_4procs_2mbps", |b| {
        let exp = quick_ga(TestFn::F1Sphere, 4, 2.0);
        b.iter(|| run_ga_experiment(&exp).expect("experiment runs"));
    });
    g.finish();
}

/// A single island-GA run per mode, to expose mode costs directly.
fn modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("modes");
    g.sample_size(10);
    for mode in [
        Coherence::Synchronous,
        Coherence::FullyAsync,
        Coherence::PartialAsync { age: 10 },
    ] {
        g.bench_function(format!("bayes_hailfinder_{mode}"), |b| {
            use nscc_bayes::{run_parallel_inference, ParallelBayesConfig, Query};
            use nscc_msg::MsgConfig;
            let net = Arc::new(Table2Net::Hailfinder.build());
            let query = Query {
                node: net.len() - 1,
                evidence: vec![],
            };
            b.iter(|| {
                let cfg = ParallelBayesConfig {
                    stop: StopRule {
                        halfwidth: 0.04,
                        ..StopRule::default()
                    },
                    ..ParallelBayesConfig::new(mode)
                };
                run_parallel_inference(
                    Arc::clone(&net),
                    query.clone(),
                    2,
                    cfg,
                    Platform::paper_ethernet(2).build_network_only(1),
                    MsgConfig::default(),
                    1,
                )
                .expect("inference runs")
            });
        });
    }
    g.finish();
}

criterion_group!(figures, table1, table2, fig2, fig3, fig4, modes);
criterion_main!(figures);
