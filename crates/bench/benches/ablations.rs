//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Rollback policy** — the paper's replay-from-earliest (Time Warp
//!   style, [2]) vs. per-sample selective recomputation (possible because
//!   logic-sampling iterations are independent).
//! * **Coalescing** — samples per interface message (block size): the
//!   asynchronous disciplines' amortization lever.
//! * **Interconnect** — the shared 10 Mbps Ethernet vs. the SP2 switch.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use nscc_bayes::{
    run_parallel_inference, ParallelBayesConfig, Query, RollbackPolicy, StopRule, Table2Net,
};
use nscc_core::{run_ga_experiment, GaExperiment, Interconnect, Platform};
use nscc_dsm::Coherence;
use nscc_ga::{CostModel, TestFn};
use nscc_msg::MsgConfig;

fn hailfinder_cfg(mode: Coherence) -> (Arc<nscc_bayes::BeliefNetwork>, Query, ParallelBayesConfig) {
    let net = Arc::new(Table2Net::Hailfinder.build());
    let query = Query {
        node: net.len() - 1,
        evidence: vec![],
    };
    let cfg = ParallelBayesConfig {
        stop: StopRule {
            halfwidth: 0.04,
            ..StopRule::default()
        },
        ..ParallelBayesConfig::new(mode)
    };
    (net, query, cfg)
}

fn ablation_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rollback");
    g.sample_size(10);
    for (name, policy) in [
        ("replay", RollbackPolicy::Replay),
        ("selective", RollbackPolicy::Selective),
    ] {
        g.bench_function(name, |b| {
            let (net, query, mut cfg) = hailfinder_cfg(Coherence::FullyAsync);
            cfg.rollback = policy;
            b.iter(|| {
                run_parallel_inference(
                    Arc::clone(&net),
                    query.clone(),
                    2,
                    cfg.clone(),
                    Platform::paper_ethernet(2).build_network_only(3),
                    MsgConfig::default(),
                    3,
                )
                .expect("inference runs")
            });
        });
    }
    g.finish();
}

fn ablation_coalescing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_coalescing");
    g.sample_size(10);
    for block in [1usize, 4, 16] {
        g.bench_function(format!("block_{block}"), |b| {
            let (net, query, mut cfg) = hailfinder_cfg(Coherence::PartialAsync { age: 10 });
            cfg.block = block;
            b.iter(|| {
                run_parallel_inference(
                    Arc::clone(&net),
                    query.clone(),
                    2,
                    cfg.clone(),
                    Platform::paper_ethernet(2).build_network_only(5),
                    MsgConfig::default(),
                    5,
                )
                .expect("inference runs")
            });
        });
    }
    g.finish();
}

fn ablation_interconnect(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_interconnect");
    g.sample_size(10);
    for (name, interconnect) in [
        ("ethernet10", Interconnect::Ethernet10),
        ("sp2switch", Interconnect::Sp2Switch),
    ] {
        g.bench_function(name, |b| {
            let exp = GaExperiment {
                generations: 40,
                runs: 1,
                platform: Platform {
                    interconnect,
                    ..Platform::paper_ethernet(8)
                },
                cost: CostModel::default(),
                ..GaExperiment::new(TestFn::F1Sphere, 8)
            };
            b.iter(|| run_ga_experiment(&exp).expect("experiment runs"));
        });
    }
    g.finish();
}

/// §6 future work: dynamic age control versus a fixed age under load skew.
fn ablation_adaptive_age(c: &mut Criterion) {
    use nscc_dsm::{Directory, DsmWorld};
    use nscc_ga::{run_island, ConvergenceBoard, IslandConfig, MigrantBatch, StopPolicy};
    use nscc_net::{EthernetBus, Network};
    use nscc_sim::{SimBuilder, SimTime};

    let mut g = c.benchmark_group("ablation_adaptive_age");
    g.sample_size(10);
    for (name, adaptive) in [("fixed_age5", None), ("adaptive_0_40", Some((0u64, 40u64)))] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ranks = 4;
                let mut dir = Directory::new();
                let locs = dir.add_per_rank("best", ranks);
                let mut world: DsmWorld<MigrantBatch> = DsmWorld::new(
                    Network::new(EthernetBus::ten_mbps(3)),
                    ranks,
                    MsgConfig::default(),
                    dir,
                );
                for &l in &locs {
                    world.set_initial(l, Vec::new());
                }
                let board = ConvergenceBoard::new(ranks);
                let mut sim = SimBuilder::new(3);
                for r in 0..ranks {
                    let node = world.node(r);
                    let locs = locs.clone();
                    let board = board.clone();
                    let cfg = IslandConfig {
                        cost: CostModel {
                            hiccup_rate_per_sec: 2.0,
                            hiccup_stall: SimTime::from_millis(200),
                            ..CostModel::default()
                        },
                        adaptive,
                        ..IslandConfig::paper(
                            TestFn::F1Sphere,
                            Coherence::PartialAsync { age: 5 },
                            StopPolicy::FixedGenerations(60),
                        )
                    };
                    sim.spawn(format!("island{r}"), move |ctx| {
                        run_island(ctx, node, &locs, &cfg, &board);
                    });
                }
                sim.run().expect("runs")
            });
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_rollback,
    ablation_coalescing,
    ablation_interconnect,
    ablation_adaptive_age
);
criterion_main!(ablations);
