//! Criterion microbenchmarks of the NSCC substrates: the primitives whose
//! costs underlie every experiment (wall-clock performance of the
//! simulator itself, not virtual time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use nscc_bayes::{figure1, forward_sample, Table2Net};
use nscc_dsm::{Directory, DsmWorld};
use nscc_ga::{CostModel, Deme, GaParams, SerialGa, TestFn};
use nscc_msg::{wire_size, MsgConfig};
use nscc_net::{EthernetBus, IdealMedium, Medium, Network, NodeId};
use nscc_obs::Hub;
use nscc_partition::{partition, Graph};
use nscc_sim::{Mailbox, SimBuilder, SimTime};

fn bench_sim_engine(c: &mut Criterion) {
    c.bench_function("sim/spawn_run_1000_events", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(1);
            sim.spawn("p", |ctx| {
                for _ in 0..1000 {
                    ctx.advance(SimTime::from_micros(1));
                }
            });
            sim.run().unwrap()
        });
    });

    c.bench_function("sim/mailbox_pingpong_100", |b| {
        b.iter(|| {
            let a: Mailbox<u32> = Mailbox::new("a");
            let bx: Mailbox<u32> = Mailbox::new("b");
            let (a2, b2) = (a.clone(), bx.clone());
            let mut sim = SimBuilder::new(1);
            sim.spawn("ping", move |ctx| {
                for i in 0..100 {
                    b2.deliver_now(ctx, i);
                    let _ = a.recv(ctx);
                }
            });
            sim.spawn("pong", move |ctx| {
                for _ in 0..100 {
                    let v = bx.recv(ctx);
                    a2.deliver_now(ctx, v);
                }
            });
            sim.run().unwrap()
        });
    });
}

fn bench_network_models(c: &mut Criterion) {
    c.bench_function("net/ethernet_transmit", |b| {
        let mut bus = EthernetBus::ten_mbps(0);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimTime::from_micros(900);
            bus.transmit(now, NodeId(0), NodeId(1), 1000)
        });
    });

    c.bench_function("net/wire_size_migrant_batch", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let deme = Deme::new(TestFn::F6Rastrigin, GaParams::default(), &mut rng);
        let migrants = deme.migrants(25);
        b.iter(|| wire_size(&migrants));
    });
}

fn bench_dsm(c: &mut Criterion) {
    c.bench_function("dsm/global_read_cached", |b| {
        b.iter_batched(
            || {
                let mut dir = Directory::new();
                let loc = dir.add("x", 0, [1]);
                let mut world: DsmWorld<u64> = DsmWorld::new(
                    Network::new(IdealMedium::instant()),
                    2,
                    MsgConfig::default(),
                    dir,
                );
                world.set_initial(loc, 7);
                (world, loc)
            },
            |(world, loc)| {
                let mut reader = world.node(1);
                let mut sim = SimBuilder::new(0);
                sim.spawn("r", move |ctx| {
                    for _ in 0..100 {
                        let _ = reader.global_read(ctx, loc, 0, 0);
                    }
                });
                sim.run().unwrap()
            },
            BatchSize::SmallInput,
        );
    });
}

/// The observability hub's cost at the hottest event site: cached
/// `global_read`s with the hub detached (the `Option` is `None` — the
/// default) versus attached (every read emits a `ReadDone` event). The
/// detached case should be indistinguishable from `dsm/global_read_cached`.
fn bench_obs(c: &mut Criterion) {
    for (name, attached) in [("detached", false), ("attached", true)] {
        c.bench_function(&format!("obs/global_read_{name}"), |b| {
            b.iter_batched(
                || {
                    let mut dir = Directory::new();
                    let loc = dir.add("x", 0, [1]);
                    let mut world: DsmWorld<u64> = DsmWorld::new(
                        Network::new(IdealMedium::instant()),
                        2,
                        MsgConfig::default(),
                        dir,
                    );
                    if attached {
                        world = world.with_obs(Hub::new());
                    }
                    world.set_initial(loc, 7);
                    (world, loc)
                },
                |(world, loc)| {
                    let mut reader = world.node(1);
                    let mut sim = SimBuilder::new(0);
                    sim.spawn("r", move |ctx| {
                        for _ in 0..100 {
                            let _ = reader.global_read(ctx, loc, 0, 0);
                        }
                    });
                    sim.run().unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_ga(c: &mut Criterion) {
    c.bench_function("ga/generation_step_sphere", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut deme = Deme::new(TestFn::F1Sphere, GaParams::default(), &mut rng);
        b.iter(|| deme.step(&mut rng));
    });

    c.bench_function("ga/generation_step_rastrigin", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut deme = Deme::new(TestFn::F6Rastrigin, GaParams::default(), &mut rng);
        b.iter(|| deme.step(&mut rng));
    });

    c.bench_function("ga/serial_50_generations", |b| {
        b.iter(|| {
            SerialGa::new(
                TestFn::F1Sphere,
                GaParams::default(),
                CostModel::deterministic(),
                9,
            )
            .run(50)
        });
    });
}

fn bench_bayes(c: &mut Criterion) {
    c.bench_function("bayes/forward_sample_figure1", |b| {
        let net = figure1();
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            forward_sample(&net, 5, i, &mut out);
        });
    });

    c.bench_function("bayes/forward_sample_hailfinder", |b| {
        let net = Table2Net::Hailfinder.build();
        let mut out = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            forward_sample(&net, 5, i, &mut out);
        });
    });
}

fn bench_partition(c: &mut Criterion) {
    c.bench_function("partition/bisect_54_node_network", |b| {
        let g = Table2Net::A.build().skeleton();
        b.iter(|| partition(&g, 2, 42));
    });

    c.bench_function("partition/4way_ring_200", |b| {
        let g = Graph::from_edges(200, (0..200).map(|i| (i, (i + 1) % 200)));
        b.iter(|| partition(&g, 4, 42));
    });
}

criterion_group!(
    benches,
    bench_sim_engine,
    bench_network_models,
    bench_dsm,
    bench_obs,
    bench_ga,
    bench_bayes,
    bench_partition
);
criterion_main!(benches);
