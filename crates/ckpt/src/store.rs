//! On-disk checkpoint generations: `gen-NNNNNN.nsck` files in one
//! directory, written atomically (temp file + rename, then an fsync of the
//! parent directory) so a kill mid-write can never corrupt an existing
//! generation and a completed rename survives a host crash.
//!
//! File layout (everything after the checksum is covered by it):
//!
//! ```text
//! MAGIC "NSCK" | version u32 | checksum u64 | gen u64 | t_ns u64
//!             | iters Vec<u64> | payload Vec<u8> | kind u64 (v2+)
//! ```
//!
//! `iters` is the producer's per-node iteration vector (which generation
//! each island/sampler had completed), `t_ns` the virtual time of the cut,
//! and `kind` how the cut was taken ([`CkptKind`]): a stop-the-world pause
//! or a Chandy–Lamport consistent cut captured while the run kept serving.
//! v1 files predate the kind tag and load as stop-world.
//! [`CkptStore::load_latest`] falls back across corrupt generations: a
//! damaged newest file degrades recovery by one cadence interval instead
//! of killing it.

use std::fs;
use std::path::{Path, PathBuf};

use crate::wire::{fnv1a, Dec, Enc};
use crate::{CkptError, CKPT_VERSION, MAGIC, MIN_CKPT_VERSION};

/// Extension of checkpoint generation files.
const EXT: &str = "nsck";

/// How a checkpoint generation was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptKind {
    /// Every producer paused at a barrier-like point while the cut was
    /// taken (the PR 4 recovery path, and all v1 files).
    #[default]
    StopWorld,
    /// A Chandy–Lamport marker-protocol consistent cut: per-process states
    /// plus recorded in-flight channel messages, captured while the run
    /// kept serving reads and writes.
    ConsistentCut,
}

impl CkptKind {
    /// Wire tag (trailing u64 of a v2 body).
    fn to_tag(self) -> u64 {
        match self {
            CkptKind::StopWorld => 0,
            CkptKind::ConsistentCut => 1,
        }
    }

    fn from_tag(tag: u64) -> Result<Self, CkptError> {
        match tag {
            0 => Ok(CkptKind::StopWorld),
            1 => Ok(CkptKind::ConsistentCut),
            other => Err(CkptError::Malformed(format!(
                "unknown checkpoint kind tag {other}"
            ))),
        }
    }

    /// Human-readable label (`stop-world` / `consistent-cut`), as shown by
    /// `nscc inspect --ckpt`.
    pub fn label(self) -> &'static str {
        match self {
            CkptKind::StopWorld => "stop-world",
            CkptKind::ConsistentCut => "consistent-cut",
        }
    }
}

/// Metadata of one on-disk checkpoint generation (the payload itself is
/// loaded separately).
#[derive(Debug, Clone)]
pub struct GenerationInfo {
    /// Generation number (monotonic per store).
    pub gen: u64,
    /// Virtual time of the checkpoint cut (nanoseconds).
    pub t_ns: u64,
    /// Per-node iteration vector at the cut.
    pub iters: Vec<u64>,
    /// Total file size in bytes.
    pub bytes: u64,
    /// The frame checksum (FNV-1a over everything after the checksum
    /// field).
    pub checksum: u64,
    /// How the cut was captured (v1 files report stop-world).
    pub kind: CkptKind,
    /// Path of the generation file.
    pub path: PathBuf,
    /// `Some(error)` when the file failed integrity or structural checks.
    pub error: Option<String>,
}

impl GenerationInfo {
    /// True when the generation passed all integrity checks.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// A directory of numbered checkpoint generations.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
}

impl CkptStore {
    /// Open (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CkptError::Io(format!("create {dir:?}: {e}")))?;
        Ok(CkptStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("gen-{gen:06}.{EXT}"))
    }

    /// Write generation `gen` atomically as a stop-world cut. Returns the
    /// final path.
    pub fn save(
        &self,
        gen: u64,
        t_ns: u64,
        iters: &[u64],
        payload: &[u8],
    ) -> Result<PathBuf, CkptError> {
        self.save_kind(gen, t_ns, iters, payload, CkptKind::StopWorld)
    }

    /// Write generation `gen` atomically with an explicit capture kind.
    /// The temp file is flushed, renamed into place, and the parent
    /// directory is fsynced so the rename itself is durable — without the
    /// directory sync a host crash can forget the rename and resurrect
    /// the previous (or no) generation even though `save` returned.
    pub fn save_kind(
        &self,
        gen: u64,
        t_ns: u64,
        iters: &[u64],
        payload: &[u8],
        kind: CkptKind,
    ) -> Result<PathBuf, CkptError> {
        // Body = everything the checksum covers.
        let mut body = Enc::new();
        body.put_u64(gen);
        body.put_u64(t_ns);
        body.put_u64(iters.len() as u64);
        for &it in iters {
            body.put_u64(it);
        }
        body.put_bytes(payload);
        body.put_u64(kind.to_tag());
        let body = body.into_bytes();

        let mut head = Enc::new();
        head.put_u32(u32::from_le_bytes(MAGIC));
        head.put_u32(CKPT_VERSION);
        head.put_u64(fnv1a(&body));
        let mut file = head.into_bytes();
        file.extend_from_slice(&body);

        let tmp = self.dir.join(format!(".gen-{gen:06}.{EXT}.tmp"));
        let path = self.path_of(gen);
        fs::write(&tmp, &file).map_err(|e| CkptError::Io(format!("write {tmp:?}: {e}")))?;
        fs::rename(&tmp, &path).map_err(|e| CkptError::Io(format!("rename to {path:?}: {e}")))?;
        if let Err(e) = fs::File::open(&self.dir).and_then(|d| d.sync_all()) {
            // Some filesystems cannot fsync a directory handle; that only
            // weakens durability, it does not invalidate the write.
            if e.kind() != std::io::ErrorKind::Unsupported {
                return Err(CkptError::Io(format!("fsync {:?}: {e}", self.dir)));
            }
        }
        Ok(path)
    }

    /// Parse and verify one generation file, returning its metadata and
    /// payload.
    pub fn load_path(path: &Path) -> Result<(GenerationInfo, Vec<u8>), CkptError> {
        let data = fs::read(path).map_err(|e| CkptError::Io(format!("read {path:?}: {e}")))?;
        let mut dec = Dec::new(&data);
        let magic = dec.u32()?;
        if magic != u32::from_le_bytes(MAGIC) {
            return Err(CkptError::BadMagic);
        }
        let version = dec.u32()?;
        if !(MIN_CKPT_VERSION..=CKPT_VERSION).contains(&version) {
            return Err(CkptError::BadVersion {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        let stored = dec.u64()?;
        let body = &data[16..];
        let computed = fnv1a(body);
        if computed != stored {
            return Err(CkptError::Checksum { stored, computed });
        }
        let gen = dec.u64()?;
        let t_ns = dec.u64()?;
        let n = dec.u64()?;
        let mut iters = Vec::with_capacity((n as usize).min(1 << 16));
        for _ in 0..n {
            iters.push(dec.u64()?);
        }
        let payload = dec.bytes()?.to_vec();
        // v1 files end at the payload; v2 appends the capture-kind tag.
        let kind = if version >= 2 {
            CkptKind::from_tag(dec.u64()?)?
        } else {
            CkptKind::StopWorld
        };
        dec.finish()?;
        Ok((
            GenerationInfo {
                gen,
                t_ns,
                iters,
                bytes: data.len() as u64,
                checksum: stored,
                kind,
                path: path.to_path_buf(),
                error: None,
            },
            payload,
        ))
    }

    /// All generations in the directory, sorted by generation number.
    /// Corrupt files are included with `error` set (and `gen` parsed from
    /// the filename) so tooling can show them instead of hiding them.
    pub fn generations(&self) -> Result<Vec<GenerationInfo>, CkptError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| CkptError::Io(format!("list {:?}: {e}", self.dir)))?;
        for entry in entries {
            let entry = entry.map_err(|e| CkptError::Io(e.to_string()))?;
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name
                .strip_prefix("gen-")
                .and_then(|s| s.strip_suffix(&format!(".{EXT}")))
            else {
                continue;
            };
            let file_gen: u64 = match stem.parse() {
                Ok(g) => g,
                Err(_) => continue,
            };
            match Self::load_path(&path) {
                Ok((info, _)) => out.push(info),
                Err(e) => out.push(GenerationInfo {
                    gen: file_gen,
                    t_ns: 0,
                    iters: Vec::new(),
                    bytes: fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                    checksum: 0,
                    kind: CkptKind::StopWorld,
                    path,
                    error: Some(e.to_string()),
                }),
            }
        }
        out.sort_by_key(|g| g.gen);
        Ok(out)
    }

    /// Load the newest intact generation, falling back across corrupt ones
    /// (each skip is reported on stderr). `None` when the directory holds
    /// no generation files at all.
    pub fn load_latest(&self) -> Result<Option<(GenerationInfo, Vec<u8>)>, CkptError> {
        let mut gens = self.generations()?;
        gens.sort_by_key(|g| std::cmp::Reverse(g.gen));
        if gens.is_empty() {
            return Ok(None);
        }
        for info in &gens {
            if let Some(err) = &info.error {
                eprintln!(
                    "warning: skipping corrupt checkpoint generation {} ({}): {err}",
                    info.gen,
                    info.path.display()
                );
                continue;
            }
            let (info, payload) = Self::load_path(&info.path)?;
            return Ok(Some((info, payload)));
        }
        // Files exist but none is intact: that is an error the caller must
        // see, not a silent cold start.
        Err(CkptError::Malformed(format!(
            "all {} checkpoint generation(s) in {:?} are corrupt",
            gens.len(),
            self.dir
        )))
    }

    /// Delete every generation file (a non-resume run starting fresh).
    pub fn clear(&self) -> Result<(), CkptError> {
        for info in self.generations()? {
            fs::remove_file(&info.path)
                .map_err(|e| CkptError::Io(format!("remove {:?}: {e}", info.path)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nscc-ckpt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = CkptStore::open(&dir).unwrap();
        store.save(1, 500, &[10, 20], b"alpha").unwrap();
        store.save(2, 900, &[30, 40], b"beta").unwrap();

        let gens = store.generations().unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].gen, 1);
        assert_eq!(gens[1].iters, vec![30, 40]);
        assert!(gens.iter().all(|g| g.ok()));

        let (info, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!(info.gen, 2);
        assert_eq!(info.t_ns, 900);
        assert_eq!(payload, b"beta");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_has_no_latest() {
        let dir = tmpdir("empty");
        let store = CkptStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        let store = CkptStore::open(&dir).unwrap();
        store.save(1, 100, &[5], b"good").unwrap();
        let p2 = store.save(2, 200, &[6], b"newer").unwrap();
        // Flip a payload bit in generation 2.
        let mut data = fs::read(&p2).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        fs::write(&p2, &data).unwrap();

        let gens = store.generations().unwrap();
        assert!(gens[0].ok());
        assert!(!gens[1].ok(), "corrupt generation must be flagged");
        assert!(gens[1].error.as_ref().unwrap().contains("checksum"));

        let (info, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!(info.gen, 1, "fallback to the previous generation");
        assert_eq!(payload, b"good");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_is_an_error_not_a_cold_start() {
        let dir = tmpdir("allbad");
        let store = CkptStore::open(&dir).unwrap();
        let p = store.save(1, 100, &[], b"x").unwrap();
        fs::write(&p, b"NSCKgarbage").unwrap();
        assert!(store.load_latest().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_and_magic_are_checked() {
        let dir = tmpdir("version");
        let store = CkptStore::open(&dir).unwrap();
        let p = store.save(1, 0, &[], b"v").unwrap();
        let mut data = fs::read(&p).unwrap();
        data[4] ^= 0xFF; // version field
        fs::write(&p, &data).unwrap();
        assert!(matches!(
            CkptStore::load_path(&p),
            Err(CkptError::BadVersion { .. })
        ));
        let mut data = fs::read(&p).unwrap();
        data[0] = b'X';
        fs::write(&p, &data).unwrap();
        assert!(matches!(CkptStore::load_path(&p), Err(CkptError::BadMagic)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_tag_roundtrips_and_defaults_to_stop_world() {
        let dir = tmpdir("kind");
        let store = CkptStore::open(&dir).unwrap();
        store.save(1, 10, &[1], b"sw").unwrap();
        store
            .save_kind(2, 20, &[2], b"cc", CkptKind::ConsistentCut)
            .unwrap();
        let gens = store.generations().unwrap();
        assert_eq!(gens[0].kind, CkptKind::StopWorld);
        assert_eq!(gens[0].kind.label(), "stop-world");
        assert_eq!(gens[1].kind, CkptKind::ConsistentCut);
        assert_eq!(gens[1].kind.label(), "consistent-cut");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_files_without_a_kind_tag_still_load() {
        let dir = tmpdir("v1compat");
        let store = CkptStore::open(&dir).unwrap();
        // Hand-build a v1 file: same layout, no trailing kind tag.
        let mut body = Enc::new();
        body.put_u64(3); // gen
        body.put_u64(77); // t_ns
        body.put_u64(1); // iters len
        body.put_u64(9);
        body.put_bytes(b"old");
        let body = body.into_bytes();
        let mut head = Enc::new();
        head.put_u32(u32::from_le_bytes(MAGIC));
        head.put_u32(1);
        head.put_u64(fnv1a(&body));
        let mut file = head.into_bytes();
        file.extend_from_slice(&body);
        fs::write(dir.join("gen-000003.nsck"), &file).unwrap();

        let (info, payload) = store.load_latest().unwrap().unwrap();
        assert_eq!(info.gen, 3);
        assert_eq!(info.kind, CkptKind::StopWorld, "v1 loads as stop-world");
        assert_eq!(payload, b"old");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clear_removes_generations() {
        let dir = tmpdir("clear");
        let store = CkptStore::open(&dir).unwrap();
        store.save(1, 0, &[], b"a").unwrap();
        store.save(2, 0, &[], b"b").unwrap();
        store.clear().unwrap();
        assert!(store.generations().unwrap().is_empty());
        assert!(store.load_latest().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
