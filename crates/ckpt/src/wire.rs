//! The stable binary codec checkpoints are written in.
//!
//! Everything is little-endian and length-prefixed; floats travel as their
//! IEEE-754 bit patterns so `decode(encode(x)) == x` exactly (including
//! NaN payloads), which is what makes a resumed run byte-identical to an
//! uninterrupted one. The format carries no type tags — readers must
//! decode exactly what writers encoded, in the same order — so layout
//! changes must bump [`crate::CKPT_VERSION`].

use crate::CkptError;

/// FNV-1a 64-bit hash, the integrity checksum of checkpoint frames.
/// Not cryptographic — it guards against truncation and bit rot, not
/// adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// An append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The bytes encoded so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (lossless roundtrip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A cursor decoding the format written by [`Enc`]. Every read is
/// bounds-checked and returns [`CkptError::Truncated`] rather than
/// panicking, so corrupt checkpoints surface as structured errors.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, CkptError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Malformed(format!("bool byte {b}"))),
        }
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CkptError::Truncated {
                needed: n as usize,
                have: self.remaining(),
            });
        }
        self.take(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, CkptError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| CkptError::Malformed(format!("utf-8: {e}")))
    }

    /// Require that every byte was consumed (trailing garbage is how a
    /// mismatched schema most often shows up).
    pub fn finish(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Malformed(format!(
                "{} trailing byte(s) after decode",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(-0.1);
        e.put_bool(true);
        e.put_str("migrants");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f64().unwrap(), -0.1);
        assert!(d.bool().unwrap());
        assert_eq!(d.str_().unwrap(), "migrants");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn f64_bit_patterns_survive() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1e-300, f64::MIN] {
            let mut e = Enc::new();
            e.put_f64(v);
            let b = e.into_bytes();
            let got = Dec::new(&b).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_a_structured_error() {
        let mut e = Enc::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        assert!(matches!(d.u64(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_alloc() {
        let mut e = Enc::new();
        e.put_u64(u64::MAX); // absurd length prefix
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.bytes(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn trailing_garbage_fails_finish() {
        let mut e = Enc::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
    }
}
