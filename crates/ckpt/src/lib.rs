//! # nscc-ckpt — deterministic, versioned checkpoints
//!
//! The recovery half of the NSCC story. `Global_Read`'s age bound means a
//! node restored from a snapshot ≤ `age` iterations old is
//! indistinguishable from a legitimately stale peer, so checkpoint/restore
//! is cheap *by construction*: no coordinated global snapshot, no replay —
//! just roll one node back to its last checkpoint and let bounded
//! staleness absorb the seam.
//!
//! This crate is the substrate every layer shares:
//!
//! * [`wire`] — a stable little-endian binary codec ([`Enc`]/[`Dec`])
//!   whose `f64` encoding is the IEEE bit pattern, so restored state is
//!   bit-identical to what was saved;
//! * [`Snapshot`] — the encode/decode trait ga/bayes/dsm/sim/obs types
//!   implement for their own state;
//! * [`seal`]/[`unseal`] — integrity framing (length + FNV-1a checksum)
//!   so a corrupt checkpoint is rejected with a structured [`CkptError`]
//!   instead of resurrecting garbage state;
//! * [`store`] — a directory of numbered checkpoint generations with
//!   atomic writes and corrupt-generation fallback.
//!
//! Deliberately std-only: the analyzer (equally dependency-free) lists and
//! verifies checkpoint directories without linking the simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cut;
pub mod store;
pub mod wire;

use std::fmt;

pub use cut::{load_latest_cut, save_cut, CutFrame, GlobalCut};
pub use store::{CkptKind, CkptStore, GenerationInfo};
pub use wire::{fnv1a, Dec, Enc};

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"NSCK";

/// Version stamp of the checkpoint layout this build writes. Bump on any
/// encoding change; readers reject anything outside
/// [`MIN_CKPT_VERSION`]`..=`[`CKPT_VERSION`] rather than misinterpret
/// bytes. v2 appended a trailing generation-kind tag (stop-world vs.
/// consistent-cut); v1 files load as stop-world.
pub const CKPT_VERSION: u32 = 2;

/// Oldest checkpoint layout this build still reads.
pub const MIN_CKPT_VERSION: u32 = 1;

/// Structured checkpoint failure. Corrupt or truncated data is always one
/// of these — never a panic, never silently-wrong state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The layout version is not the one this build writes.
    BadVersion {
        /// Version found in the data.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The data ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The stored checksum does not match the content.
    Checksum {
        /// Checksum recorded in the frame.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Structurally invalid content (bad bool byte, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::BadVersion { found, expected } => {
                write!(f, "checkpoint version {found}, expected {expected}")
            }
            CkptError::Truncated { needed, have } => {
                write!(
                    f,
                    "checkpoint truncated: needed {needed} byte(s), have {have}"
                )
            }
            CkptError::Checksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CkptError::Malformed(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// State that can be checkpointed: a stable binary encoding plus a
/// bounds-checked decode. The contract is exact roundtrip —
/// `decode(encode(x)) == x` — which the restore seams (byte-identical
/// resumed reports, deterministic warm restarts) rely on.
pub trait Snapshot: Sized {
    /// Append this value's encoding to `enc`.
    fn encode(&self, enc: &mut Enc);
    /// Decode one value from `dec`, consuming exactly what `encode` wrote.
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError>;
}

impl Snapshot for u8 {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u8(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.u8()
    }
}

impl Snapshot for u32 {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.u32()
    }
}

impl Snapshot for u64 {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.u64()
    }
}

impl Snapshot for usize {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u64(*self as u64);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let v = dec.u64()?;
        usize::try_from(v).map_err(|_| CkptError::Malformed(format!("usize overflow: {v}")))
    }
}

impl Snapshot for f64 {
    fn encode(&self, enc: &mut Enc) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.f64()
    }
}

impl Snapshot for bool {
    fn encode(&self, enc: &mut Enc) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.bool()
    }
}

impl Snapshot for String {
    fn encode(&self, enc: &mut Enc) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        dec.str_()
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        let n = dec.u64()?;
        // Cap the pre-allocation by what could possibly fit: corrupt
        // length prefixes must not become gigabyte allocations.
        let mut out = Vec::with_capacity((n as usize).min(dec.remaining().max(16)));
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, enc: &mut Enc) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        match dec.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            b => Err(CkptError::Malformed(format!("Option tag {b}"))),
        }
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, enc: &mut Enc) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

/// Encode one value to raw bytes (no framing; pair with [`from_bytes`]).
pub fn to_bytes<T: Snapshot>(v: &T) -> Vec<u8> {
    let mut enc = Enc::new();
    v.encode(&mut enc);
    enc.into_bytes()
}

/// Decode one value from raw bytes, requiring full consumption.
pub fn from_bytes<T: Snapshot>(bytes: &[u8]) -> Result<T, CkptError> {
    let mut dec = Dec::new(bytes);
    let v = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(v)
}

/// Wrap a payload in the integrity frame: `len | fnv1a | payload`. This is
/// what in-memory checkpoints (island snapshots) use; [`CkptStore`] adds a
/// file header on top for on-disk generations.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_u64(payload.len() as u64);
    enc.put_u64(fnv1a(payload));
    let mut out = enc.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Verify and strip the [`seal`] frame, returning the payload.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], CkptError> {
    let mut dec = Dec::new(bytes);
    let len = dec.u64()? as usize;
    let stored = dec.u64()?;
    if dec.remaining() != len {
        return Err(CkptError::Truncated {
            needed: len,
            have: dec.remaining(),
        });
    }
    let payload = &bytes[16..];
    let computed = fnv1a(payload);
    if computed != stored {
        return Err(CkptError::Checksum { stored, computed });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_roundtrip() {
        let v: Vec<(u64, Option<String>, f64)> = vec![
            (1, Some("a".into()), 0.5),
            (2, None, f64::NAN),
            (u64::MAX, Some(String::new()), -0.0),
        ];
        let bytes = to_bytes(&v);
        let back: Vec<(u64, Option<String>, f64)> = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], (1, Some("a".into()), 0.5));
        assert!(back[1].1.is_none() && back[1].2.is_nan());
        assert_eq!(back[2].2.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn seal_roundtrip_and_rejection() {
        let payload = b"island state".to_vec();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed).unwrap(), payload.as_slice());

        // One flipped payload bit => checksum error.
        let mut bad = sealed.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert!(matches!(unseal(&bad), Err(CkptError::Checksum { .. })));

        // Truncation => truncation error, not a short read.
        assert!(matches!(
            unseal(&sealed[..sealed.len() - 1]),
            Err(CkptError::Truncated { .. })
        ));
    }

    #[test]
    fn from_bytes_rejects_trailing_bytes() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn errors_display() {
        let e = CkptError::Checksum {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        assert!(CkptError::BadMagic.to_string().contains("magic"));
    }
}
