//! The consistent-cut generation format: what a Chandy–Lamport snapshot
//! of a whole world looks like on disk.
//!
//! A [`GlobalCut`] is one marker-protocol snapshot: per rank, the sealed
//! local state captured on first marker plus the in-flight channel
//! messages recorded between that capture and the arrival of the closing
//! markers. Cuts are written to a [`CkptStore`] as
//! [`CkptKind::ConsistentCut`] generations (generation number = cut id),
//! next to — and distinguishable from — PR 4's stop-world generations.
//!
//! [`load_latest_cut`] is the warm-restore entry point: it walks the
//! store newest-first, skipping corrupt generations *and* stop-world
//! generations, so a damaged newest cut degrades recovery by one cadence
//! interval instead of failing the run.

use crate::store::{CkptKind, CkptStore};
use crate::wire::{Dec, Enc};
use crate::{from_bytes, to_bytes, CkptError, Snapshot};

/// One rank's contribution to a consistent cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutFrame {
    /// The rank this frame belongs to.
    pub rank: u32,
    /// The producer's iteration (island generation) at local capture.
    pub gen: u64,
    /// Sealed local state (the producer's own checkpoint encoding; for GA
    /// islands, a sealed `IslandCkpt`).
    pub state: Vec<u8>,
    /// Recorded in-flight channel messages: updates that arrived between
    /// this rank's local capture and the closing marker of each incoming
    /// channel, in arrival order (producer-defined encoding).
    pub inflight: Vec<u8>,
}

impl Snapshot for CutFrame {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u32(self.rank);
        enc.put_u64(self.gen);
        self.state.encode(enc);
        self.inflight.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(CutFrame {
            rank: dec.u32()?,
            gen: dec.u64()?,
            state: Vec::<u8>::decode(dec)?,
            inflight: Vec::<u8>::decode(dec)?,
        })
    }
}

/// One completed marker-protocol snapshot: every rank's [`CutFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalCut {
    /// The cut id (markers carried it; doubles as the generation number).
    pub id: u64,
    /// Per-rank frames, sorted by rank.
    pub frames: Vec<CutFrame>,
}

impl GlobalCut {
    /// The frame for `rank`, if the cut has one.
    pub fn frame(&self, rank: usize) -> Option<&CutFrame> {
        self.frames.iter().find(|f| f.rank as usize == rank)
    }

    /// The per-rank iteration vector (for the generation header).
    pub fn iters(&self) -> Vec<u64> {
        self.frames.iter().map(|f| f.gen).collect()
    }
}

impl Snapshot for GlobalCut {
    fn encode(&self, enc: &mut Enc) {
        enc.put_u64(self.id);
        self.frames.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(GlobalCut {
            id: dec.u64()?,
            frames: Vec::<CutFrame>::decode(dec)?,
        })
    }
}

/// Persist a completed cut as a consistent-cut generation (generation
/// number = cut id). Returns the path written.
pub fn save_cut(
    store: &CkptStore,
    cut: &GlobalCut,
    t_ns: u64,
) -> Result<std::path::PathBuf, CkptError> {
    store.save_kind(
        cut.id,
        t_ns,
        &cut.iters(),
        &to_bytes(cut),
        CkptKind::ConsistentCut,
    )
}

/// Load the newest intact consistent cut from `store`, skipping corrupt
/// generations (each skip is reported on stderr, as `load_latest` does)
/// and stop-world generations. `None` when the store holds no loadable
/// cut at all — the caller falls back to its stop-world path.
pub fn load_latest_cut(store: &CkptStore) -> Result<Option<GlobalCut>, CkptError> {
    let mut gens = store.generations()?;
    gens.sort_by_key(|g| std::cmp::Reverse(g.gen));
    for info in &gens {
        if let Some(err) = &info.error {
            eprintln!(
                "warning: skipping corrupt checkpoint generation {} ({}): {err}",
                info.gen,
                info.path.display()
            );
            continue;
        }
        if info.kind != CkptKind::ConsistentCut {
            continue;
        }
        let (_, payload) = CkptStore::load_path(&info.path)?;
        match from_bytes::<GlobalCut>(&payload) {
            Ok(cut) => return Ok(Some(cut)),
            Err(e) => {
                // Checksum passed but the cut body does not parse — treat
                // like any other corrupt generation and keep falling back.
                eprintln!(
                    "warning: skipping undecodable consistent cut {} ({}): {e}",
                    info.gen,
                    info.path.display()
                );
                continue;
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nscc-cut-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn cut(id: u64, ranks: u32) -> GlobalCut {
        GlobalCut {
            id,
            frames: (0..ranks)
                .map(|r| CutFrame {
                    rank: r,
                    gen: id * 10 + r as u64,
                    state: vec![r as u8; 4],
                    inflight: vec![0xAA, r as u8],
                })
                .collect(),
        }
    }

    #[test]
    fn cut_roundtrips_through_the_store() {
        let dir = tmpdir("roundtrip");
        let store = CkptStore::open(&dir).unwrap();
        let c = cut(5, 3);
        save_cut(&store, &c, 1234).unwrap();
        let back = load_latest_cut(&store).unwrap().unwrap();
        assert_eq!(back, c);
        assert_eq!(back.frame(2).unwrap().gen, 52);
        assert_eq!(back.iters(), vec![50, 51, 52]);
        let info = &store.generations().unwrap()[0];
        assert_eq!(info.kind, CkptKind::ConsistentCut);
        assert_eq!(info.iters, vec![50, 51, 52]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_restore_skips_a_corrupt_newest_cut() {
        let dir = tmpdir("fallback");
        let store = CkptStore::open(&dir).unwrap();
        save_cut(&store, &cut(1, 2), 100).unwrap();
        let newest = save_cut(&store, &cut(2, 2), 200).unwrap();
        // Flip a payload bit in the newest generation.
        let mut data = fs::read(&newest).unwrap();
        let last = data.len() - 9; // inside the payload, before the kind tag
        data[last] ^= 0xFF;
        fs::write(&newest, &data).unwrap();

        let back = load_latest_cut(&store).unwrap().unwrap();
        assert_eq!(back.id, 1, "warm restore must fall back, not fail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stop_world_generations_are_not_cuts() {
        let dir = tmpdir("mixed");
        let store = CkptStore::open(&dir).unwrap();
        store.save(7, 700, &[1, 2], b"stop-world frame").unwrap();
        assert!(load_latest_cut(&store).unwrap().is_none());
        // But a cut below a newer stop-world generation is still found.
        save_cut(&store, &cut(3, 2), 300).unwrap();
        store.save(9, 900, &[4, 5], b"newer stop-world").unwrap();
        assert_eq!(load_latest_cut(&store).unwrap().unwrap().id, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_cuts_corrupt_means_none_not_error() {
        let dir = tmpdir("allbad");
        let store = CkptStore::open(&dir).unwrap();
        let p = save_cut(&store, &cut(1, 1), 10).unwrap();
        let mut data = fs::read(&p).unwrap();
        data[20] ^= 0x55;
        fs::write(&p, &data).unwrap();
        assert!(
            load_latest_cut(&store).unwrap().is_none(),
            "caller falls back to the stop-world path"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
