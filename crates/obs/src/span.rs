//! Execution spans: who ran when, who blocked on what, which phase.
//!
//! Absorbed from `nscc-sim`'s old `trace` module, with two changes: times
//! and pids are plain integers so any layer can record without depending on
//! the simulator, and labels are [`Label`]s (`Cow<'static, str>`) so the
//! DSM and application layers can emit dynamic per-location or per-island
//! labels without leaking.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use crate::Label;

/// What a traced span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SpanKind {
    /// Virtual CPU time (an `advance`).
    Compute,
    /// Blocked waiting for a message or condition.
    Blocked,
    /// Application-defined phase (e.g. "barrier", a blocked `Global_Read`).
    Phase,
}

/// One traced interval of a process's life. Times are virtual nanoseconds;
/// `pid` is the scheduler pid for [`SpanKind::Compute`]/[`SpanKind::Blocked`]
/// spans and the DSM rank for [`SpanKind::Phase`] spans.
#[derive(Debug, Clone, Serialize)]
pub struct Span {
    /// The process (or rank, for phase spans).
    pub pid: u32,
    /// Start of the interval (virtual ns).
    pub start_ns: u64,
    /// End of the interval (virtual ns).
    pub end_ns: u64,
    /// What the process was doing.
    pub kind: SpanKind,
    /// Free-form label.
    pub label: Label,
}

/// Spans kept before the sink starts counting drops instead.
const DEFAULT_SPAN_CAPACITY: usize = 1 << 20;

struct Inner {
    spans: Vec<Span>,
    dropped: u64,
    capacity: usize,
}

/// A shareable, bounded span sink.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl Trace {
    /// An empty trace with the default capacity.
    pub fn new() -> Self {
        Trace::default()
    }

    /// An empty trace that keeps at most `capacity` spans; further records
    /// only bump the drop counter (totals stay exact for kept spans only).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            inner: Arc::new(Mutex::new(Inner {
                spans: Vec::new(),
                dropped: 0,
                capacity,
            })),
        }
    }

    /// Record a span.
    pub fn record(
        &self,
        pid: u32,
        start_ns: u64,
        end_ns: u64,
        kind: SpanKind,
        label: impl Into<Label>,
    ) {
        debug_assert!(end_ns >= start_ns, "span ends before it starts");
        let mut inner = self.inner.lock();
        if inner.spans.len() >= inner.capacity {
            inner.dropped += 1;
            return;
        }
        inner.spans.push(Span {
            pid,
            start_ns,
            end_ns,
            kind,
            label: label.into(),
        });
    }

    /// Number of spans recorded (and kept).
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// All spans, sorted by start time (clones; call once at the end).
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.inner.lock().spans.clone();
        v.sort_by_key(|s| (s.start_ns, s.pid));
        v
    }

    /// Total time per kind for one process.
    pub fn totals(&self, pid: u32) -> TraceTotals {
        let inner = self.inner.lock();
        let mut t = TraceTotals::default();
        for s in inner.spans.iter().filter(|s| s.pid == pid) {
            let d = s.end_ns.saturating_sub(s.start_ns);
            match s.kind {
                SpanKind::Compute => t.compute_ns += d,
                SpanKind::Blocked => t.blocked_ns += d,
                SpanKind::Phase => t.phase_ns += d,
            }
        }
        t
    }

    /// A compact utilization summary line per process (for examples).
    pub fn summary(&self, pids: &[u32]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &pid in pids {
            let t = self.totals(pid);
            let total = t.compute_ns + t.blocked_ns + t.phase_ns;
            let util = if total > 0 {
                t.compute_ns as f64 / total as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  pid {:>3}: compute {:>12}ns blocked {:>12}ns phase {:>12}ns (util {:>5.1}%)",
                pid, t.compute_ns, t.blocked_ns, t.phase_ns, util
            );
        }
        out
    }
}

/// Aggregated span durations for one process, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TraceTotals {
    /// Total compute time.
    pub compute_ns: u64,
    /// Total blocked time.
    pub blocked_ns: u64,
    /// Total phase time.
    pub phase_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn records_and_totals() {
        let tr = Trace::new();
        tr.record(0, 0, 5 * MS, SpanKind::Compute, "gen");
        tr.record(0, 5 * MS, 8 * MS, SpanKind::Blocked, "read");
        tr.record(1, 0, 2 * MS, SpanKind::Compute, "gen");
        assert_eq!(tr.len(), 3);
        let p0 = tr.totals(0);
        assert_eq!(p0.compute_ns, 5 * MS);
        assert_eq!(p0.blocked_ns, 3 * MS);
        assert_eq!(tr.totals(1).compute_ns, 2 * MS);
    }

    #[test]
    fn spans_sorted_by_start() {
        let tr = Trace::new();
        tr.record(0, 7 * MS, 9 * MS, SpanKind::Phase, "b");
        tr.record(1, MS, 2 * MS, SpanKind::Phase, "a");
        let spans = tr.spans();
        assert_eq!(spans[0].label, "a");
        assert_eq!(spans[1].label, "b");
    }

    #[test]
    fn dynamic_labels_do_not_leak() {
        let tr = Trace::new();
        let loc = 3;
        tr.record(0, 0, MS, SpanKind::Phase, format!("Global_Read:best{loc}"));
        assert_eq!(tr.spans()[0].label, "Global_Read:best3");
    }

    #[test]
    fn capacity_drops_are_counted() {
        let tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(0, i * MS, (i + 1) * MS, SpanKind::Compute, "x");
        }
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 3);
    }

    #[test]
    fn summary_mentions_every_pid() {
        let tr = Trace::new();
        tr.record(2, 0, 4 * MS, SpanKind::Compute, "x");
        let s = tr.summary(&[2]);
        assert!(s.contains("pid   2"));
        assert!(s.contains("util 100.0%"));
    }
}
