//! Std-only JSON helpers: string escaping, float formatting, and a strict
//! recursive-descent validator (RFC 8259 subset: UTF-8 input, no
//! extensions). The validator exists so tests can assert that exported
//! reports and traces are well-formed without a JSON dependency.

use std::fmt::Write as _;

/// Append `s` as a quoted, escaped JSON string.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Maximum nesting depth the validator accepts.
const MAX_DEPTH: usize = 256;

/// Check that `s` is one complete, well-formed JSON value.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {}
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        let mut any = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            any = true;
        }
        if any {
            Ok(())
        } else {
            Err(self.err("expected digits"))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{01}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
    }

    #[test]
    fn float_formatting() {
        let mut out = String::new();
        write_f64(&mut out, 1.5);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "1.5 null");
    }

    #[test]
    fn accepts_valid_json() {
        for s in [
            "null",
            "true",
            "  [1, 2.5, -3e-2, \"x\\u00e9\", {}, [] ]  ",
            "{\"a\": {\"b\": [null, false]}, \"c\": \"\"}",
            "-0.5",
            "\"\\\\\"",
        ] {
            assert!(
                validate(s).is_ok(),
                "should accept {s:?}: {:?}",
                validate(s)
            );
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a: 1}",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "\"bad\\escape\"",
            "[1] trailing",
            "NaN",
        ] {
            assert!(validate(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn escaped_strings_validate() {
        let mut out = String::new();
        escape_into(&mut out, "tab\t quote\" slash\\ unicode❄ ctl\u{02}");
        assert!(validate(&out).is_ok());
    }
}
