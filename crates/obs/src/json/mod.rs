//! Minimal JSON support: a serde [`Serializer`](serde::Serializer) that
//! renders any `Serialize` type to compact JSON, and a strict validator
//! used by tests. The workspace deliberately carries no `serde_json`; this
//! module follows the same pattern as `nscc-msg`'s byte-counting
//! serializer and supports exactly what run reports and trace exports need.

mod check;
mod ser;

pub use check::validate;
pub use ser::{to_json, JsonError};
