//! The serde → JSON renderer behind [`to_json`].
//!
//! Output is compact (no whitespace). Struct fields and map entries become
//! object members; enums use serde's externally-tagged convention
//! (`"Variant"` for unit variants, `{"Variant": …}` otherwise); non-finite
//! floats become `null`; map keys must be strings, integers or chars.

use std::fmt::{self, Write as _};

use serde::ser::{self, Impossible, Serialize};

use super::check::{escape_into, write_f64};

/// Render any `Serialize` value as compact JSON.
///
/// # Panics
///
/// Panics if the value contains a map whose keys are not strings,
/// integers or chars (no such type exists in this workspace's reports).
pub fn to_json<T: Serialize>(value: &T) -> String {
    let mut ser = JsonSer { out: String::new() };
    value
        .serialize(&mut ser)
        .expect("JSON serialization failed");
    ser.out
}

/// Error type for JSON rendering (only map-key misuse can occur).
#[derive(Debug)]
pub struct JsonError(String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

struct JsonSer {
    out: String,
}

/// In-progress sequence/object; `end` carries the closer(s), which is
/// `"]}"`/`"}}"` for externally-tagged variants.
struct Compound<'a> {
    ser: &'a mut JsonSer,
    first: bool,
    end: &'static str,
}

impl Compound<'_> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut JsonSer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<(), JsonError> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<(), JsonError> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<(), JsonError> {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        write_f64(&mut self.out, v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        write_f64(&mut self.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        let mut buf = [0u8; 4];
        escape_into(&mut self.out, v.encode_utf8(&mut buf));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(&mut self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonError> {
        self.out.push('[');
        for (i, b) in v.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{b}");
        }
        self.out.push(']');
        Ok(())
    }
    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        escape_into(&mut self.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            end: "]",
        })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, JsonError> {
        self.serialize_seq(None)
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        self.serialize_seq(None)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            end: "]}",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            end: "}",
        })
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        self.serialize_map(None)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            end: "}}",
        })
    }
}

macro_rules! impl_compound_seq {
    ($($trait:ident),+) => {
        $(
            impl ser::$trait for Compound<'_> {
                type Ok = ();
                type Error = JsonError;
                fn serialize_element<T: Serialize + ?Sized>(
                    &mut self,
                    value: &T,
                ) -> Result<(), JsonError> {
                    self.comma();
                    value.serialize(&mut *self.ser)
                }
                fn end(self) -> Result<(), JsonError> {
                    self.ser.out.push_str(self.end);
                    Ok(())
                }
            }
        )+
    };
}

macro_rules! impl_compound_tuple {
    ($($trait:ident),+) => {
        $(
            impl ser::$trait for Compound<'_> {
                type Ok = ();
                type Error = JsonError;
                fn serialize_field<T: Serialize + ?Sized>(
                    &mut self,
                    value: &T,
                ) -> Result<(), JsonError> {
                    self.comma();
                    value.serialize(&mut *self.ser)
                }
                fn end(self) -> Result<(), JsonError> {
                    self.ser.out.push_str(self.end);
                    Ok(())
                }
            }
        )+
    };
}

macro_rules! impl_compound_struct {
    ($($trait:ident),+) => {
        $(
            impl ser::$trait for Compound<'_> {
                type Ok = ();
                type Error = JsonError;
                fn serialize_field<T: Serialize + ?Sized>(
                    &mut self,
                    key: &'static str,
                    value: &T,
                ) -> Result<(), JsonError> {
                    self.comma();
                    escape_into(&mut self.ser.out, key);
                    self.ser.out.push(':');
                    value.serialize(&mut *self.ser)
                }
                fn end(self) -> Result<(), JsonError> {
                    self.ser.out.push_str(self.end);
                    Ok(())
                }
            }
        )+
    };
}

impl_compound_seq!(SerializeSeq, SerializeTuple);
impl_compound_tuple!(SerializeTupleStruct, SerializeTupleVariant);
impl_compound_struct!(SerializeStruct, SerializeStructVariant);

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        self.comma();
        key.serialize(MapKeySer { ser: self.ser })
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push_str(self.end);
        Ok(())
    }
}

/// JSON object keys must be strings; accept strings, chars and integers
/// (quoted), reject everything else.
struct MapKeySer<'a> {
    ser: &'a mut JsonSer,
}

fn key_error() -> JsonError {
    ser::Error::custom("map keys must be strings, chars or integers")
}

macro_rules! quoted_int_key {
    ($($fn:ident: $ty:ty),+) => {
        $(
            fn $fn(self, v: $ty) -> Result<(), JsonError> {
                let _ = write!(self.ser.out, "\"{v}\"");
                Ok(())
            }
        )+
    };
}

macro_rules! reject_key {
    ($($fn:ident($($arg:ident: $ty:ty),*)),+) => {
        $(
            fn $fn(self, $($arg: $ty),*) -> Result<Self::Ok, JsonError> {
                $(let _ = $arg;)*
                Err(key_error())
            }
        )+
    };
}

impl<'a> ser::Serializer for MapKeySer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Impossible<(), JsonError>;
    type SerializeTuple = Impossible<(), JsonError>;
    type SerializeTupleStruct = Impossible<(), JsonError>;
    type SerializeTupleVariant = Impossible<(), JsonError>;
    type SerializeMap = Impossible<(), JsonError>;
    type SerializeStruct = Impossible<(), JsonError>;
    type SerializeStructVariant = Impossible<(), JsonError>;

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        escape_into(&mut self.ser.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        let mut buf = [0u8; 4];
        escape_into(&mut self.ser.out, v.encode_utf8(&mut buf));
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        escape_into(&mut self.ser.out, variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    quoted_int_key!(
        serialize_i8: i8,
        serialize_i16: i16,
        serialize_i32: i32,
        serialize_i64: i64,
        serialize_u8: u8,
        serialize_u16: u16,
        serialize_u32: u32,
        serialize_u64: u64
    );

    reject_key!(
        serialize_bool(v: bool),
        serialize_f32(v: f32),
        serialize_f64(v: f64),
        serialize_bytes(v: &[u8]),
        serialize_none(),
        serialize_unit(),
        serialize_unit_struct(name: &'static str)
    );

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, JsonError> {
        Err(key_error())
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, JsonError> {
        Err(key_error())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, _value: &T) -> Result<(), JsonError> {
        Err(key_error())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _value: &T,
    ) -> Result<(), JsonError> {
        Err(key_error())
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, JsonError> {
        Err(key_error())
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, JsonError> {
        Err(key_error())
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, JsonError> {
        Err(key_error())
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, JsonError> {
        Err(key_error())
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, JsonError> {
        Err(key_error())
    }
}

#[cfg(test)]
mod tests {
    use super::super::validate;
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[test]
    fn primitives() {
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-7i32), "-7");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::INFINITY), "null");
        assert_eq!(to_json(&"a\"b"), "\"a\\\"b\"");
        assert_eq!(to_json(&Option::<u32>::None), "null");
        assert_eq!(to_json(&Some(3u32)), "3");
        assert_eq!(to_json(&()), "null");
    }

    #[test]
    fn sequences_and_tuples() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&Vec::<u32>::new()), "[]");
        assert_eq!(to_json(&(1u8, "x")), "[1,\"x\"]");
    }

    #[test]
    fn structs_maps_and_enums() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: Vec<bool>,
        }
        assert_eq!(
            to_json(&S {
                a: 1,
                b: vec![true]
            }),
            "{\"a\":1,\"b\":[true]}"
        );

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 2.5f64);
        assert_eq!(to_json(&m), "{\"k\":2.5}");

        let mut by_id = BTreeMap::new();
        by_id.insert(3u32, "x");
        assert_eq!(to_json(&by_id), "{\"3\":\"x\"}");

        #[derive(Serialize)]
        enum E {
            Unit,
            New(u32),
            Struct { x: u8 },
        }
        assert_eq!(to_json(&E::Unit), "\"Unit\"");
        assert_eq!(to_json(&E::New(5)), "{\"New\":5}");
        assert_eq!(to_json(&E::Struct { x: 1 }), "{\"Struct\":{\"x\":1}}");
    }

    #[test]
    fn output_always_validates() {
        #[derive(Serialize)]
        struct Nested {
            name: String,
            items: Vec<(u64, Option<f64>)>,
            tags: BTreeMap<String, Vec<i32>>,
        }
        let mut tags = BTreeMap::new();
        tags.insert("weird \"key\"\n".to_string(), vec![-1, 0, 1]);
        let v = Nested {
            name: "line1\nline2\t\"q\"".to_string(),
            items: vec![(u64::MAX, None), (0, Some(0.125))],
            tags,
        };
        let s = to_json(&v);
        validate(&s).unwrap();
    }
}
