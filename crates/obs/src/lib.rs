//! Unified observability layer for the NSCC workspace.
//!
//! Every runtime layer (simulation scheduler, network, message passing, DSM,
//! application runners) accepts an optional [`Hub`] — a cheap, cloneable,
//! thread-safe sink for structured [`ObsEvent`]s, execution [`Span`]s, and
//! warp samples. Detached layers hold `None` and pay exactly one branch per
//! event site; attached layers pay one short critical section.
//!
//! On top of the raw streams the hub maintains derived metrics that the
//! paper's evaluation is built on:
//!
//! - a **staleness histogram** — the delivered-age gap `curr_iter −
//!   delivered_generation` of every `Global_Read`, which the coherence
//!   contract bounds by the requested age;
//! - **block-time** and **network-delay** histograms ([`Histogram`] is
//!   log₂-bucketed, mergeable and serializable);
//! - a **warp timeline** (§4.3 of the paper) sampling the ratio of
//!   inter-arrival to inter-send times per (receiver, sender) pair;
//! - a span [`Trace`] exportable as Chrome trace-event / Perfetto JSON
//!   ([`Hub::perfetto`]).
//!
//! The crate sits at the bottom of the workspace dependency graph: events
//! carry plain integers (times as nanoseconds, processes/ranks/locations as
//! `u32`) so `nscc-sim`, `nscc-net`, `nscc-msg`, `nscc-dsm` and the
//! application crates can all depend on it without cycles. `nscc-core`
//! assembles the hub's summary together with layer stats into a
//! machine-readable `RunReport`.

#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod hub;
pub mod json;
pub mod live;
pub mod perfetto;
pub mod span;
pub mod warp;

/// Version stamp carried by every machine-readable export (run reports,
/// event dumps). Consumers such as `nscc-analyze` refuse files whose
/// version does not match instead of guessing at missing or renamed keys.
/// Bump it whenever the export schema changes shape.
///
/// v3 adds the causal-attribution sections (per-location staleness
/// heatmaps, read-dependency edges, profiler rows, loc/proc name maps);
/// v4 adds the optional `wall` scheduler wall-clock accounting section on
/// run reports and the live telemetry feed ([`live`], versioned
/// separately by [`live::FEED_VERSION`]); v5 adds the optional `audit`
/// invariant-monitor section on run reports, the `SeqAccept` event and
/// the `bound` field on `Restore` (audit inputs), park-duration
/// quantiles on the wall section, and the flight-recorder dump document
/// (`FLIGHT_*.json`); v6 adds the recovery lifecycle meta events
/// (`SnapshotStart`/`SnapshotComplete`/`SupervisorRestart`/
/// `SupervisorGiveUp`, visible only in flight dumps and to the audit
/// tap) and the optional `recovery` supervision section on run reports;
/// v7 adds the `ReadAnatomy` staleness-decomposition meta event and the
/// optional `staleness` per-stage anatomy section on run reports
/// ([`hub::StalenessSummary`]), plus Perfetto flow events linking each
/// traced write to its releasing read. All additions are additive, so v7
/// readers keep accepting v1–v6 documents.
pub const SCHEMA_VERSION: u32 = 7;

/// A span/event label: borrowed for the common static case, owned when a
/// layer needs a dynamic label (per-location, per-island, …).
pub type Label = std::borrow::Cow<'static, str>;

pub use event::ObsEvent;
pub use hist::Histogram;
pub use hub::{
    DepEdge, EventSink, FlowRec, HeatRow, Hub, HubSummary, LinkStages, LocStages, MetricSnapshot,
    ProfileRow, StageSet, StalenessSummary,
};
pub use live::{ProcSched, SchedDelta, SchedSummary, FEED_VERSION};
pub use span::{Span, SpanKind, Trace, TraceTotals};
pub use warp::{WarpPoint, WarpSummary, WarpTimeline};
