//! Structured events emitted by the runtime layers.
//!
//! All fields are plain integers so the event stream is layer-agnostic:
//! times are virtual nanoseconds (`t_ns`), network endpoints are `NodeId`
//! indices, DSM processes are ranks and locations are `LocId` indices.

use serde::Serialize;

use crate::Label;

/// One structured observation. Serialized (externally tagged) into run
/// reports and dumps, e.g. `{"ReadDone":{"t_ns":…,"rank":…,…}}`.
#[derive(Debug, Clone, Serialize)]
pub enum ObsEvent {
    /// A message was submitted to the network. `dst == u32::MAX` marks a
    /// broadcast frame. `queue_ns` is the time the frame waited for the
    /// medium before its service started.
    NetSend {
        /// Submission time.
        t_ns: u64,
        /// Source node.
        src: u32,
        /// Destination node (`u32::MAX` for broadcast).
        dst: u32,
        /// Payload bytes (pre-framing).
        bytes: u64,
        /// Queueing delay ahead of service.
        queue_ns: u64,
    },
    /// A message arrived at its destination.
    NetDeliver {
        /// Arrival time.
        t_ns: u64,
        /// Source node.
        src: u32,
        /// Destination node (`u32::MAX` for broadcast).
        dst: u32,
        /// Total submit→arrival delay.
        delay_ns: u64,
    },
    /// A DSM owner published a new value for a location.
    Write {
        /// Publish time.
        t_ns: u64,
        /// Writing rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Generation (iteration) tag of the value.
        age: u64,
    },
    /// A `Global_Read` found its bound unmet and blocked.
    ReadBlocked {
        /// Block time.
        t_ns: u64,
        /// Reading rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Minimum acceptable generation (`curr_iter − age`).
        required: u64,
    },
    /// A read completed (cache hit, unblocked `Global_Read`, or relaxed
    /// read). The coherence contract is `staleness ≤ requested`.
    ReadDone {
        /// Completion time.
        t_ns: u64,
        /// Reading rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Reader's current iteration.
        curr_iter: u64,
        /// Requested staleness bound (the `age` argument; `u64::MAX` for a
        /// relaxed, never-blocking read).
        requested: u64,
        /// Generation of the delivered value (`u64::MAX` if retired).
        delivered: u64,
        /// Delivered staleness gap, `curr_iter − delivered` (0 when the
        /// value is from the future or retired).
        staleness: u64,
        /// Whether the read blocked.
        blocked: bool,
        /// Time spent blocked (0 for hits).
        block_ns: u64,
    },
    /// An incoming update was older than the cached value and discarded.
    StaleDiscard {
        /// Discard time.
        t_ns: u64,
        /// Receiving rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Generation of the discarded update.
        age: u64,
        /// Generation already cached.
        have: u64,
    },
    /// A rank arrived at a barrier.
    BarrierEnter {
        /// Arrival time.
        t_ns: u64,
        /// Rank.
        rank: u32,
        /// Barrier epoch.
        epoch: u64,
    },
    /// A rank was released from a barrier.
    BarrierExit {
        /// Release time.
        t_ns: u64,
        /// Rank.
        rank: u32,
        /// Barrier epoch.
        epoch: u64,
        /// Enter→release wait.
        wait_ns: u64,
    },
    /// A rollback re-published corrected state — the collapsed
    /// anti-message + replacement pair of the Time-Warp-style bayes path.
    AntiMessage {
        /// Publish time.
        t_ns: u64,
        /// Correcting rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Generation tag of the correction.
        age: u64,
    },
    /// The fault layer dropped a frame (injected loss, crash, partition).
    FaultDrop {
        /// Submission time of the lost frame.
        t_ns: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Why the frame was dropped (`loss`, `node_down`, `partitioned`).
        reason: Label,
    },
    /// The fault layer injected a spurious duplicate delivery.
    FaultDup {
        /// Arrival time of the second copy.
        t_ns: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
    /// The reliable-delivery layer retransmitted an unacknowledged frame.
    Retransmit {
        /// Retransmission time.
        t_ns: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Sequence number of the frame.
        seq: u64,
        /// Retry attempt (1 = first retransmission).
        attempt: u32,
    },
    /// The reliable-delivery layer gave up on a frame after exhausting its
    /// retries.
    RetransmitGiveUp {
        /// Give-up time.
        t_ns: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// Sequence number of the abandoned frame.
        seq: u64,
    },
    /// A `Global_Read` timed out and returned the freshest cached value
    /// instead of its staleness bound (graceful degradation).
    ReadDegraded {
        /// Completion time.
        t_ns: u64,
        /// Reading rank.
        rank: u32,
        /// Location index.
        loc: u32,
        /// Generation the read required.
        required: u64,
        /// Generation actually delivered (stale).
        delivered: u64,
    },
    /// The failure detector declared a peer dead (no heartbeat or update
    /// within the suspicion window).
    WriterSuspected {
        /// Suspicion time.
        t_ns: u64,
        /// Rank doing the suspecting.
        rank: u32,
        /// The suspected peer rank.
        peer: u32,
    },
    /// A node cut a recovery checkpoint of its application + DSM state.
    Checkpoint {
        /// Cut time.
        t_ns: u64,
        /// Checkpointing rank.
        rank: u32,
        /// Iteration (generation) the checkpoint captures.
        iter: u64,
        /// Encoded snapshot size in bytes (sealed frame).
        bytes: u64,
    },
    /// A node restored itself from a checkpoint after a crash. The paper's
    /// age bound makes this cheap: a restored node at `to_iter` looks like
    /// a peer `rollback` iterations stale, which `Global_Read` tolerates
    /// whenever `rollback ≤ age`.
    Restore {
        /// Restore time.
        t_ns: u64,
        /// Recovering rank.
        rank: u32,
        /// Iteration the node had reached when it crashed.
        from_iter: u64,
        /// Iteration of the checkpoint it restored to.
        to_iter: u64,
        /// Rollback distance, `from_iter − to_iter` (0 for a cold restart,
        /// which abandons state instead of rolling it back).
        rollback: u64,
        /// The rollback bound the coherence mode promises (`max(age, 1)`
        /// under `PartialAsync{age}`, `u64::MAX` when unbounded). Carried
        /// on the event so the audit layer can check `rollback ≤ bound`
        /// statelessly.
        bound: u64,
    },
    /// The reliable-delivery layer accepted a fresh frame past its
    /// receiver dedup (the only path by which a reliable frame reaches the
    /// application mailbox). The audit layer checks that no `(src, dst,
    /// seq)` triple is ever accepted twice.
    SeqAccept {
        /// Acceptance time.
        t_ns: u64,
        /// Source rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// World-unique sequence number of the frame.
        seq: u64,
    },
    /// A blocking `Global_Read` was satisfied: the provenance of the
    /// update that released it, plus the virtual-time breakdown of the
    /// wait (queued-for-medium vs in-flight vs retransmit-delayed). This
    /// is the edge of the causal read-dependency graph.
    ReadDep {
        /// Completion time of the read.
        t_ns: u64,
        /// Blocked reading rank.
        reader: u32,
        /// Rank that wrote the releasing update.
        writer: u32,
        /// Location index.
        loc: u32,
        /// Generation (iteration) tag of the releasing write.
        write_iter: u64,
        /// Writer-local sequence number of the releasing message.
        msg_seq: u64,
        /// Total time the read spent blocked.
        block_ns: u64,
        /// Time the releasing frame waited for the medium before service.
        queued_ns: u64,
        /// Service + propagation time of the delivering transmission.
        inflight_ns: u64,
        /// Extra delay attributable to retransmissions (0 on first try).
        retrans_ns: u64,
    },
    /// A mailbox's queue depth crossed its configured warn threshold
    /// (`NSCC_MAILBOX_WARN`) — backpressure is building.
    MailboxHigh {
        /// Crossing time (virtual ns of the receive that noticed it).
        t_ns: u64,
        /// Rank owning the mailbox.
        rank: u32,
        /// Queue depth at the crossing.
        depth: u64,
    },
    /// A rank captured its local state for a marker-protocol consistent
    /// snapshot (first marker received, or initiation on the coordinator).
    /// Meta event: see [`ObsEvent::is_meta`].
    SnapshotStart {
        /// Capture time.
        t_ns: u64,
        /// Capturing rank.
        rank: u32,
        /// Cut id the markers carry.
        id: u64,
        /// Iteration (generation) the local capture represents.
        gen: u64,
    },
    /// A rank finished its part of a consistent snapshot: every incoming
    /// channel closed by a marker, recorded in-flight bytes attached.
    /// Meta event: see [`ObsEvent::is_meta`].
    SnapshotComplete {
        /// Completion time (last marker's arrival).
        t_ns: u64,
        /// Completing rank.
        rank: u32,
        /// Cut id.
        id: u64,
        /// In-flight channel messages recorded for this rank.
        inflight: u64,
        /// Virtual time this rank spent *paused* on the snapshot path.
        /// The marker protocol is non-blocking by construction, so this
        /// is always 0; the audit layer asserts it (survivors must never
        /// park for a snapshot).
        pause_ns: u64,
    },
    /// The supervision layer approved a crash restart (warm restore from
    /// the newest consistent cut, or stop-world fallback), with backoff.
    /// Meta event: see [`ObsEvent::is_meta`].
    SupervisorRestart {
        /// Decision time.
        t_ns: u64,
        /// Restarting rank.
        rank: u32,
        /// Restart attempt for this rank (1 = first restart).
        attempt: u32,
        /// Backoff imposed before the restart.
        backoff_ns: u64,
    },
    /// The supervision layer exhausted a rank's restart budget and
    /// degraded the run: the rank is marked failed and survivors carry
    /// on. Meta event: see [`ObsEvent::is_meta`].
    SupervisorGiveUp {
        /// Decision time.
        t_ns: u64,
        /// Abandoned rank.
        rank: u32,
        /// Restarts consumed before giving up.
        restarts: u32,
    },
    /// The per-hop anatomy of one released blocking `Global_Read`: the
    /// observed age of the delivered value decomposed into named stage
    /// durations, each the difference of two consecutive virtual-time hop
    /// stamps carried on the releasing update's `Provenance`. The
    /// conservation contract is `wait + publish + transit + fault +
    /// retrans + queue + apply == age` exactly (the audit layer's
    /// conservation monitor asserts it online). Meta event: see
    /// [`ObsEvent::is_meta`] — tracer-on runs stay byte-identical to
    /// tracer-off runs in every report section the tracer does not own.
    ReadAnatomy {
        /// Release time of the read.
        t_ns: u64,
        /// Blocked reading rank.
        reader: u32,
        /// Rank that wrote the releasing update.
        writer: u32,
        /// Location index.
        loc: u32,
        /// Generation (iteration) tag of the releasing write.
        write_iter: u64,
        /// Writer-local sequence number of the releasing message.
        msg_seq: u64,
        /// Observed age of the delivered value: release instant minus the
        /// earlier of (write instant, block start), in virtual ns.
        age_ns: u64,
        /// Reader blocked before the write existed (block start → write).
        wait_ns: u64,
        /// Writer-side publish cost (write → frame submitted), the
        /// `nscc-msg` enqueue including send CPU overhead.
        publish_ns: u64,
        /// Baseline medium time of the delivering copy (queueing + wire).
        transit_ns: u64,
        /// Injected fault delay on the delivering copy (stall windows,
        /// degradation latency, reorder delay, duplicate-copy gap).
        fault_ns: u64,
        /// Delay added by the reliable layer's retransmissions (original
        /// submit → start of the delivering attempt).
        retrans_ns: u64,
        /// Receiver mailbox dwell (arrival → application pop).
        queue_ns: u64,
        /// DSM apply cost (pop → release), including receive CPU overhead.
        apply_ns: u64,
    },
    /// Application-defined marker.
    Custom {
        /// Event time.
        t_ns: u64,
        /// Free-form label.
        label: Label,
    },
}

impl ObsEvent {
    /// The event's timestamp in virtual nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match *self {
            ObsEvent::NetSend { t_ns, .. }
            | ObsEvent::NetDeliver { t_ns, .. }
            | ObsEvent::Write { t_ns, .. }
            | ObsEvent::ReadBlocked { t_ns, .. }
            | ObsEvent::ReadDone { t_ns, .. }
            | ObsEvent::StaleDiscard { t_ns, .. }
            | ObsEvent::BarrierEnter { t_ns, .. }
            | ObsEvent::BarrierExit { t_ns, .. }
            | ObsEvent::AntiMessage { t_ns, .. }
            | ObsEvent::FaultDrop { t_ns, .. }
            | ObsEvent::FaultDup { t_ns, .. }
            | ObsEvent::Retransmit { t_ns, .. }
            | ObsEvent::RetransmitGiveUp { t_ns, .. }
            | ObsEvent::ReadDegraded { t_ns, .. }
            | ObsEvent::WriterSuspected { t_ns, .. }
            | ObsEvent::Checkpoint { t_ns, .. }
            | ObsEvent::Restore { t_ns, .. }
            | ObsEvent::SeqAccept { t_ns, .. }
            | ObsEvent::ReadDep { t_ns, .. }
            | ObsEvent::MailboxHigh { t_ns, .. }
            | ObsEvent::SnapshotStart { t_ns, .. }
            | ObsEvent::SnapshotComplete { t_ns, .. }
            | ObsEvent::SupervisorRestart { t_ns, .. }
            | ObsEvent::SupervisorGiveUp { t_ns, .. }
            | ObsEvent::ReadAnatomy { t_ns, .. }
            | ObsEvent::Custom { t_ns, .. } => t_ns,
        }
    }

    /// Whether this is a *meta* event: recovery-layer lifecycle
    /// (snapshot markers, supervision decisions) and the staleness
    /// tracer's anatomy records, which must stay invisible to the hub's
    /// counters, histograms, raw event store, and metric-snapshot clock.
    /// The non-blocking recovery contract is that a snapshot-on run is
    /// byte-identical to a snapshot-off run in every report section the
    /// recovery layer does not own (and likewise tracer-on vs tracer-off
    /// outside the `staleness` section); meta events still reach the
    /// flight ring and the audit tap, which own their outputs.
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            ObsEvent::SnapshotStart { .. }
                | ObsEvent::SnapshotComplete { .. }
                | ObsEvent::SupervisorRestart { .. }
                | ObsEvent::SupervisorGiveUp { .. }
                | ObsEvent::ReadAnatomy { .. }
        )
    }

    /// Short kind name, for counting and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::NetSend { .. } => "net_send",
            ObsEvent::NetDeliver { .. } => "net_deliver",
            ObsEvent::Write { .. } => "write",
            ObsEvent::ReadBlocked { .. } => "read_blocked",
            ObsEvent::ReadDone { .. } => "read_done",
            ObsEvent::StaleDiscard { .. } => "stale_discard",
            ObsEvent::BarrierEnter { .. } => "barrier_enter",
            ObsEvent::BarrierExit { .. } => "barrier_exit",
            ObsEvent::AntiMessage { .. } => "anti_message",
            ObsEvent::FaultDrop { .. } => "fault_drop",
            ObsEvent::FaultDup { .. } => "fault_dup",
            ObsEvent::Retransmit { .. } => "retransmit",
            ObsEvent::RetransmitGiveUp { .. } => "retransmit_give_up",
            ObsEvent::ReadDegraded { .. } => "read_degraded",
            ObsEvent::WriterSuspected { .. } => "writer_suspected",
            ObsEvent::Checkpoint { .. } => "checkpoint",
            ObsEvent::Restore { .. } => "restore",
            ObsEvent::SeqAccept { .. } => "seq_accept",
            ObsEvent::ReadDep { .. } => "read_dep",
            ObsEvent::MailboxHigh { .. } => "mailbox_high",
            ObsEvent::SnapshotStart { .. } => "snapshot_start",
            ObsEvent::SnapshotComplete { .. } => "snapshot_complete",
            ObsEvent::SupervisorRestart { .. } => "supervisor_restart",
            ObsEvent::SupervisorGiveUp { .. } => "supervisor_give_up",
            ObsEvent::ReadAnatomy { .. } => "read_anatomy",
            ObsEvent::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_and_kinds() {
        let e = ObsEvent::Write {
            t_ns: 7,
            rank: 1,
            loc: 2,
            age: 3,
        };
        assert_eq!(e.t_ns(), 7);
        assert_eq!(e.kind(), "write");
        let c = ObsEvent::Custom {
            t_ns: 9,
            label: "checkpoint".into(),
        };
        assert_eq!(c.t_ns(), 9);
        assert_eq!(c.kind(), "custom");
    }

    #[test]
    fn recovery_lifecycle_events_are_meta() {
        let s = ObsEvent::SnapshotStart {
            t_ns: 1,
            rank: 0,
            id: 3,
            gen: 10,
        };
        assert!(s.is_meta());
        assert_eq!(s.t_ns(), 1);
        assert_eq!(s.kind(), "snapshot_start");
        let g = ObsEvent::SupervisorGiveUp {
            t_ns: 2,
            rank: 1,
            restarts: 3,
        };
        assert!(g.is_meta());
        assert!(!ObsEvent::Write {
            t_ns: 0,
            rank: 0,
            loc: 0,
            age: 0
        }
        .is_meta());
    }

    #[test]
    fn read_anatomy_is_meta_and_conserves() {
        let a = ObsEvent::ReadAnatomy {
            t_ns: 1_000,
            reader: 1,
            writer: 0,
            loc: 2,
            write_iter: 9,
            msg_seq: 4,
            age_ns: 600,
            wait_ns: 100,
            publish_ns: 150,
            transit_ns: 200,
            fault_ns: 0,
            retrans_ns: 0,
            queue_ns: 50,
            apply_ns: 100,
        };
        assert!(a.is_meta());
        assert_eq!(a.t_ns(), 1_000);
        assert_eq!(a.kind(), "read_anatomy");
    }
}
