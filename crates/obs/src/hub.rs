//! The instrumentation hub: one cloneable sink every layer can share.
//!
//! A [`Hub`] collects three streams — structured [`ObsEvent`]s, execution
//! [`Span`]s, warp samples — and maintains derived metrics (staleness,
//! block-time and network-delay [`Histogram`]s, event-kind counters) as a
//! side effect of [`Hub::emit`]. Raw event and span storage is bounded
//! (overflow bumps drop counters); the histograms and counters stay exact
//! regardless, so long experiment sweeps keep correct aggregates even when
//! the raw streams saturate.
//!
//! Layers hold an `Option<Hub>`: detached (`None`) costs a single branch
//! per event site — see the `obs/` group in `crates/bench/benches`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use crate::event::ObsEvent;
use crate::hist::Histogram;
use crate::span::{Span, SpanKind, Trace, TraceTotals};
use crate::warp::{WarpSummary, WarpTimeline};
use crate::Label;

/// Events kept before the hub starts counting drops instead.
const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

struct EventStore {
    events: Vec<ObsEvent>,
    dropped: u64,
    capacity: usize,
}

struct HubInner {
    events: Mutex<EventStore>,
    trace: Trace,
    warp: WarpTimeline,
    staleness: Mutex<Histogram>,
    block_ns: Mutex<Histogram>,
    net_delay_ns: Mutex<Histogram>,
    rollback: Mutex<Histogram>,
    names: Mutex<BTreeMap<u32, String>>,
    snapshots: Mutex<Vec<MetricSnapshot>>,
    /// Virtual-time snapshot cadence (0 = disabled).
    snap_every_ns: AtomicU64,
    /// Next virtual instant at which a snapshot is due.
    snap_next_ns: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    messages: AtomicU64,
    stale_discards: AtomicU64,
    barriers: AtomicU64,
    anti_messages: AtomicU64,
    faults_dropped: AtomicU64,
    faults_duplicated: AtomicU64,
    retransmits: AtomicU64,
    degraded_reads: AtomicU64,
    suspected_writers: AtomicU64,
    checkpoints: AtomicU64,
    restores: AtomicU64,
    mailbox_warnings: AtomicU64,
}

/// The shared instrumentation hub. Cloning is cheap (an `Arc` bump); all
/// clones feed the same sink.
#[derive(Clone)]
pub struct Hub {
    inner: Arc<HubInner>,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Hub {
    /// A fresh hub with default storage bounds.
    pub fn new() -> Self {
        Hub::default()
    }

    /// A fresh hub keeping at most `capacity` raw events (derived metrics
    /// stay exact past the bound).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Hub {
            inner: Arc::new(HubInner {
                events: Mutex::new(EventStore {
                    events: Vec::new(),
                    dropped: 0,
                    capacity,
                }),
                trace: Trace::new(),
                warp: WarpTimeline::new(),
                staleness: Mutex::new(Histogram::new()),
                block_ns: Mutex::new(Histogram::new()),
                net_delay_ns: Mutex::new(Histogram::new()),
                rollback: Mutex::new(Histogram::new()),
                names: Mutex::new(BTreeMap::new()),
                snapshots: Mutex::new(Vec::new()),
                snap_every_ns: AtomicU64::new(0),
                snap_next_ns: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                stale_discards: AtomicU64::new(0),
                barriers: AtomicU64::new(0),
                anti_messages: AtomicU64::new(0),
                faults_dropped: AtomicU64::new(0),
                faults_duplicated: AtomicU64::new(0),
                retransmits: AtomicU64::new(0),
                degraded_reads: AtomicU64::new(0),
                suspected_writers: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
                restores: AtomicU64::new(0),
                mailbox_warnings: AtomicU64::new(0),
            }),
        }
    }

    /// Record a structured event, updating derived metrics first so they
    /// survive raw-event overflow.
    pub fn emit(&self, ev: ObsEvent) {
        let t_ns = ev.t_ns();
        match ev {
            ObsEvent::ReadDone {
                staleness,
                blocked,
                block_ns,
                ..
            } => {
                self.inner.reads.fetch_add(1, Ordering::Relaxed);
                self.inner.staleness.lock().record(staleness);
                if blocked {
                    self.inner.block_ns.lock().record(block_ns);
                }
            }
            ObsEvent::Write { .. } => {
                self.inner.writes.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::NetDeliver { delay_ns, .. } => {
                self.inner.messages.fetch_add(1, Ordering::Relaxed);
                self.inner.net_delay_ns.lock().record(delay_ns);
            }
            ObsEvent::StaleDiscard { .. } => {
                self.inner.stale_discards.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::BarrierExit { .. } => {
                self.inner.barriers.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::AntiMessage { .. } => {
                self.inner.anti_messages.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::FaultDrop { .. } => {
                self.inner.faults_dropped.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::FaultDup { .. } => {
                self.inner.faults_duplicated.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Retransmit { .. } => {
                self.inner.retransmits.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::ReadDegraded { .. } => {
                self.inner.degraded_reads.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WriterSuspected { .. } => {
                self.inner.suspected_writers.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Checkpoint { .. } => {
                self.inner.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Restore { rollback, .. } => {
                self.inner.restores.fetch_add(1, Ordering::Relaxed);
                self.inner.rollback.lock().record(rollback);
            }
            ObsEvent::MailboxHigh { .. } => {
                self.inner.mailbox_warnings.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        {
            let mut store = self.inner.events.lock();
            if store.events.len() >= store.capacity {
                store.dropped += 1;
            } else {
                store.events.push(ev);
            }
        }
        self.maybe_snapshot(t_ns);
    }

    /// Enable periodic metric snapshots every `every_ns` of virtual time
    /// (0 disables). Snapshots are cut lazily, on the first event at or
    /// past each cadence boundary, so they cost nothing between events and
    /// keep long runs analyzable even after raw-event storage saturates.
    pub fn sample_every(&self, every_ns: u64) {
        self.inner.snap_every_ns.store(every_ns, Ordering::Relaxed);
        self.inner.snap_next_ns.store(every_ns, Ordering::Relaxed);
    }

    /// Cut a snapshot now if the cadence says one is due at `t_ns`.
    fn maybe_snapshot(&self, t_ns: u64) {
        let every = self.inner.snap_every_ns.load(Ordering::Relaxed);
        if every == 0 || t_ns < self.inner.snap_next_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut snaps = self.inner.snapshots.lock();
        // Re-check under the lock: a racing emitter may have taken this
        // boundary's snapshot already.
        if t_ns < self.inner.snap_next_ns.load(Ordering::Relaxed) {
            return;
        }
        self.inner
            .snap_next_ns
            .store(t_ns - t_ns % every + every, Ordering::Relaxed);
        snaps.push(self.snapshot_at(t_ns));
    }

    /// Sample the current derived metrics as one [`MetricSnapshot`].
    /// Called automatically on the cadence set by [`Hub::sample_every`];
    /// also usable directly for one-off probes.
    pub fn snapshot_at(&self, t_ns: u64) -> MetricSnapshot {
        let (events_dropped, spans_dropped) = (self.events_dropped(), self.inner.trace.dropped());
        let staleness = self.inner.staleness.lock();
        let block = self.inner.block_ns.lock();
        let delay = self.inner.net_delay_ns.lock();
        MetricSnapshot {
            t_ns,
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            stale_discards: self.inner.stale_discards.load(Ordering::Relaxed),
            barriers: self.inner.barriers.load(Ordering::Relaxed),
            anti_messages: self.inner.anti_messages.load(Ordering::Relaxed),
            faults_dropped: self.inner.faults_dropped.load(Ordering::Relaxed),
            retransmits: self.inner.retransmits.load(Ordering::Relaxed),
            degraded_reads: self.inner.degraded_reads.load(Ordering::Relaxed),
            staleness_p50: staleness.quantile(0.50),
            staleness_p99: staleness.quantile(0.99),
            block_ns_total: block.sum(),
            blocked_reads: block.count(),
            net_delay_p99: delay.quantile(0.99),
            events_dropped,
            spans_dropped,
        }
    }

    /// All periodic snapshots cut so far, in virtual-time order.
    pub fn snapshots(&self) -> Vec<MetricSnapshot> {
        self.inner.snapshots.lock().clone()
    }

    /// Record an execution span (see [`Trace::record`]).
    pub fn span(
        &self,
        pid: u32,
        start_ns: u64,
        end_ns: u64,
        kind: SpanKind,
        label: impl Into<Label>,
    ) {
        self.inner.trace.record(pid, start_ns, end_ns, kind, label);
    }

    /// Record a warp sample at virtual time `t_ns`.
    pub fn warp_sample(&self, t_ns: u64, warp: f64) {
        self.inner.warp.record(t_ns, warp);
    }

    /// Name a pid/rank for trace exports (e.g. `"island3"`, `"loader"`).
    pub fn set_proc_name(&self, pid: u32, name: impl Into<String>) {
        self.inner.names.lock().insert(pid, name.into());
    }

    /// The span trace shared by this hub.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// The warp timeline shared by this hub.
    pub fn warp(&self) -> &WarpTimeline {
        &self.inner.warp
    }

    /// Snapshot of all kept events, in emission order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.events.lock().events.clone()
    }

    /// Number of kept events.
    pub fn event_count(&self) -> usize {
        self.inner.events.lock().events.len()
    }

    /// Events dropped after the capacity was reached.
    pub fn events_dropped(&self) -> u64 {
        self.inner.events.lock().dropped
    }

    /// Snapshot of the staleness histogram (delivered-age gap per read).
    pub fn staleness(&self) -> Histogram {
        self.inner.staleness.lock().clone()
    }

    /// Snapshot of the blocked-read time histogram (virtual ns).
    pub fn block_time(&self) -> Histogram {
        self.inner.block_ns.lock().clone()
    }

    /// Snapshot of the network delay histogram (virtual ns).
    pub fn net_delay(&self) -> Histogram {
        self.inner.net_delay_ns.lock().clone()
    }

    /// Snapshot of the rollback-depth histogram (iterations rolled back
    /// per restore; the recovery analogue of staleness).
    pub fn rollback(&self) -> Histogram {
        self.inner.rollback.lock().clone()
    }

    /// Registered pid/rank names.
    pub fn proc_names(&self) -> BTreeMap<u32, String> {
        self.inner.names.lock().clone()
    }

    /// Per-process span totals (see [`Trace::totals`]).
    pub fn totals(&self, pid: u32) -> TraceTotals {
        self.inner.trace.totals(pid)
    }

    /// Aggregate summary for embedding in a run report.
    pub fn summary(&self) -> HubSummary {
        let (events, events_dropped) = {
            let store = self.inner.events.lock();
            (store.events.len() as u64, store.dropped)
        };
        HubSummary {
            events,
            events_dropped,
            spans: self.inner.trace.len() as u64,
            spans_dropped: self.inner.trace.dropped(),
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            stale_discards: self.inner.stale_discards.load(Ordering::Relaxed),
            barriers: self.inner.barriers.load(Ordering::Relaxed),
            anti_messages: self.inner.anti_messages.load(Ordering::Relaxed),
            faults_dropped: self.inner.faults_dropped.load(Ordering::Relaxed),
            faults_duplicated: self.inner.faults_duplicated.load(Ordering::Relaxed),
            retransmits: self.inner.retransmits.load(Ordering::Relaxed),
            degraded_reads: self.inner.degraded_reads.load(Ordering::Relaxed),
            suspected_writers: self.inner.suspected_writers.load(Ordering::Relaxed),
            checkpoints: self.inner.checkpoints.load(Ordering::Relaxed),
            restores: self.inner.restores.load(Ordering::Relaxed),
            mailbox_warnings: self.inner.mailbox_warnings.load(Ordering::Relaxed),
            staleness: self.staleness(),
            block_ns: self.block_time(),
            net_delay_ns: self.net_delay(),
            rollback: self.rollback(),
            warp: self.inner.warp.summary(),
            snapshots: self.snapshots(),
        }
    }

    /// Export the full raw streams — events, spans, process names, drop
    /// accounting — as one JSON document, the event-dump input format of
    /// `nscc inspect` (schema-stamped with [`crate::SCHEMA_VERSION`]).
    pub fn export_events_json(&self) -> String {
        #[derive(Serialize)]
        struct Dump {
            schema_version: u32,
            proc_names: BTreeMap<u32, String>,
            events_dropped: u64,
            spans_dropped: u64,
            events: Vec<ObsEvent>,
            spans: Vec<Span>,
        }
        crate::json::to_json(&Dump {
            schema_version: crate::SCHEMA_VERSION,
            proc_names: self.proc_names(),
            events_dropped: self.events_dropped(),
            spans_dropped: self.inner.trace.dropped(),
            events: self.events(),
            spans: self.spans(),
        })
    }

    /// Export all spans as Chrome trace-event JSON (see [`crate::perfetto`]).
    pub fn perfetto(&self) -> String {
        crate::perfetto::export(&self.inner.trace.spans(), &self.proc_names())
    }

    /// All kept spans, sorted by start time.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.trace.spans()
    }
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hub")
            .field("events", &self.event_count())
            .field("spans", &self.inner.trace.len())
            .field("warp_samples", &self.inner.warp.len())
            .finish()
    }
}

/// Serializable aggregate of everything a hub collected.
#[derive(Debug, Clone, Serialize)]
pub struct HubSummary {
    /// Raw events kept.
    pub events: u64,
    /// Raw events dropped at the capacity bound.
    pub events_dropped: u64,
    /// Spans kept.
    pub spans: u64,
    /// Spans dropped at the capacity bound.
    pub spans_dropped: u64,
    /// Reads observed (`ReadDone` events; exact despite drops).
    pub reads: u64,
    /// DSM writes observed.
    pub writes: u64,
    /// Network deliveries observed.
    pub messages: u64,
    /// Updates discarded as stale.
    pub stale_discards: u64,
    /// Barrier releases observed.
    pub barriers: u64,
    /// Rollback anti-messages observed.
    pub anti_messages: u64,
    /// Frames dropped by the fault-injection layer.
    pub faults_dropped: u64,
    /// Spurious duplicate deliveries injected by the fault layer.
    pub faults_duplicated: u64,
    /// Reliable-delivery retransmissions observed.
    pub retransmits: u64,
    /// Reads that timed out and returned a degraded (stale) value.
    pub degraded_reads: u64,
    /// Failure-detector suspicions raised against peers.
    pub suspected_writers: u64,
    /// Recovery checkpoints cut.
    pub checkpoints: u64,
    /// Restores from checkpoint after a crash.
    pub restores: u64,
    /// Mailbox depth warn-threshold crossings.
    pub mailbox_warnings: u64,
    /// Delivered-age gap per read (iterations).
    pub staleness: Histogram,
    /// Blocked-read durations (virtual ns).
    pub block_ns: Histogram,
    /// Network submit→arrival delays (virtual ns).
    pub net_delay_ns: Histogram,
    /// Rollback depth per restore (iterations; bounded by the age bound
    /// when recovery runs in a strict mode).
    pub rollback: Histogram,
    /// Warp sample distribution (§4.3).
    pub warp: WarpSummary,
    /// Periodic metric snapshots (empty unless [`Hub::sample_every`] was
    /// enabled): the convergence-vs-virtual-time curve of the run.
    pub snapshots: Vec<MetricSnapshot>,
}

impl HubSummary {
    /// Fold another summary into this one: counters add, histograms merge
    /// exactly, snapshot series concatenate in order. The warp summary is
    /// a distribution digest, so its merge is approximate — sample counts
    /// add, the mean is sample-weighted, and p50/p95/max take the
    /// pairwise max (pessimistic but deterministic). Used by sweep bins
    /// that run each cell on its own hub and need one report-level
    /// aggregate that is identical whether the sweep ran straight through
    /// or was resumed from a checkpoint.
    pub fn merge(&mut self, other: &HubSummary) {
        self.events += other.events;
        self.events_dropped += other.events_dropped;
        self.spans += other.spans;
        self.spans_dropped += other.spans_dropped;
        self.reads += other.reads;
        self.writes += other.writes;
        self.messages += other.messages;
        self.stale_discards += other.stale_discards;
        self.barriers += other.barriers;
        self.anti_messages += other.anti_messages;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.retransmits += other.retransmits;
        self.degraded_reads += other.degraded_reads;
        self.suspected_writers += other.suspected_writers;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.mailbox_warnings += other.mailbox_warnings;
        self.staleness.merge(&other.staleness);
        self.block_ns.merge(&other.block_ns);
        self.net_delay_ns.merge(&other.net_delay_ns);
        self.rollback.merge(&other.rollback);
        self.warp = merge_warp(&self.warp, &other.warp);
        self.snapshots.extend(other.snapshots.iter().copied());
    }
}

/// Pairwise merge of two warp digests (see [`HubSummary::merge`]).
fn merge_warp(a: &WarpSummary, b: &WarpSummary) -> WarpSummary {
    if a.samples == 0 {
        return *b;
    }
    if b.samples == 0 {
        return *a;
    }
    let n = a.samples + b.samples;
    WarpSummary {
        samples: n,
        mean: (a.mean * a.samples as f64 + b.mean * b.samples as f64) / n as f64,
        p50: a.p50.max(b.p50),
        p95: a.p95.max(b.p95),
        max: a.max.max(b.max),
    }
}

impl nscc_ckpt::Snapshot for HubSummary {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.events,
            self.events_dropped,
            self.spans,
            self.spans_dropped,
            self.reads,
            self.writes,
            self.messages,
            self.stale_discards,
            self.barriers,
            self.anti_messages,
            self.faults_dropped,
            self.faults_duplicated,
            self.retransmits,
            self.degraded_reads,
            self.suspected_writers,
            self.checkpoints,
            self.restores,
            self.mailbox_warnings,
        ] {
            enc.put_u64(v);
        }
        self.staleness.encode(enc);
        self.block_ns.encode(enc);
        self.net_delay_ns.encode(enc);
        self.rollback.encode(enc);
        self.warp.encode(enc);
        self.snapshots.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let mut vals = [0u64; 18];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(HubSummary {
            events: vals[0],
            events_dropped: vals[1],
            spans: vals[2],
            spans_dropped: vals[3],
            reads: vals[4],
            writes: vals[5],
            messages: vals[6],
            stale_discards: vals[7],
            barriers: vals[8],
            anti_messages: vals[9],
            faults_dropped: vals[10],
            faults_duplicated: vals[11],
            retransmits: vals[12],
            degraded_reads: vals[13],
            suspected_writers: vals[14],
            checkpoints: vals[15],
            restores: vals[16],
            mailbox_warnings: vals[17],
            staleness: Histogram::decode(dec)?,
            block_ns: Histogram::decode(dec)?,
            net_delay_ns: Histogram::decode(dec)?,
            rollback: Histogram::decode(dec)?,
            warp: WarpSummary::decode(dec)?,
            snapshots: Vec::<MetricSnapshot>::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for MetricSnapshot {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.t_ns,
            self.reads,
            self.writes,
            self.messages,
            self.stale_discards,
            self.barriers,
            self.anti_messages,
            self.faults_dropped,
            self.retransmits,
            self.degraded_reads,
            self.staleness_p50,
            self.staleness_p99,
            self.block_ns_total,
            self.blocked_reads,
            self.net_delay_p99,
            self.events_dropped,
            self.spans_dropped,
        ] {
            enc.put_u64(v);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let mut vals = [0u64; 17];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(MetricSnapshot {
            t_ns: vals[0],
            reads: vals[1],
            writes: vals[2],
            messages: vals[3],
            stale_discards: vals[4],
            barriers: vals[5],
            anti_messages: vals[6],
            faults_dropped: vals[7],
            retransmits: vals[8],
            degraded_reads: vals[9],
            staleness_p50: vals[10],
            staleness_p99: vals[11],
            block_ns_total: vals[12],
            blocked_reads: vals[13],
            net_delay_p99: vals[14],
            events_dropped: vals[15],
            spans_dropped: vals[16],
        })
    }
}

/// One periodic sample of the hub's derived metrics, cut on a virtual-time
/// cadence ([`Hub::sample_every`]). Counters are cumulative since the start
/// of the run; percentiles are over everything recorded so far. The series
/// stays meaningful even after raw-event storage saturates, because it is
/// fed by the exact aggregate metrics, not the bounded raw stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MetricSnapshot {
    /// Virtual instant of the sample.
    pub t_ns: u64,
    /// Reads completed so far.
    pub reads: u64,
    /// DSM writes so far.
    pub writes: u64,
    /// Network deliveries so far.
    pub messages: u64,
    /// Updates discarded as stale so far.
    pub stale_discards: u64,
    /// Barrier releases so far.
    pub barriers: u64,
    /// Rollback anti-messages so far.
    pub anti_messages: u64,
    /// Frames dropped by the fault layer so far.
    pub faults_dropped: u64,
    /// Reliable-delivery retransmissions so far.
    pub retransmits: u64,
    /// Degraded (timed-out) reads so far.
    pub degraded_reads: u64,
    /// Median delivered-age gap so far.
    pub staleness_p50: u64,
    /// 99th-percentile delivered-age gap so far.
    pub staleness_p99: u64,
    /// Total virtual ns spent in blocked reads so far.
    pub block_ns_total: u64,
    /// Blocked reads so far.
    pub blocked_reads: u64,
    /// 99th-percentile network delay so far (virtual ns).
    pub net_delay_p99: u64,
    /// Raw events dropped so far.
    pub events_dropped: u64,
    /// Spans dropped so far.
    pub spans_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_done(staleness: u64, blocked: bool, block_ns: u64) -> ObsEvent {
        ObsEvent::ReadDone {
            t_ns: 0,
            rank: 0,
            loc: 0,
            curr_iter: 10,
            requested: 5,
            delivered: 10 - staleness,
            staleness,
            blocked,
            block_ns,
        }
    }

    #[test]
    fn emit_updates_derived_metrics() {
        let hub = Hub::new();
        hub.emit(read_done(3, false, 0));
        hub.emit(read_done(0, true, 1_000));
        hub.emit(ObsEvent::NetDeliver {
            t_ns: 5,
            src: 0,
            dst: 1,
            delay_ns: 2_000,
        });
        hub.emit(ObsEvent::AntiMessage {
            t_ns: 6,
            rank: 1,
            loc: 0,
            age: 4,
        });
        let s = hub.summary();
        assert_eq!(s.reads, 2);
        assert_eq!(s.messages, 1);
        assert_eq!(s.anti_messages, 1);
        assert_eq!(s.staleness.count(), 2);
        assert_eq!(s.staleness.max(), 3);
        assert_eq!(s.block_ns.count(), 1);
        assert_eq!(s.net_delay_ns.max(), 2_000);
        assert_eq!(s.events, 4);
        assert_eq!(s.events_dropped, 0);
    }

    #[test]
    fn counters_survive_event_overflow() {
        let hub = Hub::with_event_capacity(1);
        for _ in 0..5 {
            hub.emit(read_done(1, false, 0));
        }
        let s = hub.summary();
        assert_eq!(s.events, 1);
        assert_eq!(s.events_dropped, 4);
        assert_eq!(s.reads, 5);
        assert_eq!(s.staleness.count(), 5);
    }

    #[test]
    fn snapshots_follow_the_cadence() {
        let hub = Hub::new();
        hub.sample_every(1_000);
        // Events inside the first interval cut nothing; the first event at
        // or past each boundary cuts exactly one snapshot.
        for t in [100, 400, 900] {
            hub.emit(ObsEvent::Write {
                t_ns: t,
                rank: 0,
                loc: 0,
                age: 1,
            });
        }
        assert!(hub.snapshots().is_empty());
        hub.emit(read_done(2, true, 50));
        hub.emit(ObsEvent::Write {
            t_ns: 1_200,
            rank: 0,
            loc: 0,
            age: 2,
        });
        hub.emit(ObsEvent::Write {
            t_ns: 3_500,
            rank: 0,
            loc: 0,
            age: 3,
        });
        let snaps = hub.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].t_ns, 1_200);
        assert_eq!(snaps[0].writes, 4);
        assert_eq!(snaps[0].reads, 1);
        assert_eq!(snaps[0].blocked_reads, 1);
        assert_eq!(snaps[0].block_ns_total, 50);
        assert_eq!(snaps[1].t_ns, 3_500);
        assert_eq!(snaps[1].writes, 5);
        assert_eq!(hub.summary().snapshots.len(), 2);
    }

    #[test]
    fn snapshots_off_by_default() {
        let hub = Hub::new();
        for _ in 0..10 {
            hub.emit(read_done(1, false, 0));
        }
        assert!(hub.snapshots().is_empty());
        assert!(hub.summary().snapshots.is_empty());
    }

    #[test]
    fn event_dump_exports_valid_versioned_json() {
        let hub = Hub::new();
        hub.emit(read_done(1, false, 0));
        hub.span(0, 0, 10, SpanKind::Compute, "run");
        hub.set_proc_name(0, "rank0");
        let dump = hub.export_events_json();
        crate::json::validate(&dump).expect("event dump validates");
        assert!(dump.contains(&format!("\"schema_version\":{}", crate::SCHEMA_VERSION)));
        assert!(dump.contains("\"ReadDone\""));
        assert!(dump.contains("\"rank0\""));
    }

    #[test]
    fn recovery_events_update_counters() {
        let hub = Hub::new();
        hub.emit(ObsEvent::Checkpoint {
            t_ns: 10,
            rank: 0,
            iter: 5,
            bytes: 128,
        });
        hub.emit(ObsEvent::Restore {
            t_ns: 20,
            rank: 0,
            from_iter: 9,
            to_iter: 5,
            rollback: 4,
        });
        hub.emit(ObsEvent::MailboxHigh {
            t_ns: 30,
            rank: 1,
            depth: 64,
        });
        let s = hub.summary();
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.restores, 1);
        assert_eq!(s.mailbox_warnings, 1);
        assert_eq!(s.rollback.count(), 1);
        assert_eq!(s.rollback.max(), 4);
    }

    #[test]
    fn summary_merge_adds_counters_and_histograms() {
        let a = Hub::new();
        a.emit(read_done(3, false, 0));
        a.emit(read_done(1, true, 500));
        let b = Hub::new();
        b.emit(read_done(7, false, 0));
        b.emit(ObsEvent::Restore {
            t_ns: 5,
            rank: 2,
            from_iter: 8,
            to_iter: 6,
            rollback: 2,
        });
        b.warp_sample(0, 2.0);
        let mut merged = a.summary();
        merged.merge(&b.summary());
        assert_eq!(merged.reads, 3);
        assert_eq!(merged.restores, 1);
        assert_eq!(merged.staleness.count(), 3);
        assert_eq!(merged.staleness.max(), 7);
        assert_eq!(merged.block_ns.count(), 1);
        assert_eq!(merged.rollback.max(), 2);
        // Warp merge: one side empty takes the other verbatim.
        assert_eq!(merged.warp.samples, 1);
        assert_eq!(merged.warp.mean, 2.0);
        // Merging two non-empty warps is sample-weighted on the mean.
        let mut w = merged.warp;
        w = super::merge_warp(
            &w,
            &WarpSummary {
                samples: 3,
                mean: 4.0,
                p50: 1.0,
                p95: 1.0,
                max: 5.0,
            },
        );
        assert_eq!(w.samples, 4);
        assert!((w.mean - 3.5).abs() < 1e-12);
        assert_eq!(w.max, 5.0);
    }

    #[test]
    fn summary_snapshot_roundtrip() {
        let hub = Hub::new();
        hub.sample_every(100);
        hub.emit(read_done(3, true, 700));
        hub.emit(ObsEvent::NetDeliver {
            t_ns: 150,
            src: 0,
            dst: 1,
            delay_ns: 2_000,
        });
        hub.emit(ObsEvent::Checkpoint {
            t_ns: 200,
            rank: 0,
            iter: 9,
            bytes: 64,
        });
        hub.warp_sample(10, 1.25);
        let s = hub.summary();
        assert!(!s.snapshots.is_empty());
        let bytes = nscc_ckpt::to_bytes(&s);
        let back: HubSummary = nscc_ckpt::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.reads, s.reads);
        assert_eq!(back.checkpoints, s.checkpoints);
        assert_eq!(back.staleness, s.staleness);
        assert_eq!(back.block_ns, s.block_ns);
        assert_eq!(back.net_delay_ns, s.net_delay_ns);
        assert_eq!(back.rollback, s.rollback);
        assert_eq!(back.warp, s.warp);
        assert_eq!(back.snapshots, s.snapshots);
        // Byte-identity of the re-encoding: decode∘encode is the identity.
        assert_eq!(nscc_ckpt::to_bytes(&back), bytes);
    }

    #[test]
    fn clones_share_the_sink() {
        let hub = Hub::new();
        let clone = hub.clone();
        clone.span(0, 0, 10, SpanKind::Compute, "run");
        clone.warp_sample(0, 1.5);
        clone.set_proc_name(0, "island0");
        assert_eq!(hub.spans().len(), 1);
        assert_eq!(hub.warp().len(), 1);
        assert_eq!(hub.proc_names()[&0], "island0");
    }
}
