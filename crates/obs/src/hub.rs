//! The instrumentation hub: one cloneable sink every layer can share.
//!
//! A [`Hub`] collects three streams — structured [`ObsEvent`]s, execution
//! [`Span`]s, warp samples — and maintains derived metrics (staleness,
//! block-time and network-delay [`Histogram`]s, event-kind counters) as a
//! side effect of [`Hub::emit`]. Raw event and span storage is bounded
//! (overflow bumps drop counters); the histograms and counters stay exact
//! regardless, so long experiment sweeps keep correct aggregates even when
//! the raw streams saturate.
//!
//! Layers hold an `Option<Hub>`: detached (`None`) costs a single branch
//! per event site — see the `obs/` group in `crates/bench/benches`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use crate::event::ObsEvent;
use crate::hist::Histogram;
use crate::span::{Span, SpanKind, Trace, TraceTotals};
use crate::warp::{WarpSummary, WarpTimeline};
use crate::Label;

/// Events kept before the hub starts counting drops instead.
const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

struct EventStore {
    events: Vec<ObsEvent>,
    dropped: u64,
    capacity: usize,
}

struct HubInner {
    events: Mutex<EventStore>,
    trace: Trace,
    warp: WarpTimeline,
    staleness: Mutex<Histogram>,
    block_ns: Mutex<Histogram>,
    net_delay_ns: Mutex<Histogram>,
    names: Mutex<BTreeMap<u32, String>>,
    reads: AtomicU64,
    writes: AtomicU64,
    messages: AtomicU64,
    stale_discards: AtomicU64,
    barriers: AtomicU64,
    anti_messages: AtomicU64,
}

/// The shared instrumentation hub. Cloning is cheap (an `Arc` bump); all
/// clones feed the same sink.
#[derive(Clone)]
pub struct Hub {
    inner: Arc<HubInner>,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Hub {
    /// A fresh hub with default storage bounds.
    pub fn new() -> Self {
        Hub::default()
    }

    /// A fresh hub keeping at most `capacity` raw events (derived metrics
    /// stay exact past the bound).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Hub {
            inner: Arc::new(HubInner {
                events: Mutex::new(EventStore {
                    events: Vec::new(),
                    dropped: 0,
                    capacity,
                }),
                trace: Trace::new(),
                warp: WarpTimeline::new(),
                staleness: Mutex::new(Histogram::new()),
                block_ns: Mutex::new(Histogram::new()),
                net_delay_ns: Mutex::new(Histogram::new()),
                names: Mutex::new(BTreeMap::new()),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                stale_discards: AtomicU64::new(0),
                barriers: AtomicU64::new(0),
                anti_messages: AtomicU64::new(0),
            }),
        }
    }

    /// Record a structured event, updating derived metrics first so they
    /// survive raw-event overflow.
    pub fn emit(&self, ev: ObsEvent) {
        match ev {
            ObsEvent::ReadDone {
                staleness,
                blocked,
                block_ns,
                ..
            } => {
                self.inner.reads.fetch_add(1, Ordering::Relaxed);
                self.inner.staleness.lock().record(staleness);
                if blocked {
                    self.inner.block_ns.lock().record(block_ns);
                }
            }
            ObsEvent::Write { .. } => {
                self.inner.writes.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::NetDeliver { delay_ns, .. } => {
                self.inner.messages.fetch_add(1, Ordering::Relaxed);
                self.inner.net_delay_ns.lock().record(delay_ns);
            }
            ObsEvent::StaleDiscard { .. } => {
                self.inner.stale_discards.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::BarrierExit { .. } => {
                self.inner.barriers.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::AntiMessage { .. } => {
                self.inner.anti_messages.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        let mut store = self.inner.events.lock();
        if store.events.len() >= store.capacity {
            store.dropped += 1;
            return;
        }
        store.events.push(ev);
    }

    /// Record an execution span (see [`Trace::record`]).
    pub fn span(
        &self,
        pid: u32,
        start_ns: u64,
        end_ns: u64,
        kind: SpanKind,
        label: impl Into<Label>,
    ) {
        self.inner.trace.record(pid, start_ns, end_ns, kind, label);
    }

    /// Record a warp sample at virtual time `t_ns`.
    pub fn warp_sample(&self, t_ns: u64, warp: f64) {
        self.inner.warp.record(t_ns, warp);
    }

    /// Name a pid/rank for trace exports (e.g. `"island3"`, `"loader"`).
    pub fn set_proc_name(&self, pid: u32, name: impl Into<String>) {
        self.inner.names.lock().insert(pid, name.into());
    }

    /// The span trace shared by this hub.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// The warp timeline shared by this hub.
    pub fn warp(&self) -> &WarpTimeline {
        &self.inner.warp
    }

    /// Snapshot of all kept events, in emission order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.events.lock().events.clone()
    }

    /// Number of kept events.
    pub fn event_count(&self) -> usize {
        self.inner.events.lock().events.len()
    }

    /// Events dropped after the capacity was reached.
    pub fn events_dropped(&self) -> u64 {
        self.inner.events.lock().dropped
    }

    /// Snapshot of the staleness histogram (delivered-age gap per read).
    pub fn staleness(&self) -> Histogram {
        self.inner.staleness.lock().clone()
    }

    /// Snapshot of the blocked-read time histogram (virtual ns).
    pub fn block_time(&self) -> Histogram {
        self.inner.block_ns.lock().clone()
    }

    /// Snapshot of the network delay histogram (virtual ns).
    pub fn net_delay(&self) -> Histogram {
        self.inner.net_delay_ns.lock().clone()
    }

    /// Registered pid/rank names.
    pub fn proc_names(&self) -> BTreeMap<u32, String> {
        self.inner.names.lock().clone()
    }

    /// Per-process span totals (see [`Trace::totals`]).
    pub fn totals(&self, pid: u32) -> TraceTotals {
        self.inner.trace.totals(pid)
    }

    /// Aggregate summary for embedding in a run report.
    pub fn summary(&self) -> HubSummary {
        let (events, events_dropped) = {
            let store = self.inner.events.lock();
            (store.events.len() as u64, store.dropped)
        };
        HubSummary {
            events,
            events_dropped,
            spans: self.inner.trace.len() as u64,
            spans_dropped: self.inner.trace.dropped(),
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            stale_discards: self.inner.stale_discards.load(Ordering::Relaxed),
            barriers: self.inner.barriers.load(Ordering::Relaxed),
            anti_messages: self.inner.anti_messages.load(Ordering::Relaxed),
            staleness: self.staleness(),
            block_ns: self.block_time(),
            net_delay_ns: self.net_delay(),
            warp: self.inner.warp.summary(),
        }
    }

    /// Export all spans as Chrome trace-event JSON (see [`crate::perfetto`]).
    pub fn perfetto(&self) -> String {
        crate::perfetto::export(&self.inner.trace.spans(), &self.proc_names())
    }

    /// All kept spans, sorted by start time.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.trace.spans()
    }
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hub")
            .field("events", &self.event_count())
            .field("spans", &self.inner.trace.len())
            .field("warp_samples", &self.inner.warp.len())
            .finish()
    }
}

/// Serializable aggregate of everything a hub collected.
#[derive(Debug, Clone, Serialize)]
pub struct HubSummary {
    /// Raw events kept.
    pub events: u64,
    /// Raw events dropped at the capacity bound.
    pub events_dropped: u64,
    /// Spans kept.
    pub spans: u64,
    /// Spans dropped at the capacity bound.
    pub spans_dropped: u64,
    /// Reads observed (`ReadDone` events; exact despite drops).
    pub reads: u64,
    /// DSM writes observed.
    pub writes: u64,
    /// Network deliveries observed.
    pub messages: u64,
    /// Updates discarded as stale.
    pub stale_discards: u64,
    /// Barrier releases observed.
    pub barriers: u64,
    /// Rollback anti-messages observed.
    pub anti_messages: u64,
    /// Delivered-age gap per read (iterations).
    pub staleness: Histogram,
    /// Blocked-read durations (virtual ns).
    pub block_ns: Histogram,
    /// Network submit→arrival delays (virtual ns).
    pub net_delay_ns: Histogram,
    /// Warp sample distribution (§4.3).
    pub warp: WarpSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_done(staleness: u64, blocked: bool, block_ns: u64) -> ObsEvent {
        ObsEvent::ReadDone {
            t_ns: 0,
            rank: 0,
            loc: 0,
            curr_iter: 10,
            requested: 5,
            delivered: 10 - staleness,
            staleness,
            blocked,
            block_ns,
        }
    }

    #[test]
    fn emit_updates_derived_metrics() {
        let hub = Hub::new();
        hub.emit(read_done(3, false, 0));
        hub.emit(read_done(0, true, 1_000));
        hub.emit(ObsEvent::NetDeliver {
            t_ns: 5,
            src: 0,
            dst: 1,
            delay_ns: 2_000,
        });
        hub.emit(ObsEvent::AntiMessage {
            t_ns: 6,
            rank: 1,
            loc: 0,
            age: 4,
        });
        let s = hub.summary();
        assert_eq!(s.reads, 2);
        assert_eq!(s.messages, 1);
        assert_eq!(s.anti_messages, 1);
        assert_eq!(s.staleness.count(), 2);
        assert_eq!(s.staleness.max(), 3);
        assert_eq!(s.block_ns.count(), 1);
        assert_eq!(s.net_delay_ns.max(), 2_000);
        assert_eq!(s.events, 4);
        assert_eq!(s.events_dropped, 0);
    }

    #[test]
    fn counters_survive_event_overflow() {
        let hub = Hub::with_event_capacity(1);
        for _ in 0..5 {
            hub.emit(read_done(1, false, 0));
        }
        let s = hub.summary();
        assert_eq!(s.events, 1);
        assert_eq!(s.events_dropped, 4);
        assert_eq!(s.reads, 5);
        assert_eq!(s.staleness.count(), 5);
    }

    #[test]
    fn clones_share_the_sink() {
        let hub = Hub::new();
        let clone = hub.clone();
        clone.span(0, 0, 10, SpanKind::Compute, "run");
        clone.warp_sample(0, 1.5);
        clone.set_proc_name(0, "island0");
        assert_eq!(hub.spans().len(), 1);
        assert_eq!(hub.warp().len(), 1);
        assert_eq!(hub.proc_names()[&0], "island0");
    }
}
