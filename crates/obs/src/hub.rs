//! The instrumentation hub: one cloneable sink every layer can share.
//!
//! A [`Hub`] collects three streams — structured [`ObsEvent`]s, execution
//! [`Span`]s, warp samples — and maintains derived metrics (staleness,
//! block-time and network-delay [`Histogram`]s, event-kind counters) as a
//! side effect of [`Hub::emit`]. Raw event and span storage is bounded
//! (overflow bumps drop counters); the histograms and counters stay exact
//! regardless, so long experiment sweeps keep correct aggregates even when
//! the raw streams saturate.
//!
//! Layers hold an `Option<Hub>`: detached (`None`) costs a single branch
//! per event site — see the `obs/` group in `crates/bench/benches`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use crate::event::ObsEvent;
use crate::hist::Histogram;
use crate::live::{LiveSink, ProcSched, SchedDelta, SchedSummary};
use crate::span::{Span, SpanKind, Trace, TraceTotals};
use crate::warp::{WarpSummary, WarpTimeline};
use crate::Label;

/// Events kept before the hub starts counting drops instead.
const DEFAULT_EVENT_CAPACITY: usize = 1 << 18;

/// Write→release flow records kept for Perfetto export before the anatomy
/// state starts counting drops instead (the aggregates stay exact).
const FLOW_CAPACITY: usize = 1 << 14;

/// A consumer of the hub's live event stream, attached with
/// [`Hub::set_tap`]. The audit layer implements this to drive its
/// invariant monitors online; the hub itself stays ignorant of what the
/// sink does. A tap observes events but must never feed anything back
/// into the hub's counters, histograms, or event store — that contract is
/// what keeps tap-on runs byte-identical to tap-off runs in every report
/// section the tap does not own.
pub trait EventSink: Send + Sync {
    /// Called synchronously for every [`Hub::emit`], after derived
    /// metrics are updated and the flight ring is fed, before the event
    /// enters raw storage.
    fn on_event(&self, ev: &ObsEvent);

    /// Called at each program (run) boundary when one hub observes many
    /// back-to-back programs, as sweep bins do. Sinks tracking
    /// per-program state (barrier epochs, sequence dedup, write
    /// watermarks) reset it here.
    fn on_run_boundary(&self) {}
}

struct EventStore {
    events: Vec<ObsEvent>,
    dropped: u64,
    capacity: usize,
}

/// Aggregation cell behind one causal dependency edge (reader, loc,
/// writer). Kept private; exported as [`DepEdge`] rows.
#[derive(Default)]
struct DepAgg {
    blocks: u64,
    block_ns: u64,
    queued_ns: u64,
    inflight_ns: u64,
    retrans_ns: u64,
    last_write_iter: u64,
    last_msg_seq: u64,
}

struct HubInner {
    events: Mutex<EventStore>,
    trace: Trace,
    warp: WarpTimeline,
    staleness: Mutex<Histogram>,
    block_ns: Mutex<Histogram>,
    net_delay_ns: Mutex<Histogram>,
    rollback: Mutex<Histogram>,
    names: Mutex<BTreeMap<u32, String>>,
    loc_names: Mutex<BTreeMap<u32, String>>,
    /// Per-location staleness heatmap: loc → delivered-age histogram.
    heat: Mutex<BTreeMap<u32, Histogram>>,
    /// Causal dependency edges: (reader, loc, writer) → aggregate.
    deps: Mutex<BTreeMap<(u32, u32, u32), DepAgg>>,
    /// Virtual-time profiler samples: (pid, phase, detail) → count.
    profile: Mutex<BTreeMap<(u32, String, String), u64>>,
    /// Per-pid phase annotation for blocked-time attribution
    /// (phase, detail), set by layers around blocking operations.
    phase_ann: Mutex<BTreeMap<u32, (String, String)>>,
    /// Profiler sampling period in virtual ns (0 = disabled).
    profile_every_ns: AtomicU64,
    snapshots: Mutex<Vec<MetricSnapshot>>,
    /// Virtual-time snapshot cadence (0 = disabled).
    snap_every_ns: AtomicU64,
    /// Next virtual instant at which a snapshot is due.
    snap_next_ns: AtomicU64,
    /// Attached live-feed sink, if any ([`Hub::set_live`]); `live_on`
    /// mirrors its presence so the snapshot path pays one relaxed load
    /// instead of a lock when no feed is attached.
    live: Mutex<Option<LiveSink>>,
    live_on: AtomicBool,
    /// Whether wall-clock scheduler accounting was requested
    /// ([`Hub::enable_wall`]); simulations check it before attaching
    /// their accounting, so detached runs never touch `Instant::now`.
    wall_on: AtomicBool,
    /// Attached event tap ([`Hub::set_tap`]); `tap_on` mirrors its
    /// presence so emitters without a tap pay one relaxed load.
    tap: Mutex<Option<Arc<dyn EventSink>>>,
    tap_on: AtomicBool,
    /// Flight-recorder ring of the most recent events
    /// ([`Hub::enable_flight`]); bounded to `flight_cap` entries, oldest
    /// dropped first. `flight_cap == 0` means disabled.
    flight: Mutex<VecDeque<ObsEvent>>,
    flight_cap: AtomicU64,
    /// Whether the staleness-anatomy tracer is armed
    /// ([`Hub::enable_staleness`]); DSM layers check it before emitting
    /// `ReadAnatomy` events, so tracer-off runs never see one.
    staleness_on: AtomicBool,
    /// Per-stage staleness anatomy aggregation, fed by `ReadAnatomy` meta
    /// events when the tracer is armed. Lives outside [`HubSummary`] so
    /// tracer-on reports stay byte-identical to tracer-off reports in
    /// every section the tracer does not own.
    anatomy: Mutex<Anatomy>,
    /// Scheduler wall-clock accounting, accumulated across every
    /// simulation that flushed into this hub ([`Hub::note_sched`]).
    sched_events: AtomicU64,
    sched_parks: AtomicU64,
    sched_unparks: AtomicU64,
    sched_exec_ns: AtomicU64,
    sched_wall_ns: AtomicU64,
    /// Per-pid `(exec_ns, slices)` scheduler accounting.
    sched_procs: Mutex<BTreeMap<u32, (u64, u64)>>,
    /// Park-duration histogram (wall ns between a process re-parking and
    /// its next slice), merged from simulation accounting batches.
    sched_park: Mutex<Histogram>,
    reads: AtomicU64,
    writes: AtomicU64,
    messages: AtomicU64,
    stale_discards: AtomicU64,
    barriers: AtomicU64,
    anti_messages: AtomicU64,
    faults_dropped: AtomicU64,
    faults_duplicated: AtomicU64,
    retransmits: AtomicU64,
    degraded_reads: AtomicU64,
    suspected_writers: AtomicU64,
    checkpoints: AtomicU64,
    restores: AtomicU64,
    mailbox_warnings: AtomicU64,
}

/// The shared instrumentation hub. Cloning is cheap (an `Arc` bump); all
/// clones feed the same sink.
#[derive(Clone)]
pub struct Hub {
    inner: Arc<HubInner>,
}

impl Default for Hub {
    fn default() -> Self {
        Hub::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Hub {
    /// A fresh hub with default storage bounds.
    pub fn new() -> Self {
        Hub::default()
    }

    /// A fresh hub keeping at most `capacity` raw events (derived metrics
    /// stay exact past the bound).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Hub {
            inner: Arc::new(HubInner {
                events: Mutex::new(EventStore {
                    events: Vec::new(),
                    dropped: 0,
                    capacity,
                }),
                trace: Trace::new(),
                warp: WarpTimeline::new(),
                staleness: Mutex::new(Histogram::new()),
                block_ns: Mutex::new(Histogram::new()),
                net_delay_ns: Mutex::new(Histogram::new()),
                rollback: Mutex::new(Histogram::new()),
                names: Mutex::new(BTreeMap::new()),
                loc_names: Mutex::new(BTreeMap::new()),
                heat: Mutex::new(BTreeMap::new()),
                deps: Mutex::new(BTreeMap::new()),
                profile: Mutex::new(BTreeMap::new()),
                phase_ann: Mutex::new(BTreeMap::new()),
                profile_every_ns: AtomicU64::new(0),
                snapshots: Mutex::new(Vec::new()),
                snap_every_ns: AtomicU64::new(0),
                snap_next_ns: AtomicU64::new(0),
                live: Mutex::new(None),
                live_on: AtomicBool::new(false),
                tap: Mutex::new(None),
                tap_on: AtomicBool::new(false),
                flight: Mutex::new(VecDeque::new()),
                flight_cap: AtomicU64::new(0),
                staleness_on: AtomicBool::new(false),
                anatomy: Mutex::new(Anatomy::default()),
                wall_on: AtomicBool::new(false),
                sched_events: AtomicU64::new(0),
                sched_parks: AtomicU64::new(0),
                sched_unparks: AtomicU64::new(0),
                sched_exec_ns: AtomicU64::new(0),
                sched_wall_ns: AtomicU64::new(0),
                sched_procs: Mutex::new(BTreeMap::new()),
                sched_park: Mutex::new(Histogram::new()),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                stale_discards: AtomicU64::new(0),
                barriers: AtomicU64::new(0),
                anti_messages: AtomicU64::new(0),
                faults_dropped: AtomicU64::new(0),
                faults_duplicated: AtomicU64::new(0),
                retransmits: AtomicU64::new(0),
                degraded_reads: AtomicU64::new(0),
                suspected_writers: AtomicU64::new(0),
                checkpoints: AtomicU64::new(0),
                restores: AtomicU64::new(0),
                mailbox_warnings: AtomicU64::new(0),
            }),
        }
    }

    /// Record a structured event, updating derived metrics first so they
    /// survive raw-event overflow.
    pub fn emit(&self, ev: ObsEvent) {
        let t_ns = ev.t_ns();
        if ev.is_meta() {
            // Recovery-layer lifecycle events bypass counters, the raw
            // store, and the metric-snapshot clock entirely (see
            // `ObsEvent::is_meta`): snapshot-on runs must stay
            // byte-identical to snapshot-off runs in every section the
            // recovery layer does not own. The flight ring and the audit
            // tap still see them — those own their outputs.
            if self.inner.staleness_on.load(Ordering::Relaxed) {
                if let ObsEvent::ReadAnatomy { .. } = &ev {
                    self.anatomy_record(&ev);
                }
            }
            if self.inner.flight_cap.load(Ordering::Relaxed) > 0 {
                self.flight_push(ev.clone());
            }
            if self.inner.tap_on.load(Ordering::Relaxed) {
                let tap = self.inner.tap.lock().clone();
                if let Some(tap) = tap {
                    tap.on_event(&ev);
                }
            }
            return;
        }
        match ev {
            ObsEvent::ReadDone {
                loc,
                staleness,
                blocked,
                block_ns,
                ..
            } => {
                self.inner.reads.fetch_add(1, Ordering::Relaxed);
                self.inner.staleness.lock().record(staleness);
                self.inner
                    .heat
                    .lock()
                    .entry(loc)
                    .or_insert_with(Histogram::new)
                    .record(staleness);
                if blocked {
                    self.inner.block_ns.lock().record(block_ns);
                }
            }
            ObsEvent::ReadDep {
                reader,
                writer,
                loc,
                write_iter,
                msg_seq,
                block_ns,
                queued_ns,
                inflight_ns,
                retrans_ns,
                ..
            } => {
                let mut deps = self.inner.deps.lock();
                let e = deps.entry((reader, loc, writer)).or_default();
                e.blocks += 1;
                e.block_ns += block_ns;
                e.queued_ns += queued_ns;
                e.inflight_ns += inflight_ns;
                e.retrans_ns += retrans_ns;
                if write_iter >= e.last_write_iter {
                    e.last_write_iter = write_iter;
                    e.last_msg_seq = msg_seq;
                }
            }
            ObsEvent::Write { .. } => {
                self.inner.writes.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::NetDeliver { delay_ns, .. } => {
                self.inner.messages.fetch_add(1, Ordering::Relaxed);
                self.inner.net_delay_ns.lock().record(delay_ns);
            }
            ObsEvent::StaleDiscard { .. } => {
                self.inner.stale_discards.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::BarrierExit { .. } => {
                self.inner.barriers.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::AntiMessage { .. } => {
                self.inner.anti_messages.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::FaultDrop { .. } => {
                self.inner.faults_dropped.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::FaultDup { .. } => {
                self.inner.faults_duplicated.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Retransmit { .. } => {
                self.inner.retransmits.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::ReadDegraded { .. } => {
                self.inner.degraded_reads.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WriterSuspected { .. } => {
                self.inner.suspected_writers.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Checkpoint { .. } => {
                self.inner.checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::Restore { rollback, .. } => {
                self.inner.restores.fetch_add(1, Ordering::Relaxed);
                self.inner.rollback.lock().record(rollback);
            }
            ObsEvent::MailboxHigh { .. } => {
                self.inner.mailbox_warnings.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        if self.inner.flight_cap.load(Ordering::Relaxed) > 0 {
            self.flight_push(ev.clone());
        }
        if self.inner.tap_on.load(Ordering::Relaxed) {
            let tap = self.inner.tap.lock().clone();
            if let Some(tap) = tap {
                tap.on_event(&ev);
            }
        }
        {
            let mut store = self.inner.events.lock();
            if store.events.len() >= store.capacity {
                store.dropped += 1;
            } else {
                store.events.push(ev);
            }
        }
        self.maybe_snapshot(t_ns);
    }

    /// Attach an event tap: `sink.on_event` is called synchronously for
    /// every emitted event from now on (see [`EventSink`]). One tap at a
    /// time; attaching replaces the previous sink.
    pub fn set_tap(&self, sink: Arc<dyn EventSink>) {
        *self.inner.tap.lock() = Some(sink);
        self.inner.tap_on.store(true, Ordering::Relaxed);
    }

    /// Whether an event tap is attached.
    pub fn tap_enabled(&self) -> bool {
        self.inner.tap_on.load(Ordering::Relaxed)
    }

    /// Mark a program (run) boundary: sweep bins that observe many
    /// back-to-back programs through one hub call this at each run start
    /// so the attached tap can reset per-program monitor state. A no-op
    /// without a tap.
    pub fn note_run_boundary(&self) {
        if self.inner.tap_on.load(Ordering::Relaxed) {
            let tap = self.inner.tap.lock().clone();
            if let Some(tap) = tap {
                tap.on_run_boundary();
            }
        }
    }

    /// Enable the flight-recorder ring: keep the most recent `n` events
    /// (oldest dropped first) for post-mortem dumps. `n == 0` disables
    /// the ring and clears it. The ring is a side channel — it never
    /// touches the counters, histograms, or raw event store, so
    /// flight-on runs report byte-identical to flight-off runs.
    pub fn enable_flight(&self, n: u64) {
        self.inner.flight_cap.store(n, Ordering::Relaxed);
        let mut ring = self.inner.flight.lock();
        if n == 0 {
            ring.clear();
        } else {
            while ring.len() as u64 > n {
                ring.pop_front();
            }
        }
    }

    /// Whether the flight-recorder ring is enabled.
    pub fn flight_enabled(&self) -> bool {
        self.inner.flight_cap.load(Ordering::Relaxed) > 0
    }

    /// The flight ring's configured capacity (0 = disabled).
    pub fn flight_capacity(&self) -> u64 {
        self.inner.flight_cap.load(Ordering::Relaxed)
    }

    /// The flight ring's current contents, oldest first.
    pub fn flight_events(&self) -> Vec<ObsEvent> {
        self.inner.flight.lock().iter().cloned().collect()
    }

    /// Append a marker event to the flight ring *only* — bypassing the
    /// counters, histograms, raw store, and tap. Layers use this to leave
    /// post-mortem breadcrumbs (e.g. the scheduler's deadlock diagnosis)
    /// without perturbing any deterministic report section. A no-op when
    /// the ring is disabled.
    pub fn flight_note(&self, ev: ObsEvent) {
        if self.inner.flight_cap.load(Ordering::Relaxed) > 0 {
            self.flight_push(ev);
        }
    }

    /// Drain another hub's flight ring into this one (oldest first,
    /// trimming to this hub's capacity). Sweep bins that give each cell
    /// its own hub call this in grid order, so the main hub's ring is the
    /// deterministic concatenation of the per-cell rings. A no-op when
    /// this hub's ring is disabled.
    pub fn adopt_flight(&self, other: &Hub) {
        if !self.flight_enabled() {
            return;
        }
        let drained: Vec<ObsEvent> = other.inner.flight.lock().drain(..).collect();
        for ev in drained {
            self.flight_push(ev);
        }
    }

    fn flight_push(&self, ev: ObsEvent) {
        let cap = self.inner.flight_cap.load(Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        let mut ring = self.inner.flight.lock();
        while ring.len() as u64 >= cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Enable periodic metric snapshots every `every_ns` of virtual time.
    /// Snapshots are cut lazily, on the first event at or past each
    /// cadence boundary, so they cost nothing between events and keep
    /// long runs analyzable even after raw-event storage saturates.
    ///
    /// `sample_every(0)` is the explicit "disabled" no-op: no snapshots
    /// are cut, no pending boundary survives (calling it after a nonzero
    /// cadence turns sampling off), and an attached live feed carries
    /// only its `start` and `final` lines.
    pub fn sample_every(&self, every_ns: u64) {
        self.inner.snap_every_ns.store(every_ns, Ordering::Relaxed);
        // With every_ns == 0 the sentinel keeps maybe_snapshot's second
        // check unreachable even for racing emitters mid-reconfiguration.
        let next = if every_ns == 0 { u64::MAX } else { every_ns };
        self.inner.snap_next_ns.store(next, Ordering::Relaxed);
    }

    /// Cut a snapshot now if the cadence says one is due at `t_ns`, and
    /// stream it to the live feed when one is attached.
    fn maybe_snapshot(&self, t_ns: u64) {
        let every = self.inner.snap_every_ns.load(Ordering::Relaxed);
        if every == 0 || t_ns < self.inner.snap_next_ns.load(Ordering::Relaxed) {
            return;
        }
        let snap = {
            let mut snaps = self.inner.snapshots.lock();
            // Re-check under the lock: a racing emitter may have taken
            // this boundary's snapshot already.
            if t_ns < self.inner.snap_next_ns.load(Ordering::Relaxed) {
                return;
            }
            self.inner
                .snap_next_ns
                .store(t_ns - t_ns % every + every, Ordering::Relaxed);
            let snap = self.snapshot_at(t_ns);
            snaps.push(snap);
            snap
        };
        // Feed writes happen outside the snapshots lock: the live mutex
        // alone serializes lines, and emitters without a feed attached
        // pay exactly this one relaxed load.
        if self.inner.live_on.load(Ordering::Relaxed) {
            let sched = self.sched();
            if let Some(sink) = self.inner.live.lock().as_mut() {
                sink.snap(snap, sched);
            }
        }
    }

    /// Attach a live-feed sink: every snapshot cut from now on is also
    /// written to `out` as one line of versioned JSON (see
    /// [`crate::live`]), starting with a `start` header line. `bench`
    /// names the producing binary in the header. The feed is an *extra*
    /// output — the snapshot series, summary, and report bytes are
    /// identical with and without it.
    pub fn set_live(&self, out: Box<dyn std::io::Write + Send>, bench: &str) {
        let every = self.inner.snap_every_ns.load(Ordering::Relaxed);
        *self.inner.live.lock() = Some(LiveSink::new(out, bench, every));
        self.inner.live_on.store(true, Ordering::Relaxed);
    }

    /// Whether a live-feed sink is attached.
    pub fn live_enabled(&self) -> bool {
        self.inner.live_on.load(Ordering::Relaxed)
    }

    /// Write the feed's closing `final` line from the end-of-run summary
    /// (a no-op without an attached feed). `obs` is passed in rather than
    /// resampled so the line carries exactly the counters of the summary
    /// embedded in the run report — including merged per-cell summaries a
    /// sweep accumulated outside this hub.
    pub fn live_final(&self, obs: &HubSummary) {
        if !self.inner.live_on.load(Ordering::Relaxed) {
            return;
        }
        let sched = self.sched();
        if let Some(sink) = self.inner.live.lock().as_mut() {
            sink.finish(obs, sched);
        }
    }

    /// Request wall-clock scheduler accounting: simulations that observe
    /// this hub check [`wants_wall`](Hub::wants_wall) and attach their
    /// accounting (`SimBuilder::attach_wall`) when set. Off by default —
    /// wall accounting reads the host clock, so it is only ever opt-in.
    pub fn enable_wall(&self) {
        self.inner.wall_on.store(true, Ordering::Relaxed);
    }

    /// Whether wall-clock scheduler accounting was requested.
    pub fn wants_wall(&self) -> bool {
        self.inner.wall_on.load(Ordering::Relaxed)
    }

    /// Fold one batch of scheduler wall-clock accounting into the hub
    /// (deltas add; called periodically and at teardown by accounting
    /// simulations).
    pub fn note_sched(&self, d: &SchedDelta) {
        self.inner
            .sched_events
            .fetch_add(d.events, Ordering::Relaxed);
        self.inner.sched_parks.fetch_add(d.parks, Ordering::Relaxed);
        self.inner
            .sched_unparks
            .fetch_add(d.unparks, Ordering::Relaxed);
        self.inner
            .sched_exec_ns
            .fetch_add(d.exec_ns, Ordering::Relaxed);
        self.inner
            .sched_wall_ns
            .fetch_add(d.wall_ns, Ordering::Relaxed);
        if !d.per_proc.is_empty() {
            let mut procs = self.inner.sched_procs.lock();
            for &(pid, exec_ns, slices) in &d.per_proc {
                let e = procs.entry(pid).or_insert((0, 0));
                e.0 += exec_ns;
                e.1 += slices;
            }
        }
        if d.park.count() > 0 {
            self.inner.sched_park.lock().merge(&d.park);
        }
    }

    /// Fold another hub's scheduler accounting into this one. Sweep bins
    /// that run each checkpointed cell on its own hub use this to carry
    /// the cells' wall-clock cost into the main hub (resumed cells spent
    /// no wall time in this process, so they rightly contribute nothing).
    pub fn adopt_sched(&self, other: &Hub) {
        let o = &other.inner;
        self.note_sched(&SchedDelta {
            events: o.sched_events.load(Ordering::Relaxed),
            parks: o.sched_parks.load(Ordering::Relaxed),
            unparks: o.sched_unparks.load(Ordering::Relaxed),
            exec_ns: o.sched_exec_ns.load(Ordering::Relaxed),
            wall_ns: o.sched_wall_ns.load(Ordering::Relaxed),
            per_proc: o
                .sched_procs
                .lock()
                .iter()
                .map(|(&pid, &(exec_ns, slices))| (pid, exec_ns, slices))
                .collect(),
            park: o.sched_park.lock().clone(),
        });
    }

    /// The accumulated scheduler wall-clock accounting (all zeros when no
    /// simulation ever attached it).
    pub fn sched(&self) -> SchedSummary {
        let events = self.inner.sched_events.load(Ordering::Relaxed);
        let wall_ns = self.inner.sched_wall_ns.load(Ordering::Relaxed);
        let (park_p50_ns, park_p99_ns) = {
            let park = self.inner.sched_park.lock();
            (park.quantile(0.50), park.quantile(0.99))
        };
        SchedSummary {
            events,
            parks: self.inner.sched_parks.load(Ordering::Relaxed),
            unparks: self.inner.sched_unparks.load(Ordering::Relaxed),
            exec_ns: self.inner.sched_exec_ns.load(Ordering::Relaxed),
            wall_ns,
            events_per_sec: if wall_ns == 0 {
                0.0
            } else {
                events as f64 / (wall_ns as f64 / 1e9)
            },
            park_p50_ns,
            park_p99_ns,
            procs: self
                .inner
                .sched_procs
                .lock()
                .iter()
                .map(|(&pid, &(exec_ns, slices))| ProcSched {
                    pid,
                    exec_ns,
                    slices,
                })
                .collect(),
        }
    }

    /// Sample the current derived metrics as one [`MetricSnapshot`].
    /// Called automatically on the cadence set by [`Hub::sample_every`];
    /// also usable directly for one-off probes.
    pub fn snapshot_at(&self, t_ns: u64) -> MetricSnapshot {
        let (events_dropped, spans_dropped) = (self.events_dropped(), self.inner.trace.dropped());
        let staleness = self.inner.staleness.lock();
        let block = self.inner.block_ns.lock();
        let delay = self.inner.net_delay_ns.lock();
        MetricSnapshot {
            t_ns,
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            stale_discards: self.inner.stale_discards.load(Ordering::Relaxed),
            barriers: self.inner.barriers.load(Ordering::Relaxed),
            anti_messages: self.inner.anti_messages.load(Ordering::Relaxed),
            faults_dropped: self.inner.faults_dropped.load(Ordering::Relaxed),
            retransmits: self.inner.retransmits.load(Ordering::Relaxed),
            degraded_reads: self.inner.degraded_reads.load(Ordering::Relaxed),
            staleness_p50: staleness.quantile(0.50),
            staleness_p99: staleness.quantile(0.99),
            block_ns_total: block.sum(),
            blocked_reads: block.count(),
            net_delay_p99: delay.quantile(0.99),
            events_dropped,
            spans_dropped,
        }
    }

    /// All periodic snapshots cut so far, in virtual-time order.
    pub fn snapshots(&self) -> Vec<MetricSnapshot> {
        self.inner.snapshots.lock().clone()
    }

    /// Record an execution span (see [`Trace::record`]).
    pub fn span(
        &self,
        pid: u32,
        start_ns: u64,
        end_ns: u64,
        kind: SpanKind,
        label: impl Into<Label>,
    ) {
        self.inner.trace.record(pid, start_ns, end_ns, kind, label);
    }

    /// Record a warp sample at virtual time `t_ns`.
    pub fn warp_sample(&self, t_ns: u64, warp: f64) {
        self.inner.warp.record(t_ns, warp);
    }

    /// Name a pid/rank for trace exports (e.g. `"island3"`, `"loader"`).
    pub fn set_proc_name(&self, pid: u32, name: impl Into<String>) {
        self.inner.names.lock().insert(pid, name.into());
    }

    /// Name a DSM location for heatmap/`nscc why` rendering.
    pub fn set_loc_name(&self, loc: u32, name: impl Into<String>) {
        self.inner.loc_names.lock().insert(loc, name.into());
    }

    /// Registered location names.
    pub fn loc_names(&self) -> BTreeMap<u32, String> {
        self.inner.loc_names.lock().clone()
    }

    /// Per-location staleness heatmap rows, sorted by location.
    pub fn heat(&self) -> Vec<HeatRow> {
        self.inner
            .heat
            .lock()
            .iter()
            .map(|(loc, h)| HeatRow {
                loc: *loc,
                staleness: h.clone(),
            })
            .collect()
    }

    /// Aggregated causal dependency edges, sorted by (reader, loc, writer).
    pub fn deps(&self) -> Vec<DepEdge> {
        self.inner
            .deps
            .lock()
            .iter()
            .map(|(&(reader, loc, writer), a)| DepEdge {
                reader,
                loc,
                writer,
                blocks: a.blocks,
                block_ns: a.block_ns,
                queued_ns: a.queued_ns,
                inflight_ns: a.inflight_ns,
                retrans_ns: a.retrans_ns,
                last_write_iter: a.last_write_iter,
                last_msg_seq: a.last_msg_seq,
            })
            .collect()
    }

    /// Enable the deterministic virtual-time sampling profiler: span
    /// sites contribute one sample per `period_ns` of virtual time
    /// covered (0 disables). Storage is a sorted map, so the folded
    /// export is byte-identical across same-seed runs.
    pub fn profile_every(&self, period_ns: u64) {
        self.inner
            .profile_every_ns
            .store(period_ns, Ordering::Relaxed);
    }

    /// The profiler sampling period (0 = disabled).
    pub fn profile_period(&self) -> u64 {
        self.inner.profile_every_ns.load(Ordering::Relaxed)
    }

    /// Credit `samples` profiler samples to `(pid, phase, detail)`.
    /// `detail` may be empty (the folded line then has two segments).
    pub fn profile_add(&self, pid: u32, phase: &str, detail: &str, samples: u64) {
        if samples == 0 {
            return;
        }
        *self
            .inner
            .profile
            .lock()
            .entry((pid, phase.to_string(), detail.to_string()))
            .or_insert(0) += samples;
    }

    /// Profiler rows, sorted by (pid, phase, detail).
    pub fn profile_rows(&self) -> Vec<ProfileRow> {
        self.inner
            .profile
            .lock()
            .iter()
            .map(|((pid, phase, detail), n)| ProfileRow {
                pid: *pid,
                phase: phase.clone(),
                detail: detail.clone(),
                samples: *n,
            })
            .collect()
    }

    /// Annotate what `pid` is blocked on (e.g. `("Global_Read", "v3")`)
    /// so profiler samples taken during the block attribute to the
    /// location instead of a generic reason. Cleared with
    /// [`Hub::clear_phase`].
    pub fn annotate_phase(&self, pid: u32, phase: impl Into<String>, detail: impl Into<String>) {
        self.inner
            .phase_ann
            .lock()
            .insert(pid, (phase.into(), detail.into()));
    }

    /// Drop `pid`'s phase annotation.
    pub fn clear_phase(&self, pid: u32) {
        self.inner.phase_ann.lock().remove(&pid);
    }

    /// The current phase annotation for `pid`, if any.
    pub fn phase_of(&self, pid: u32) -> Option<(String, String)> {
        self.inner.phase_ann.lock().get(&pid).cloned()
    }

    /// The span trace shared by this hub.
    pub fn trace(&self) -> &Trace {
        &self.inner.trace
    }

    /// The warp timeline shared by this hub.
    pub fn warp(&self) -> &WarpTimeline {
        &self.inner.warp
    }

    /// Snapshot of all kept events, in emission order.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner.events.lock().events.clone()
    }

    /// Number of kept events.
    pub fn event_count(&self) -> usize {
        self.inner.events.lock().events.len()
    }

    /// Events dropped after the capacity was reached.
    pub fn events_dropped(&self) -> u64 {
        self.inner.events.lock().dropped
    }

    /// Snapshot of the staleness histogram (delivered-age gap per read).
    pub fn staleness(&self) -> Histogram {
        self.inner.staleness.lock().clone()
    }

    /// Snapshot of the blocked-read time histogram (virtual ns).
    pub fn block_time(&self) -> Histogram {
        self.inner.block_ns.lock().clone()
    }

    /// Snapshot of the network delay histogram (virtual ns).
    pub fn net_delay(&self) -> Histogram {
        self.inner.net_delay_ns.lock().clone()
    }

    /// Snapshot of the rollback-depth histogram (iterations rolled back
    /// per restore; the recovery analogue of staleness).
    pub fn rollback(&self) -> Histogram {
        self.inner.rollback.lock().clone()
    }

    /// Registered pid/rank names.
    pub fn proc_names(&self) -> BTreeMap<u32, String> {
        self.inner.names.lock().clone()
    }

    /// Per-process span totals (see [`Trace::totals`]).
    pub fn totals(&self, pid: u32) -> TraceTotals {
        self.inner.trace.totals(pid)
    }

    /// Aggregate summary for embedding in a run report.
    pub fn summary(&self) -> HubSummary {
        let (events, events_dropped) = {
            let store = self.inner.events.lock();
            (store.events.len() as u64, store.dropped)
        };
        HubSummary {
            events,
            events_dropped,
            spans: self.inner.trace.len() as u64,
            spans_dropped: self.inner.trace.dropped(),
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            stale_discards: self.inner.stale_discards.load(Ordering::Relaxed),
            barriers: self.inner.barriers.load(Ordering::Relaxed),
            anti_messages: self.inner.anti_messages.load(Ordering::Relaxed),
            faults_dropped: self.inner.faults_dropped.load(Ordering::Relaxed),
            faults_duplicated: self.inner.faults_duplicated.load(Ordering::Relaxed),
            retransmits: self.inner.retransmits.load(Ordering::Relaxed),
            degraded_reads: self.inner.degraded_reads.load(Ordering::Relaxed),
            suspected_writers: self.inner.suspected_writers.load(Ordering::Relaxed),
            checkpoints: self.inner.checkpoints.load(Ordering::Relaxed),
            restores: self.inner.restores.load(Ordering::Relaxed),
            mailbox_warnings: self.inner.mailbox_warnings.load(Ordering::Relaxed),
            staleness: self.staleness(),
            block_ns: self.block_time(),
            net_delay_ns: self.net_delay(),
            rollback: self.rollback(),
            warp: self.inner.warp.summary(),
            snapshots: self.snapshots(),
            heat: self.heat(),
            deps: self.deps(),
            profile: self.profile_rows(),
            loc_names: self.loc_names(),
            proc_names: self.proc_names(),
        }
    }

    /// Export the full raw streams — events, spans, process names, drop
    /// accounting — as one JSON document, the event-dump input format of
    /// `nscc inspect` (schema-stamped with [`crate::SCHEMA_VERSION`]).
    pub fn export_events_json(&self) -> String {
        #[derive(Serialize)]
        struct Dump {
            schema_version: u32,
            proc_names: BTreeMap<u32, String>,
            events_dropped: u64,
            spans_dropped: u64,
            events: Vec<ObsEvent>,
            spans: Vec<Span>,
        }
        crate::json::to_json(&Dump {
            schema_version: crate::SCHEMA_VERSION,
            proc_names: self.proc_names(),
            events_dropped: self.events_dropped(),
            spans_dropped: self.inner.trace.dropped(),
            events: self.events(),
            spans: self.spans(),
        })
    }

    /// Export all spans as Chrome trace-event JSON (see [`crate::perfetto`]).
    /// When the staleness tracer kept write→apply→release flow records,
    /// they are appended as Chrome flow events binding the existing slices.
    pub fn perfetto(&self) -> String {
        let flows = self.staleness_flows();
        crate::perfetto::export_with_flows(&self.inner.trace.spans(), &self.proc_names(), &flows)
    }

    /// All kept spans, sorted by start time.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.trace.spans()
    }

    /// Arm the staleness-anatomy tracer: DSM nodes that observe this hub
    /// check [`staleness_enabled`](Hub::staleness_enabled) before emitting
    /// `ReadAnatomy` meta events, so tracer-off runs never see one and
    /// their report bytes are untouched. Off by default.
    pub fn enable_staleness(&self) {
        self.inner.staleness_on.store(true, Ordering::Relaxed);
    }

    /// Whether the staleness-anatomy tracer is armed.
    pub fn staleness_enabled(&self) -> bool {
        self.inner.staleness_on.load(Ordering::Relaxed)
    }

    /// Fold one `ReadAnatomy` event into the anatomy aggregates.
    /// Conservation (`stage sum == observed age`) is re-checked here so the
    /// report section carries its own verdict even when no auditor taps the
    /// stream.
    fn anatomy_record(&self, ev: &ObsEvent) {
        let &ObsEvent::ReadAnatomy {
            t_ns,
            reader,
            writer,
            loc,
            age_ns,
            wait_ns,
            publish_ns,
            transit_ns,
            fault_ns,
            retrans_ns,
            queue_ns,
            apply_ns,
            ..
        } = ev
        else {
            return;
        };
        let sum = wait_ns
            .wrapping_add(publish_ns)
            .wrapping_add(transit_ns)
            .wrapping_add(fault_ns)
            .wrapping_add(retrans_ns)
            .wrapping_add(queue_ns)
            .wrapping_add(apply_ns);
        let mut a = self.inner.anatomy.lock();
        a.released += 1;
        a.conservation_checked += 1;
        if sum != age_ns {
            a.conservation_violations += 1;
        }
        a.age_ns.record(age_ns);
        a.stages.record(
            wait_ns, publish_ns, transit_ns, fault_ns, retrans_ns, queue_ns, apply_ns,
        );
        a.by_loc.entry(loc).or_insert_with(StageSet::new).record(
            wait_ns, publish_ns, transit_ns, fault_ns, retrans_ns, queue_ns, apply_ns,
        );
        a.by_link
            .entry((writer, reader))
            .or_insert_with(StageSet::new)
            .record(
                wait_ns, publish_ns, transit_ns, fault_ns, retrans_ns, queue_ns, apply_ns,
            );
        if a.flows.len() < FLOW_CAPACITY {
            a.flow_seq += 1;
            let id = a.flow_seq;
            a.flows.push(FlowRec {
                id,
                writer,
                reader,
                loc,
                // The write existed `age - wait` before the release (wait
                // covers only the part of the block that predates it).
                write_ns: t_ns.saturating_sub(age_ns.saturating_sub(wait_ns)),
                recv_ns: t_ns.saturating_sub(apply_ns),
                release_ns: t_ns,
            });
        } else {
            a.flows_dropped += 1;
        }
    }

    /// The anatomy aggregates as a serializable report section. Callers
    /// decide `null`-ness: bench bins embed this only when the tracer was
    /// armed, keeping tracer-off report bytes identical.
    pub fn staleness_summary(&self) -> StalenessSummary {
        let a = self.inner.anatomy.lock();
        StalenessSummary {
            released: a.released,
            conservation_checked: a.conservation_checked,
            conservation_violations: a.conservation_violations,
            flows_kept: a.flows.len() as u64,
            flows_dropped: a.flows_dropped,
            age_ns: a.age_ns.clone(),
            stages: a.stages.clone(),
            by_loc: a
                .by_loc
                .iter()
                .map(|(&loc, stages)| LocStages {
                    loc,
                    stages: stages.clone(),
                })
                .collect(),
            by_link: a
                .by_link
                .iter()
                .map(|(&(writer, reader), stages)| LinkStages {
                    writer,
                    reader,
                    stages: stages.clone(),
                })
                .collect(),
        }
    }

    /// Drain another hub's anatomy aggregates into this one (sweep bins
    /// with per-cell hubs call this in grid order, mirroring
    /// [`adopt_flight`](Hub::adopt_flight) / [`adopt_sched`](Hub::adopt_sched)).
    /// Flow records are re-numbered into this hub's id sequence and trimmed
    /// to its capacity.
    pub fn adopt_anatomy(&self, other: &Hub) {
        let o = std::mem::take(&mut *other.inner.anatomy.lock());
        let mut a = self.inner.anatomy.lock();
        a.released += o.released;
        a.conservation_checked += o.conservation_checked;
        a.conservation_violations += o.conservation_violations;
        a.flows_dropped += o.flows_dropped;
        a.age_ns.merge(&o.age_ns);
        a.stages.merge(&o.stages);
        for (loc, s) in o.by_loc {
            a.by_loc.entry(loc).or_insert_with(StageSet::new).merge(&s);
        }
        for (link, s) in o.by_link {
            a.by_link
                .entry(link)
                .or_insert_with(StageSet::new)
                .merge(&s);
        }
        for f in o.flows {
            if a.flows.len() < FLOW_CAPACITY {
                a.flow_seq += 1;
                let id = a.flow_seq;
                a.flows.push(FlowRec { id, ..f });
            } else {
                a.flows_dropped += 1;
            }
        }
    }

    /// The write→apply→release flow records kept for Perfetto export.
    pub fn staleness_flows(&self) -> Vec<FlowRec> {
        self.inner.anatomy.lock().flows.clone()
    }
}

impl fmt::Debug for Hub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hub")
            .field("events", &self.event_count())
            .field("spans", &self.inner.trace.len())
            .field("warp_samples", &self.inner.warp.len())
            .finish()
    }
}

/// Serializable aggregate of everything a hub collected.
#[derive(Debug, Clone, Serialize)]
pub struct HubSummary {
    /// Raw events kept.
    pub events: u64,
    /// Raw events dropped at the capacity bound.
    pub events_dropped: u64,
    /// Spans kept.
    pub spans: u64,
    /// Spans dropped at the capacity bound.
    pub spans_dropped: u64,
    /// Reads observed (`ReadDone` events; exact despite drops).
    pub reads: u64,
    /// DSM writes observed.
    pub writes: u64,
    /// Network deliveries observed.
    pub messages: u64,
    /// Updates discarded as stale.
    pub stale_discards: u64,
    /// Barrier releases observed.
    pub barriers: u64,
    /// Rollback anti-messages observed.
    pub anti_messages: u64,
    /// Frames dropped by the fault-injection layer.
    pub faults_dropped: u64,
    /// Spurious duplicate deliveries injected by the fault layer.
    pub faults_duplicated: u64,
    /// Reliable-delivery retransmissions observed.
    pub retransmits: u64,
    /// Reads that timed out and returned a degraded (stale) value.
    pub degraded_reads: u64,
    /// Failure-detector suspicions raised against peers.
    pub suspected_writers: u64,
    /// Recovery checkpoints cut.
    pub checkpoints: u64,
    /// Restores from checkpoint after a crash.
    pub restores: u64,
    /// Mailbox depth warn-threshold crossings.
    pub mailbox_warnings: u64,
    /// Delivered-age gap per read (iterations).
    pub staleness: Histogram,
    /// Blocked-read durations (virtual ns).
    pub block_ns: Histogram,
    /// Network submit→arrival delays (virtual ns).
    pub net_delay_ns: Histogram,
    /// Rollback depth per restore (iterations; bounded by the age bound
    /// when recovery runs in a strict mode).
    pub rollback: Histogram,
    /// Warp sample distribution (§4.3).
    pub warp: WarpSummary,
    /// Periodic metric snapshots (empty unless [`Hub::sample_every`] was
    /// enabled): the convergence-vs-virtual-time curve of the run.
    pub snapshots: Vec<MetricSnapshot>,
    /// Per-location staleness heatmap (sorted by location). Serialized as
    /// an array so metric-diff tooling, which only walks numeric object
    /// fields, stays blind to it.
    pub heat: Vec<HeatRow>,
    /// Aggregated causal read-dependency edges (sorted by reader, loc,
    /// writer). Array-valued for the same diff-blindness reason.
    pub deps: Vec<DepEdge>,
    /// Virtual-time profiler rows (sorted by pid, phase, detail); empty
    /// unless [`Hub::profile_every`] was enabled.
    pub profile: Vec<ProfileRow>,
    /// DSM location names, for rendering heat/deps human-readably.
    pub loc_names: BTreeMap<u32, String>,
    /// Process/rank names, mirrored from the trace layer.
    pub proc_names: BTreeMap<u32, String>,
}

/// One row of the per-location staleness heatmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HeatRow {
    /// Location index.
    pub loc: u32,
    /// Delivered-age histogram for reads of this location.
    pub staleness: Histogram,
}

/// One aggregated edge of the causal read-dependency graph: everything
/// blocking reads by `reader` on `loc` owed to updates from `writer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DepEdge {
    /// Blocked reading rank.
    pub reader: u32,
    /// Location index.
    pub loc: u32,
    /// Rank whose updates released the reads.
    pub writer: u32,
    /// Number of blocking reads this edge released.
    pub blocks: u64,
    /// Total virtual ns those reads spent blocked.
    pub block_ns: u64,
    /// Total queued-for-medium ns of the releasing frames.
    pub queued_ns: u64,
    /// Total in-flight (service + propagation) ns of the releasing frames.
    pub inflight_ns: u64,
    /// Total retransmit-attributable delay ns of the releasing frames.
    pub retrans_ns: u64,
    /// Generation tag of the newest releasing write on this edge.
    pub last_write_iter: u64,
    /// Writer-local sequence number of that newest releasing message.
    pub last_msg_seq: u64,
}

/// One profiler row: virtual-time samples credited to a
/// (process, phase, detail) collapsed stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProfileRow {
    /// Sampled process/rank.
    pub pid: u32,
    /// Phase name (`compute`, `Global_Read`, `blocked`, …).
    pub phase: String,
    /// Finer attribution (location name, block reason); may be empty.
    pub detail: String,
    /// Samples credited (one per profiler period of virtual time).
    pub samples: u64,
}

impl HubSummary {
    /// Fold another summary into this one: counters add, histograms merge
    /// exactly, snapshot series concatenate in order. The warp summary is
    /// a distribution digest, so its merge is approximate — sample counts
    /// add, the mean is sample-weighted, and p50/p95/max take the
    /// pairwise max (pessimistic but deterministic). Used by sweep bins
    /// that run each cell on its own hub and need one report-level
    /// aggregate that is identical whether the sweep ran straight through
    /// or was resumed from a checkpoint.
    pub fn merge(&mut self, other: &HubSummary) {
        self.events += other.events;
        self.events_dropped += other.events_dropped;
        self.spans += other.spans;
        self.spans_dropped += other.spans_dropped;
        self.reads += other.reads;
        self.writes += other.writes;
        self.messages += other.messages;
        self.stale_discards += other.stale_discards;
        self.barriers += other.barriers;
        self.anti_messages += other.anti_messages;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.retransmits += other.retransmits;
        self.degraded_reads += other.degraded_reads;
        self.suspected_writers += other.suspected_writers;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
        self.mailbox_warnings += other.mailbox_warnings;
        self.staleness.merge(&other.staleness);
        self.block_ns.merge(&other.block_ns);
        self.net_delay_ns.merge(&other.net_delay_ns);
        self.rollback.merge(&other.rollback);
        self.warp = merge_warp(&self.warp, &other.warp);
        self.snapshots.extend(other.snapshots.iter().copied());
        merge_heat(&mut self.heat, &other.heat);
        merge_deps(&mut self.deps, &other.deps);
        merge_profile(&mut self.profile, &other.profile);
        for (k, v) in &other.loc_names {
            self.loc_names.entry(*k).or_insert_with(|| v.clone());
        }
        for (k, v) in &other.proc_names {
            self.proc_names.entry(*k).or_insert_with(|| v.clone());
        }
    }
}

/// Merge heatmap rows by location, keeping the sorted order.
fn merge_heat(into: &mut Vec<HeatRow>, other: &[HeatRow]) {
    let mut map: BTreeMap<u32, Histogram> = into.drain(..).map(|r| (r.loc, r.staleness)).collect();
    for r in other {
        map.entry(r.loc)
            .or_insert_with(Histogram::new)
            .merge(&r.staleness);
    }
    *into = map
        .into_iter()
        .map(|(loc, staleness)| HeatRow { loc, staleness })
        .collect();
}

/// Merge dependency edges by (reader, loc, writer): counters add, the
/// newest releasing write wins the `last_*` fields.
fn merge_deps(into: &mut Vec<DepEdge>, other: &[DepEdge]) {
    let mut map: BTreeMap<(u32, u32, u32), DepEdge> = into
        .drain(..)
        .map(|e| ((e.reader, e.loc, e.writer), e))
        .collect();
    for e in other {
        map.entry((e.reader, e.loc, e.writer))
            .and_modify(|m| {
                m.blocks += e.blocks;
                m.block_ns += e.block_ns;
                m.queued_ns += e.queued_ns;
                m.inflight_ns += e.inflight_ns;
                m.retrans_ns += e.retrans_ns;
                if e.last_write_iter >= m.last_write_iter {
                    m.last_write_iter = e.last_write_iter;
                    m.last_msg_seq = e.last_msg_seq;
                }
            })
            .or_insert(*e);
    }
    *into = map.into_values().collect();
}

/// Merge profiler rows by (pid, phase, detail); sample counts add.
fn merge_profile(into: &mut Vec<ProfileRow>, other: &[ProfileRow]) {
    let mut map: BTreeMap<(u32, String, String), u64> = into
        .drain(..)
        .map(|r| ((r.pid, r.phase, r.detail), r.samples))
        .collect();
    for r in other {
        *map.entry((r.pid, r.phase.clone(), r.detail.clone()))
            .or_insert(0) += r.samples;
    }
    *into = map
        .into_iter()
        .map(|((pid, phase, detail), samples)| ProfileRow {
            pid,
            phase,
            detail,
            samples,
        })
        .collect();
}

/// Pairwise merge of two warp digests (see [`HubSummary::merge`]).
fn merge_warp(a: &WarpSummary, b: &WarpSummary) -> WarpSummary {
    if a.samples == 0 {
        return *b;
    }
    if b.samples == 0 {
        return *a;
    }
    let n = a.samples + b.samples;
    WarpSummary {
        samples: n,
        mean: (a.mean * a.samples as f64 + b.mean * b.samples as f64) / n as f64,
        p50: a.p50.max(b.p50),
        p95: a.p95.max(b.p95),
        max: a.max.max(b.max),
    }
}

/// Internal accumulation state for the staleness-anatomy tracer
/// ([`Hub::enable_staleness`]). Fed exclusively by `ReadAnatomy` meta
/// events, so it stays empty — and the `staleness` report section stays
/// `null` — in tracer-off runs.
#[derive(Default)]
struct Anatomy {
    released: u64,
    conservation_checked: u64,
    conservation_violations: u64,
    flows_dropped: u64,
    flow_seq: u64,
    age_ns: Histogram,
    stages: StageSet,
    by_loc: BTreeMap<u32, StageSet>,
    by_link: BTreeMap<(u32, u32), StageSet>,
    flows: Vec<FlowRec>,
}

/// One log₂ histogram per named stage of a released read's age. The seven
/// stages partition the observed age exactly: `wait + publish + transit +
/// fault + retrans + queue + apply == age` for every traced release (the
/// conservation contract of `ObsEvent::ReadAnatomy`).
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageSet {
    /// Reader blocked before the releasing write even existed.
    pub wait_ns: Histogram,
    /// Writer-side publish overhead (value written → on the wire).
    pub publish_ns: Histogram,
    /// Baseline medium transit — what the healthy network charged.
    pub transit_ns: Histogram,
    /// Injected fault delay (stall floors, degradation, duplicate gaps).
    pub fault_ns: Histogram,
    /// Time added by retransmit attempts of the reliable layer.
    pub retrans_ns: Histogram,
    /// Receiver mailbox dwell (arrival → the DSM popped the update).
    pub queue_ns: Histogram,
    /// DSM apply and release handoff (pop → reader unblocked).
    pub apply_ns: Histogram,
}

impl StageSet {
    /// An empty stage set (all histograms empty).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one release's stage durations, one sample per histogram.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        wait: u64,
        publish: u64,
        transit: u64,
        fault: u64,
        retrans: u64,
        queue: u64,
        apply: u64,
    ) {
        self.wait_ns.record(wait);
        self.publish_ns.record(publish);
        self.transit_ns.record(transit);
        self.fault_ns.record(fault);
        self.retrans_ns.record(retrans);
        self.queue_ns.record(queue);
        self.apply_ns.record(apply);
    }

    /// Fold another stage set's samples into this one.
    pub fn merge(&mut self, other: &StageSet) {
        self.wait_ns.merge(&other.wait_ns);
        self.publish_ns.merge(&other.publish_ns);
        self.transit_ns.merge(&other.transit_ns);
        self.fault_ns.merge(&other.fault_ns);
        self.retrans_ns.merge(&other.retrans_ns);
        self.queue_ns.merge(&other.queue_ns);
        self.apply_ns.merge(&other.apply_ns);
    }

    /// `(name, histogram)` pairs in canonical stage order — the render
    /// order `nscc anatomy` uses and the serialization field order.
    pub fn named(&self) -> [(&'static str, &Histogram); 7] {
        [
            ("wait", &self.wait_ns),
            ("publish", &self.publish_ns),
            ("transit", &self.transit_ns),
            ("fault", &self.fault_ns),
            ("retrans", &self.retrans_ns),
            ("queue", &self.queue_ns),
            ("apply", &self.apply_ns),
        ]
    }

    /// Total nanoseconds across all stages (Σ per-stage sums).
    pub fn total_ns(&self) -> u64 {
        self.named().iter().map(|(_, h)| h.sum()).sum()
    }
}

/// Per-location stage decomposition row of [`StalenessSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct LocStages {
    /// DSM location index.
    pub loc: u32,
    /// Stage histograms over releases of reads of this location.
    pub stages: StageSet,
}

/// Per-link (writer → reader) stage decomposition row of
/// [`StalenessSummary`].
#[derive(Debug, Clone, Serialize)]
pub struct LinkStages {
    /// Rank whose write released the reads.
    pub writer: u32,
    /// Rank whose reads were released.
    pub reader: u32,
    /// Stage histograms over releases on this link.
    pub stages: StageSet,
}

/// One write→apply→release flow kept for Perfetto export: binds the
/// writer's compute lane at `write_ns`, the reader's blocked lane at
/// `recv_ns`, and the reader's phase lane at `release_ns` into one Chrome
/// flow (`ph:"s"/"t"/"f"`), so the age decomposition is walkable in the
/// trace viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRec {
    /// Flow id shared by the three Chrome events of this record.
    pub id: u64,
    /// Rank whose write released the read.
    pub writer: u32,
    /// Rank whose read was released.
    pub reader: u32,
    /// DSM location read.
    pub loc: u32,
    /// Virtual time the releasing value was written.
    pub write_ns: u64,
    /// Virtual time the DSM popped the update from the mailbox.
    pub recv_ns: u64,
    /// Virtual time the blocked read released.
    pub release_ns: u64,
}

/// Serializable aggregate of the staleness-anatomy tracer — the
/// `staleness` section of a run report (schema v7). Embedded only when the
/// tracer was armed; tracer-off reports carry `"staleness":null` and are
/// byte-identical to pre-v7 output everywhere else.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StalenessSummary {
    /// Traced read releases.
    pub released: u64,
    /// Releases whose stage sum was checked against the observed age.
    pub conservation_checked: u64,
    /// Releases whose stage sum did NOT equal the observed age (always 0
    /// for an honest pipeline; nonzero flags a decomposition bug).
    pub conservation_violations: u64,
    /// Flow records kept for Perfetto export.
    pub flows_kept: u64,
    /// Flow records dropped at the capacity bound (aggregates stay exact).
    pub flows_dropped: u64,
    /// Observed age per traced release.
    pub age_ns: Histogram,
    /// Global per-stage decomposition.
    pub stages: StageSet,
    /// Per-location decomposition, sorted by location.
    pub by_loc: Vec<LocStages>,
    /// Per-link decomposition, sorted by (writer, reader).
    pub by_link: Vec<LinkStages>,
}

impl StalenessSummary {
    /// Fold another summary in (sweep bins merge per-cell sections).
    pub fn merge(&mut self, other: &StalenessSummary) {
        self.released += other.released;
        self.conservation_checked += other.conservation_checked;
        self.conservation_violations += other.conservation_violations;
        self.flows_kept += other.flows_kept;
        self.flows_dropped += other.flows_dropped;
        self.age_ns.merge(&other.age_ns);
        self.stages.merge(&other.stages);
        let mut by_loc: BTreeMap<u32, StageSet> =
            self.by_loc.drain(..).map(|r| (r.loc, r.stages)).collect();
        for r in &other.by_loc {
            by_loc
                .entry(r.loc)
                .or_insert_with(StageSet::new)
                .merge(&r.stages);
        }
        self.by_loc = by_loc
            .into_iter()
            .map(|(loc, stages)| LocStages { loc, stages })
            .collect();
        let mut by_link: BTreeMap<(u32, u32), StageSet> = self
            .by_link
            .drain(..)
            .map(|r| ((r.writer, r.reader), r.stages))
            .collect();
        for r in &other.by_link {
            by_link
                .entry((r.writer, r.reader))
                .or_insert_with(StageSet::new)
                .merge(&r.stages);
        }
        self.by_link = by_link
            .into_iter()
            .map(|((writer, reader), stages)| LinkStages {
                writer,
                reader,
                stages,
            })
            .collect();
    }
}

impl nscc_ckpt::Snapshot for StageSet {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for (_, h) in self.named() {
            h.encode(enc);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(StageSet {
            wait_ns: Histogram::decode(dec)?,
            publish_ns: Histogram::decode(dec)?,
            transit_ns: Histogram::decode(dec)?,
            fault_ns: Histogram::decode(dec)?,
            retrans_ns: Histogram::decode(dec)?,
            queue_ns: Histogram::decode(dec)?,
            apply_ns: Histogram::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for LocStages {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.loc);
        self.stages.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(LocStages {
            loc: dec.u32()?,
            stages: StageSet::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for LinkStages {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.writer);
        enc.put_u32(self.reader);
        self.stages.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(LinkStages {
            writer: dec.u32()?,
            reader: dec.u32()?,
            stages: StageSet::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for StalenessSummary {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.released,
            self.conservation_checked,
            self.conservation_violations,
            self.flows_kept,
            self.flows_dropped,
        ] {
            enc.put_u64(v);
        }
        self.age_ns.encode(enc);
        self.stages.encode(enc);
        self.by_loc.encode(enc);
        self.by_link.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let mut vals = [0u64; 5];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(StalenessSummary {
            released: vals[0],
            conservation_checked: vals[1],
            conservation_violations: vals[2],
            flows_kept: vals[3],
            flows_dropped: vals[4],
            age_ns: Histogram::decode(dec)?,
            stages: StageSet::decode(dec)?,
            by_loc: Vec::<LocStages>::decode(dec)?,
            by_link: Vec::<LinkStages>::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for HubSummary {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.events,
            self.events_dropped,
            self.spans,
            self.spans_dropped,
            self.reads,
            self.writes,
            self.messages,
            self.stale_discards,
            self.barriers,
            self.anti_messages,
            self.faults_dropped,
            self.faults_duplicated,
            self.retransmits,
            self.degraded_reads,
            self.suspected_writers,
            self.checkpoints,
            self.restores,
            self.mailbox_warnings,
        ] {
            enc.put_u64(v);
        }
        self.staleness.encode(enc);
        self.block_ns.encode(enc);
        self.net_delay_ns.encode(enc);
        self.rollback.encode(enc);
        self.warp.encode(enc);
        self.snapshots.encode(enc);
        self.heat.encode(enc);
        self.deps.encode(enc);
        self.profile.encode(enc);
        encode_name_map(&self.loc_names, enc);
        encode_name_map(&self.proc_names, enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let mut vals = [0u64; 18];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(HubSummary {
            events: vals[0],
            events_dropped: vals[1],
            spans: vals[2],
            spans_dropped: vals[3],
            reads: vals[4],
            writes: vals[5],
            messages: vals[6],
            stale_discards: vals[7],
            barriers: vals[8],
            anti_messages: vals[9],
            faults_dropped: vals[10],
            faults_duplicated: vals[11],
            retransmits: vals[12],
            degraded_reads: vals[13],
            suspected_writers: vals[14],
            checkpoints: vals[15],
            restores: vals[16],
            mailbox_warnings: vals[17],
            staleness: Histogram::decode(dec)?,
            block_ns: Histogram::decode(dec)?,
            net_delay_ns: Histogram::decode(dec)?,
            rollback: Histogram::decode(dec)?,
            warp: WarpSummary::decode(dec)?,
            snapshots: Vec::<MetricSnapshot>::decode(dec)?,
            heat: Vec::<HeatRow>::decode(dec)?,
            deps: Vec::<DepEdge>::decode(dec)?,
            profile: Vec::<ProfileRow>::decode(dec)?,
            loc_names: decode_name_map(dec)?,
            proc_names: decode_name_map(dec)?,
        })
    }
}

/// Encode a name map as a length-prefixed vector of (id, name) pairs.
fn encode_name_map(map: &BTreeMap<u32, String>, enc: &mut nscc_ckpt::Enc) {
    enc.put_u64(map.len() as u64);
    for (k, v) in map {
        enc.put_u32(*k);
        enc.put_str(v);
    }
}

/// Decode the [`encode_name_map`] layout back into a sorted map.
fn decode_name_map(
    dec: &mut nscc_ckpt::Dec<'_>,
) -> Result<BTreeMap<u32, String>, nscc_ckpt::CkptError> {
    let n = dec.u64()?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = dec.u32()?;
        let v = dec.str_()?;
        map.insert(k, v);
    }
    Ok(map)
}

impl nscc_ckpt::Snapshot for HeatRow {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.loc);
        self.staleness.encode(enc);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(HeatRow {
            loc: dec.u32()?,
            staleness: Histogram::decode(dec)?,
        })
    }
}

impl nscc_ckpt::Snapshot for DepEdge {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.reader);
        enc.put_u32(self.loc);
        enc.put_u32(self.writer);
        for v in [
            self.blocks,
            self.block_ns,
            self.queued_ns,
            self.inflight_ns,
            self.retrans_ns,
            self.last_write_iter,
            self.last_msg_seq,
        ] {
            enc.put_u64(v);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let (reader, loc, writer) = (dec.u32()?, dec.u32()?, dec.u32()?);
        let mut vals = [0u64; 7];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(DepEdge {
            reader,
            loc,
            writer,
            blocks: vals[0],
            block_ns: vals[1],
            queued_ns: vals[2],
            inflight_ns: vals[3],
            retrans_ns: vals[4],
            last_write_iter: vals[5],
            last_msg_seq: vals[6],
        })
    }
}

impl nscc_ckpt::Snapshot for ProfileRow {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u32(self.pid);
        enc.put_str(&self.phase);
        enc.put_str(&self.detail);
        enc.put_u64(self.samples);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(ProfileRow {
            pid: dec.u32()?,
            phase: dec.str_()?,
            detail: dec.str_()?,
            samples: dec.u64()?,
        })
    }
}

impl nscc_ckpt::Snapshot for MetricSnapshot {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.t_ns,
            self.reads,
            self.writes,
            self.messages,
            self.stale_discards,
            self.barriers,
            self.anti_messages,
            self.faults_dropped,
            self.retransmits,
            self.degraded_reads,
            self.staleness_p50,
            self.staleness_p99,
            self.block_ns_total,
            self.blocked_reads,
            self.net_delay_p99,
            self.events_dropped,
            self.spans_dropped,
        ] {
            enc.put_u64(v);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let mut vals = [0u64; 17];
        for v in &mut vals {
            *v = dec.u64()?;
        }
        Ok(MetricSnapshot {
            t_ns: vals[0],
            reads: vals[1],
            writes: vals[2],
            messages: vals[3],
            stale_discards: vals[4],
            barriers: vals[5],
            anti_messages: vals[6],
            faults_dropped: vals[7],
            retransmits: vals[8],
            degraded_reads: vals[9],
            staleness_p50: vals[10],
            staleness_p99: vals[11],
            block_ns_total: vals[12],
            blocked_reads: vals[13],
            net_delay_p99: vals[14],
            events_dropped: vals[15],
            spans_dropped: vals[16],
        })
    }
}

/// One periodic sample of the hub's derived metrics, cut on a virtual-time
/// cadence ([`Hub::sample_every`]). Counters are cumulative since the start
/// of the run; percentiles are over everything recorded so far. The series
/// stays meaningful even after raw-event storage saturates, because it is
/// fed by the exact aggregate metrics, not the bounded raw stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MetricSnapshot {
    /// Virtual instant of the sample.
    pub t_ns: u64,
    /// Reads completed so far.
    pub reads: u64,
    /// DSM writes so far.
    pub writes: u64,
    /// Network deliveries so far.
    pub messages: u64,
    /// Updates discarded as stale so far.
    pub stale_discards: u64,
    /// Barrier releases so far.
    pub barriers: u64,
    /// Rollback anti-messages so far.
    pub anti_messages: u64,
    /// Frames dropped by the fault layer so far.
    pub faults_dropped: u64,
    /// Reliable-delivery retransmissions so far.
    pub retransmits: u64,
    /// Degraded (timed-out) reads so far.
    pub degraded_reads: u64,
    /// Median delivered-age gap so far.
    pub staleness_p50: u64,
    /// 99th-percentile delivered-age gap so far.
    pub staleness_p99: u64,
    /// Total virtual ns spent in blocked reads so far.
    pub block_ns_total: u64,
    /// Blocked reads so far.
    pub blocked_reads: u64,
    /// 99th-percentile network delay so far (virtual ns).
    pub net_delay_p99: u64,
    /// Raw events dropped so far.
    pub events_dropped: u64,
    /// Spans dropped so far.
    pub spans_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_done(staleness: u64, blocked: bool, block_ns: u64) -> ObsEvent {
        ObsEvent::ReadDone {
            t_ns: 0,
            rank: 0,
            loc: 0,
            curr_iter: 10,
            requested: 5,
            delivered: 10 - staleness,
            staleness,
            blocked,
            block_ns,
        }
    }

    #[test]
    fn emit_updates_derived_metrics() {
        let hub = Hub::new();
        hub.emit(read_done(3, false, 0));
        hub.emit(read_done(0, true, 1_000));
        hub.emit(ObsEvent::NetDeliver {
            t_ns: 5,
            src: 0,
            dst: 1,
            delay_ns: 2_000,
        });
        hub.emit(ObsEvent::AntiMessage {
            t_ns: 6,
            rank: 1,
            loc: 0,
            age: 4,
        });
        let s = hub.summary();
        assert_eq!(s.reads, 2);
        assert_eq!(s.messages, 1);
        assert_eq!(s.anti_messages, 1);
        assert_eq!(s.staleness.count(), 2);
        assert_eq!(s.staleness.max(), 3);
        assert_eq!(s.block_ns.count(), 1);
        assert_eq!(s.net_delay_ns.max(), 2_000);
        assert_eq!(s.events, 4);
        assert_eq!(s.events_dropped, 0);
    }

    #[test]
    fn counters_survive_event_overflow() {
        let hub = Hub::with_event_capacity(1);
        for _ in 0..5 {
            hub.emit(read_done(1, false, 0));
        }
        let s = hub.summary();
        assert_eq!(s.events, 1);
        assert_eq!(s.events_dropped, 4);
        assert_eq!(s.reads, 5);
        assert_eq!(s.staleness.count(), 5);
    }

    #[test]
    fn snapshots_follow_the_cadence() {
        let hub = Hub::new();
        hub.sample_every(1_000);
        // Events inside the first interval cut nothing; the first event at
        // or past each boundary cuts exactly one snapshot.
        for t in [100, 400, 900] {
            hub.emit(ObsEvent::Write {
                t_ns: t,
                rank: 0,
                loc: 0,
                age: 1,
            });
        }
        assert!(hub.snapshots().is_empty());
        hub.emit(read_done(2, true, 50));
        hub.emit(ObsEvent::Write {
            t_ns: 1_200,
            rank: 0,
            loc: 0,
            age: 2,
        });
        hub.emit(ObsEvent::Write {
            t_ns: 3_500,
            rank: 0,
            loc: 0,
            age: 3,
        });
        let snaps = hub.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].t_ns, 1_200);
        assert_eq!(snaps[0].writes, 4);
        assert_eq!(snaps[0].reads, 1);
        assert_eq!(snaps[0].blocked_reads, 1);
        assert_eq!(snaps[0].block_ns_total, 50);
        assert_eq!(snaps[1].t_ns, 3_500);
        assert_eq!(snaps[1].writes, 5);
        assert_eq!(hub.summary().snapshots.len(), 2);
    }

    #[test]
    fn snapshots_off_by_default() {
        let hub = Hub::new();
        for _ in 0..10 {
            hub.emit(read_done(1, false, 0));
        }
        assert!(hub.snapshots().is_empty());
        assert!(hub.summary().snapshots.is_empty());
    }

    #[test]
    fn sample_every_zero_is_an_explicit_disable() {
        let hub = Hub::new();
        hub.sample_every(1_000);
        hub.sample_every(0);
        for t in [500, 1_500, 10_000] {
            hub.emit(ObsEvent::Write {
                t_ns: t,
                rank: 0,
                loc: 0,
                age: 1,
            });
        }
        assert!(hub.snapshots().is_empty());
    }

    /// A cloneable in-memory writer for feed tests.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<parking_lot::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn live_feed_streams_snapshots_and_final_counters() {
        let hub = Hub::new();
        hub.sample_every(1_000);
        let buf = SharedBuf::default();
        hub.set_live(Box::new(buf.clone()), "unit");
        assert!(hub.live_enabled());
        hub.emit(read_done(2, true, 50));
        hub.emit(ObsEvent::Write {
            t_ns: 1_200,
            rank: 0,
            loc: 0,
            age: 1,
        });
        hub.emit(ObsEvent::Write {
            t_ns: 2_400,
            rank: 0,
            loc: 0,
            age: 2,
        });
        hub.live_final(&hub.summary());
        let lines = buf.lines();
        assert_eq!(lines.len(), 4, "start + 2 snaps + final: {lines:?}");
        assert!(lines[0].contains("\"kind\":\"start\""));
        assert!(lines[0].contains("\"bench\":\"unit\""));
        assert!(lines[0].contains("\"snap_every_ns\":1000"));
        assert!(lines[1].contains("\"kind\":\"snap\""));
        // First snap's deltas are the cumulative values so far.
        assert!(lines[1].contains("\"delta\":{\"reads\":1,\"writes\":1,"));
        // Second snap saw one more write, nothing else.
        assert!(lines[2].contains("\"delta\":{\"reads\":0,\"writes\":1,"));
        assert!(lines[3].contains("\"kind\":\"final\""));
        assert!(lines[3].contains("\"reads\":1"));
        assert!(lines[3].contains("\"writes\":2"));
        for line in &lines {
            assert!(line.starts_with("{\"feed_version\":1,"), "{line}");
        }
    }

    #[test]
    fn live_feed_without_cadence_is_start_plus_final_only() {
        let hub = Hub::new();
        hub.sample_every(0);
        let buf = SharedBuf::default();
        hub.set_live(Box::new(buf.clone()), "quiet");
        for _ in 0..10 {
            hub.emit(read_done(1, false, 0));
        }
        hub.live_final(&hub.summary());
        let lines = buf.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"snap_every_ns\":0"));
        assert!(lines[1].contains("\"kind\":\"final\""));
    }

    #[test]
    fn sched_accounting_accumulates_and_derives_rate() {
        let hub = Hub::new();
        assert!(!hub.wants_wall());
        hub.enable_wall();
        assert!(hub.wants_wall());
        hub.note_sched(&SchedDelta {
            events: 100,
            parks: 10,
            unparks: 12,
            exec_ns: 4_000,
            wall_ns: 500_000_000,
            park: {
                let mut h = crate::hist::Histogram::new();
                h.record(1_000);
                h.record(2_000);
                h
            },
            per_proc: vec![(0, 3_000, 7), (1, 1_000, 5)],
        });
        hub.note_sched(&SchedDelta {
            events: 100,
            parks: 5,
            unparks: 5,
            exec_ns: 1_000,
            wall_ns: 500_000_000,
            park: {
                let mut h = crate::hist::Histogram::new();
                h.record(3_000);
                h
            },
            per_proc: vec![(1, 1_000, 3)],
        });
        let s = hub.sched();
        assert_eq!(s.events, 200);
        assert_eq!(s.parks, 15);
        assert_eq!(s.unparks, 17);
        assert_eq!(s.exec_ns, 5_000);
        assert_eq!(s.wall_ns, 1_000_000_000);
        assert!((s.events_per_sec - 200.0).abs() < 1e-9);
        assert_eq!(
            s.procs,
            vec![
                ProcSched {
                    pid: 0,
                    exec_ns: 3_000,
                    slices: 7
                },
                ProcSched {
                    pid: 1,
                    exec_ns: 2_000,
                    slices: 8
                },
            ]
        );

        // adopt_sched folds another hub's totals in.
        let other = Hub::new();
        other.note_sched(&SchedDelta {
            events: 50,
            parks: 1,
            unparks: 1,
            exec_ns: 500,
            wall_ns: 1_000,
            park: crate::hist::Histogram::new(),
            per_proc: vec![(2, 500, 1)],
        });
        hub.adopt_sched(&other);
        let s = hub.sched();
        assert_eq!(s.events, 250);
        assert_eq!(s.procs.len(), 3);
        assert_eq!(s.procs[2].pid, 2);
    }

    #[test]
    fn event_dump_exports_valid_versioned_json() {
        let hub = Hub::new();
        hub.emit(read_done(1, false, 0));
        hub.span(0, 0, 10, SpanKind::Compute, "run");
        hub.set_proc_name(0, "rank0");
        let dump = hub.export_events_json();
        crate::json::validate(&dump).expect("event dump validates");
        assert!(dump.contains(&format!("\"schema_version\":{}", crate::SCHEMA_VERSION)));
        assert!(dump.contains("\"ReadDone\""));
        assert!(dump.contains("\"rank0\""));
    }

    #[test]
    fn recovery_events_update_counters() {
        let hub = Hub::new();
        hub.emit(ObsEvent::Checkpoint {
            t_ns: 10,
            rank: 0,
            iter: 5,
            bytes: 128,
        });
        hub.emit(ObsEvent::Restore {
            t_ns: 20,
            rank: 0,
            from_iter: 9,
            to_iter: 5,
            rollback: 4,
            bound: 8,
        });
        hub.emit(ObsEvent::MailboxHigh {
            t_ns: 30,
            rank: 1,
            depth: 64,
        });
        let s = hub.summary();
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.restores, 1);
        assert_eq!(s.mailbox_warnings, 1);
        assert_eq!(s.rollback.count(), 1);
        assert_eq!(s.rollback.max(), 4);
    }

    #[test]
    fn summary_merge_adds_counters_and_histograms() {
        let a = Hub::new();
        a.emit(read_done(3, false, 0));
        a.emit(read_done(1, true, 500));
        let b = Hub::new();
        b.emit(read_done(7, false, 0));
        b.emit(ObsEvent::Restore {
            t_ns: 5,
            rank: 2,
            from_iter: 8,
            to_iter: 6,
            rollback: 2,
            bound: 4,
        });
        b.warp_sample(0, 2.0);
        let mut merged = a.summary();
        merged.merge(&b.summary());
        assert_eq!(merged.reads, 3);
        assert_eq!(merged.restores, 1);
        assert_eq!(merged.staleness.count(), 3);
        assert_eq!(merged.staleness.max(), 7);
        assert_eq!(merged.block_ns.count(), 1);
        assert_eq!(merged.rollback.max(), 2);
        // Warp merge: one side empty takes the other verbatim.
        assert_eq!(merged.warp.samples, 1);
        assert_eq!(merged.warp.mean, 2.0);
        // Merging two non-empty warps is sample-weighted on the mean.
        let mut w = merged.warp;
        w = super::merge_warp(
            &w,
            &WarpSummary {
                samples: 3,
                mean: 4.0,
                p50: 1.0,
                p95: 1.0,
                max: 5.0,
            },
        );
        assert_eq!(w.samples, 4);
        assert!((w.mean - 3.5).abs() < 1e-12);
        assert_eq!(w.max, 5.0);
    }

    #[test]
    fn summary_snapshot_roundtrip() {
        let hub = Hub::new();
        hub.sample_every(100);
        hub.emit(read_done(3, true, 700));
        hub.emit(ObsEvent::NetDeliver {
            t_ns: 150,
            src: 0,
            dst: 1,
            delay_ns: 2_000,
        });
        hub.emit(ObsEvent::Checkpoint {
            t_ns: 200,
            rank: 0,
            iter: 9,
            bytes: 64,
        });
        hub.warp_sample(10, 1.25);
        hub.emit(read_dep(1, 0, 2));
        hub.profile_add(1, "compute", "", 12);
        hub.set_loc_name(2, "v2");
        hub.set_proc_name(1, "rank1");
        let s = hub.summary();
        assert!(!s.snapshots.is_empty());
        assert!(!s.heat.is_empty());
        assert!(!s.deps.is_empty());
        assert!(!s.profile.is_empty());
        let bytes = nscc_ckpt::to_bytes(&s);
        let back: HubSummary = nscc_ckpt::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.reads, s.reads);
        assert_eq!(back.checkpoints, s.checkpoints);
        assert_eq!(back.staleness, s.staleness);
        assert_eq!(back.block_ns, s.block_ns);
        assert_eq!(back.net_delay_ns, s.net_delay_ns);
        assert_eq!(back.rollback, s.rollback);
        assert_eq!(back.warp, s.warp);
        assert_eq!(back.snapshots, s.snapshots);
        assert_eq!(back.heat, s.heat);
        assert_eq!(back.deps, s.deps);
        assert_eq!(back.profile, s.profile);
        assert_eq!(back.loc_names, s.loc_names);
        assert_eq!(back.proc_names, s.proc_names);
        // Byte-identity of the re-encoding: decode∘encode is the identity.
        assert_eq!(nscc_ckpt::to_bytes(&back), bytes);
    }

    fn read_dep(reader: u32, loc: u32, writer: u32) -> ObsEvent {
        ObsEvent::ReadDep {
            t_ns: 50,
            reader,
            writer,
            loc,
            write_iter: 9,
            msg_seq: 4,
            block_ns: 1_000,
            queued_ns: 100,
            inflight_ns: 800,
            retrans_ns: 0,
        }
    }

    #[test]
    fn read_done_feeds_per_location_heatmap() {
        let hub = Hub::new();
        hub.emit(read_done(3, false, 0));
        hub.emit(ObsEvent::ReadDone {
            t_ns: 1,
            rank: 0,
            loc: 7,
            curr_iter: 10,
            requested: 5,
            delivered: 5,
            staleness: 5,
            blocked: false,
            block_ns: 0,
        });
        let heat = hub.heat();
        assert_eq!(heat.len(), 2);
        assert_eq!(heat[0].loc, 0);
        assert_eq!(heat[0].staleness.max(), 3);
        assert_eq!(heat[1].loc, 7);
        assert_eq!(heat[1].staleness.count(), 1);
    }

    #[test]
    fn read_deps_aggregate_per_edge() {
        let hub = Hub::new();
        hub.emit(read_dep(1, 0, 2));
        hub.emit(read_dep(1, 0, 2));
        hub.emit(read_dep(3, 0, 2));
        let deps = hub.deps();
        assert_eq!(deps.len(), 2);
        assert_eq!((deps[0].reader, deps[0].loc, deps[0].writer), (1, 0, 2));
        assert_eq!(deps[0].blocks, 2);
        assert_eq!(deps[0].block_ns, 2_000);
        assert_eq!(deps[0].last_write_iter, 9);
        assert_eq!(deps[0].last_msg_seq, 4);
        assert_eq!(deps[1].reader, 3);
    }

    #[test]
    fn profile_rows_sorted_and_mergeable() {
        let hub = Hub::new();
        hub.profile_every(1_000_000);
        assert_eq!(hub.profile_period(), 1_000_000);
        hub.profile_add(1, "blocked", "v0", 3);
        hub.profile_add(0, "compute", "", 10);
        hub.profile_add(1, "blocked", "v0", 2);
        hub.profile_add(1, "compute", "", 0); // zero samples: no row
        let rows = hub.profile_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].pid, rows[0].samples), (0, 10));
        assert_eq!((rows[1].pid, rows[1].samples), (1, 5));

        let mut a = hub.summary();
        let b = hub.summary();
        a.merge(&b);
        assert_eq!(a.profile[0].samples, 20);
        assert_eq!(a.profile[1].samples, 10);
        assert_eq!(a.heat, hub.summary().heat); // both empty
        assert_eq!(a.deps.len(), 0);
    }

    #[test]
    fn phase_annotations_set_and_clear() {
        let hub = Hub::new();
        assert!(hub.phase_of(4).is_none());
        hub.annotate_phase(4, "Global_Read", "v3");
        assert_eq!(
            hub.phase_of(4),
            Some(("Global_Read".to_string(), "v3".to_string()))
        );
        hub.clear_phase(4);
        assert!(hub.phase_of(4).is_none());
    }

    #[test]
    fn summary_merge_folds_heat_and_deps() {
        let a = Hub::new();
        a.emit(read_done(3, false, 0));
        a.emit(read_dep(1, 0, 2));
        a.set_loc_name(0, "v0");
        let b = Hub::new();
        b.emit(read_done(1, false, 0));
        b.emit(read_dep(1, 0, 2));
        b.emit(read_dep(2, 5, 0));
        b.set_loc_name(5, "v5");
        let mut m = a.summary();
        m.merge(&b.summary());
        assert_eq!(m.heat.len(), 1);
        assert_eq!(m.heat[0].staleness.count(), 2);
        assert_eq!(m.deps.len(), 2);
        assert_eq!(m.deps[0].blocks, 2);
        assert_eq!(m.loc_names[&0], "v0");
        assert_eq!(m.loc_names[&5], "v5");
    }

    #[test]
    fn clones_share_the_sink() {
        let hub = Hub::new();
        let clone = hub.clone();
        clone.span(0, 0, 10, SpanKind::Compute, "run");
        clone.warp_sample(0, 1.5);
        clone.set_proc_name(0, "island0");
        assert_eq!(hub.spans().len(), 1);
        assert_eq!(hub.warp().len(), 1);
        assert_eq!(hub.proc_names()[&0], "island0");
    }

    /// A conserving anatomy event: the seven stages sum to `age_ns`.
    fn anatomy(reader: u32, writer: u32, loc: u32, t_ns: u64) -> ObsEvent {
        ObsEvent::ReadAnatomy {
            t_ns,
            reader,
            writer,
            loc,
            write_iter: 3,
            msg_seq: 9,
            age_ns: 7_000,
            wait_ns: 1_000,
            publish_ns: 500,
            transit_ns: 2_000,
            fault_ns: 1_500,
            retrans_ns: 1_000,
            queue_ns: 600,
            apply_ns: 400,
        }
    }

    #[test]
    fn anatomy_aggregates_only_when_armed() {
        let hub = Hub::new();
        // Unarmed: the event is ignored by the anatomy state (and the DSM
        // would not even emit it).
        hub.emit(anatomy(1, 0, 4, 10_000));
        assert_eq!(hub.staleness_summary().released, 0);

        hub.enable_staleness();
        assert!(hub.staleness_enabled());
        hub.emit(anatomy(1, 0, 4, 10_000));
        hub.emit(anatomy(2, 0, 4, 20_000));
        hub.emit(anatomy(1, 0, 5, 30_000));
        let s = hub.staleness_summary();
        assert_eq!(s.released, 3);
        assert_eq!(s.conservation_checked, 3);
        assert_eq!(s.conservation_violations, 0);
        assert_eq!(s.age_ns.count(), 3);
        assert_eq!(s.stages.wait_ns.sum(), 3_000);
        assert_eq!(s.stages.total_ns(), s.age_ns.sum());
        assert_eq!(s.by_loc.len(), 2);
        assert_eq!(s.by_loc[0].loc, 4);
        assert_eq!(s.by_loc[0].stages.apply_ns.count(), 2);
        assert_eq!(s.by_link.len(), 2);
        assert_eq!((s.by_link[0].writer, s.by_link[0].reader), (0, 1));
        assert_eq!(s.by_link[0].stages.transit_ns.count(), 2);
        // Flow records bind write → pop → release instants.
        let flows = hub.staleness_flows();
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].id, 1);
        assert_eq!(flows[0].release_ns, 10_000);
        assert_eq!(flows[0].recv_ns, 10_000 - 400);
        assert_eq!(flows[0].write_ns, 10_000 - (7_000 - 1_000));
    }

    #[test]
    fn anatomy_flags_nonconserving_decompositions() {
        let hub = Hub::new();
        hub.enable_staleness();
        hub.emit(anatomy(1, 0, 4, 10_000));
        hub.emit(ObsEvent::ReadAnatomy {
            t_ns: 20_000,
            reader: 1,
            writer: 0,
            loc: 4,
            write_iter: 3,
            msg_seq: 9,
            age_ns: 7_001, // one ns unaccounted for
            wait_ns: 1_000,
            publish_ns: 500,
            transit_ns: 2_000,
            fault_ns: 1_500,
            retrans_ns: 1_000,
            queue_ns: 600,
            apply_ns: 400,
        });
        let s = hub.staleness_summary();
        assert_eq!(s.conservation_checked, 2);
        assert_eq!(s.conservation_violations, 1);
    }

    #[test]
    fn anatomy_events_do_not_perturb_the_summary() {
        // The tracer owns only the staleness section: HubSummary bytes with
        // the tracer armed and fed must equal an idle hub's.
        let hub = Hub::new();
        hub.enable_staleness();
        hub.emit(anatomy(1, 0, 4, 10_000));
        let idle = Hub::new();
        assert_eq!(
            crate::json::to_json(&hub.summary()),
            crate::json::to_json(&idle.summary())
        );
        assert_eq!(hub.event_count(), 0);
    }

    #[test]
    fn adopt_anatomy_merges_and_renumbers() {
        let main = Hub::new();
        main.enable_staleness();
        main.emit(anatomy(1, 0, 4, 10_000));
        let cell = Hub::new();
        cell.enable_staleness();
        cell.emit(anatomy(2, 0, 4, 20_000));
        cell.emit(anatomy(1, 0, 5, 30_000));
        main.adopt_anatomy(&cell);
        let s = main.staleness_summary();
        assert_eq!(s.released, 3);
        assert_eq!(s.by_loc.len(), 2);
        assert_eq!(cell.staleness_summary().released, 0, "cell was drained");
        let ids: Vec<u64> = main.staleness_flows().iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn staleness_summary_merge_matches_adoption() {
        let a = Hub::new();
        a.enable_staleness();
        a.emit(anatomy(1, 0, 4, 10_000));
        let b = Hub::new();
        b.enable_staleness();
        b.emit(anatomy(2, 0, 4, 20_000));
        let mut merged = a.staleness_summary();
        merged.merge(&b.staleness_summary());
        a.adopt_anatomy(&b);
        assert_eq!(
            crate::json::to_json(&merged),
            crate::json::to_json(&a.staleness_summary())
        );
    }

    #[test]
    fn staleness_summary_roundtrips_through_ckpt() {
        let hub = Hub::new();
        hub.enable_staleness();
        hub.emit(anatomy(1, 0, 4, 10_000));
        hub.emit(anatomy(2, 3, 5, 20_000));
        let s = hub.staleness_summary();
        let bytes = nscc_ckpt::to_bytes(&s);
        let back: StalenessSummary = nscc_ckpt::from_bytes(&bytes).expect("decodes");
        assert_eq!(
            crate::json::to_json(&s),
            crate::json::to_json(&back),
            "ckpt roundtrip preserves the section"
        );
        assert_eq!(nscc_ckpt::to_bytes(&back), bytes);
    }
}
