//! Warp timeline: time-stamped samples of the paper's §4.3 warp metric.
//!
//! Warp is the ratio of inter-arrival to inter-send times of consecutive
//! messages on a (receiver, sender) pair — 1.0 on an unloaded network,
//! larger when contention stretches deliveries. `nscc-net`'s `WarpMeter`
//! computes the samples; when a hub is attached the message layer forwards
//! each sample here with its virtual timestamp, so runs can report not just
//! the mean but how warp evolves as load builds up.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

/// Samples kept before the sink starts counting drops instead.
const DEFAULT_SAMPLE_CAPACITY: usize = 1 << 20;

struct Inner {
    points: Vec<(u64, f64)>,
    dropped: u64,
    capacity: usize,
}

/// A shareable, bounded sink of `(t_ns, warp)` samples.
#[derive(Clone)]
pub struct WarpTimeline {
    inner: Arc<Mutex<Inner>>,
}

impl Default for WarpTimeline {
    fn default() -> Self {
        WarpTimeline::with_capacity(DEFAULT_SAMPLE_CAPACITY)
    }
}

impl WarpTimeline {
    /// An empty timeline with the default capacity.
    pub fn new() -> Self {
        WarpTimeline::default()
    }

    /// An empty timeline keeping at most `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        WarpTimeline {
            inner: Arc::new(Mutex::new(Inner {
                points: Vec::new(),
                dropped: 0,
                capacity,
            })),
        }
    }

    /// Record one warp sample observed at virtual time `t_ns`.
    pub fn record(&self, t_ns: u64, warp: f64) {
        let mut inner = self.inner.lock();
        if inner.points.len() >= inner.capacity {
            inner.dropped += 1;
            return;
        }
        inner.points.push((t_ns, warp));
    }

    /// Number of kept samples.
    pub fn len(&self) -> usize {
        self.inner.lock().points.len()
    }

    /// True if no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Distribution summary of all kept samples.
    pub fn summary(&self) -> WarpSummary {
        let inner = self.inner.lock();
        if inner.points.is_empty() {
            return WarpSummary::default();
        }
        let mut vals: Vec<f64> = inner.points.iter().map(|&(_, w)| w).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("warp samples are finite"));
        let n = vals.len();
        let pick = |q: f64| vals[(((n - 1) as f64) * q).round() as usize];
        WarpSummary {
            samples: n as u64,
            mean: vals.iter().sum::<f64>() / n as f64,
            p50: pick(0.50),
            p95: pick(0.95),
            max: vals[n - 1],
        }
    }

    /// The timeline bucketed into `bins` equal time slices over the sampled
    /// range: per-slice mean and count. Empty when no samples (or `bins`
    /// is 0).
    pub fn timeline(&self, bins: usize) -> Vec<WarpPoint> {
        let inner = self.inner.lock();
        if inner.points.is_empty() || bins == 0 {
            return Vec::new();
        }
        let t0 = inner
            .points
            .iter()
            .map(|&(t, _)| t)
            .min()
            .expect("nonempty");
        let t1 = inner
            .points
            .iter()
            .map(|&(t, _)| t)
            .max()
            .expect("nonempty");
        let width = ((t1 - t0) / bins as u64).max(1);
        let mut sums = vec![(0.0f64, 0u64); bins];
        for &(t, w) in &inner.points {
            let idx = (((t - t0) / width) as usize).min(bins - 1);
            sums[idx].0 += w;
            sums[idx].1 += 1;
        }
        sums.iter()
            .enumerate()
            .filter(|(_, &(_, n))| n > 0)
            .map(|(i, &(sum, n))| WarpPoint {
                t_ns: t0 + width * i as u64,
                mean: sum / n as f64,
                count: n,
            })
            .collect()
    }
}

/// Distribution summary of warp samples. `mean` is 1.0 when no samples
/// were recorded (no inter-message stretching observed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WarpSummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean warp.
    pub mean: f64,
    /// Median warp.
    pub p50: f64,
    /// 95th-percentile warp.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl Default for WarpSummary {
    fn default() -> Self {
        WarpSummary {
            samples: 0,
            mean: 1.0,
            p50: 1.0,
            p95: 1.0,
            max: 1.0,
        }
    }
}

impl nscc_ckpt::Snapshot for WarpSummary {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.samples);
        enc.put_f64(self.mean);
        enc.put_f64(self.p50);
        enc.put_f64(self.p95);
        enc.put_f64(self.max);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(WarpSummary {
            samples: dec.u64()?,
            mean: dec.f64()?,
            p50: dec.f64()?,
            p95: dec.f64()?,
            max: dec.f64()?,
        })
    }
}

/// One time-bucket of the warp timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WarpPoint {
    /// Bucket start (virtual ns).
    pub t_ns: u64,
    /// Mean warp of the bucket's samples.
    pub mean: f64,
    /// Samples in the bucket.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_unit_warp() {
        let w = WarpTimeline::new();
        assert!(w.is_empty());
        let s = w.summary();
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, 1.0);
        assert!(w.timeline(4).is_empty());
    }

    #[test]
    fn summary_statistics() {
        let w = WarpTimeline::new();
        for (t, v) in [(0, 1.0), (10, 2.0), (20, 3.0)] {
            w.record(t, v);
        }
        let s = w.summary();
        assert_eq!(s.samples, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn timeline_buckets_by_time() {
        let w = WarpTimeline::new();
        w.record(0, 1.0);
        w.record(1, 3.0);
        w.record(100, 5.0);
        let tl = w.timeline(2);
        assert_eq!(tl.len(), 2);
        assert!((tl[0].mean - 2.0).abs() < 1e-12);
        assert_eq!(tl[0].count, 2);
        assert_eq!(tl[1].mean, 5.0);
    }

    #[test]
    fn capacity_drops_are_counted() {
        let w = WarpTimeline::with_capacity(1);
        w.record(0, 1.0);
        w.record(1, 2.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.dropped(), 1);
    }
}
