//! Chrome trace-event ("Perfetto") export of span traces.
//!
//! The output loads in <https://ui.perfetto.dev> or `chrome://tracing`.
//! Spans render as complete (`"ph":"X"`) events with microsecond
//! timestamps. Each [`SpanKind`] becomes its own trace *process* lane —
//! `compute`, `blocked`, `phase` — and each simulated process/rank becomes
//! a *thread* inside the lane, named via [`Hub::set_proc_name`]
//! (`crate::Hub::set_proc_name`). Within one (lane, thread) row the
//! emitting layers guarantee spans do not overlap: a process computes,
//! blocks, and passes through phases strictly sequentially.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;

use crate::json::to_json;
use crate::span::{Span, SpanKind};

/// The trace-event "process" lane a span kind renders into.
pub fn lane(kind: SpanKind) -> (u32, &'static str) {
    match kind {
        SpanKind::Compute => (1, "compute"),
        SpanKind::Blocked => (2, "blocked"),
        SpanKind::Phase => (3, "phase"),
    }
}

#[derive(Serialize)]
struct Complete<'a> {
    name: &'a str,
    cat: &'static str,
    ph: &'static str,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

#[derive(Serialize)]
struct MetaArgs<'a> {
    name: &'a str,
}

#[derive(Serialize)]
struct Meta<'a> {
    name: &'static str,
    ph: &'static str,
    pid: u32,
    tid: u32,
    args: MetaArgs<'a>,
}

#[derive(Serialize)]
#[serde(untagged)]
enum Event<'a> {
    Complete(Complete<'a>),
    Meta(Meta<'a>),
}

#[derive(Serialize)]
struct Doc<'a> {
    #[serde(rename = "traceEvents")]
    trace_events: Vec<Event<'a>>,
    #[serde(rename = "displayTimeUnit")]
    display_time_unit: &'static str,
}

/// Render spans (plus pid/rank display names) as a complete JSON trace
/// document.
pub fn export(spans: &[Span], names: &BTreeMap<u32, String>) -> String {
    let mut events: Vec<Event<'_>> = Vec::with_capacity(spans.len() + 16);
    let mut rows: BTreeSet<(u32, u32)> = BTreeSet::new();
    for s in spans {
        let (pid, cat) = lane(s.kind);
        rows.insert((pid, s.pid));
        events.push(Event::Complete(Complete {
            name: s.label.as_ref(),
            cat,
            ph: "X",
            ts: s.start_ns as f64 / 1_000.0,
            dur: s.end_ns.saturating_sub(s.start_ns) as f64 / 1_000.0,
            pid,
            tid: s.pid,
        }));
    }
    let mut fallback: BTreeMap<u32, String> = BTreeMap::new();
    for &(_, tid) in &rows {
        fallback.entry(tid).or_insert_with(|| format!("p{tid}"));
    }
    let lanes: BTreeSet<u32> = rows.iter().map(|&(pid, _)| pid).collect();
    for kind in [SpanKind::Compute, SpanKind::Blocked, SpanKind::Phase] {
        let (pid, lane_name) = lane(kind);
        if !lanes.contains(&pid) {
            continue;
        }
        events.push(Event::Meta(Meta {
            name: "process_name",
            ph: "M",
            pid,
            tid: 0,
            args: MetaArgs { name: lane_name },
        }));
    }
    for &(pid, tid) in &rows {
        let name = names.get(&tid).unwrap_or(&fallback[&tid]);
        events.push(Event::Meta(Meta {
            name: "thread_name",
            ph: "M",
            pid,
            tid,
            args: MetaArgs { name },
        }));
    }
    to_json(&Doc {
        trace_events: events,
        display_time_unit: "ms",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn exports_valid_trace_document() {
        let spans = vec![
            Span {
                pid: 0,
                start_ns: 0,
                end_ns: 5_000,
                kind: SpanKind::Compute,
                label: "run".into(),
            },
            Span {
                pid: 0,
                start_ns: 5_000,
                end_ns: 9_000,
                kind: SpanKind::Blocked,
                label: "rank0".into(),
            },
            Span {
                pid: 1,
                start_ns: 0,
                end_ns: 2_500,
                kind: SpanKind::Phase,
                label: "barrier".into(),
            },
        ];
        let mut names = BTreeMap::new();
        names.insert(0u32, "island0".to_string());
        let doc = export(&spans, &names);
        validate(&doc).unwrap();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("island0"));
        // Unnamed pid 1 gets a fallback name.
        assert!(doc.contains("\"p1\""));
        // Compute lane is pid 1, blocked lane pid 2, phase lane pid 3.
        assert!(doc.contains("\"cat\":\"compute\""));
        assert!(doc.contains("\"cat\":\"blocked\""));
        assert!(doc.contains("\"cat\":\"phase\""));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = export(&[], &BTreeMap::new());
        validate(&doc).unwrap();
    }
}
