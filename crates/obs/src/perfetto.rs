//! Chrome trace-event ("Perfetto") export of span traces.
//!
//! The output loads in <https://ui.perfetto.dev> or `chrome://tracing`.
//! Spans render as complete (`"ph":"X"`) events with microsecond
//! timestamps. Each [`SpanKind`] becomes its own trace *process* lane —
//! `compute`, `blocked`, `phase` — and each simulated process/rank becomes
//! a *thread* inside the lane, named via [`Hub::set_proc_name`]
//! (`crate::Hub::set_proc_name`). Within one (lane, thread) row the
//! emitting layers guarantee spans do not overlap: a process computes,
//! blocks, and passes through phases strictly sequentially.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;

use crate::hub::FlowRec;
use crate::json::to_json;
use crate::span::{Span, SpanKind};

/// The trace-event "process" lane a span kind renders into.
pub fn lane(kind: SpanKind) -> (u32, &'static str) {
    match kind {
        SpanKind::Compute => (1, "compute"),
        SpanKind::Blocked => (2, "blocked"),
        SpanKind::Phase => (3, "phase"),
    }
}

#[derive(Serialize)]
struct Complete<'a> {
    name: &'a str,
    cat: &'static str,
    ph: &'static str,
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

#[derive(Serialize)]
struct MetaArgs<'a> {
    name: &'a str,
}

#[derive(Serialize)]
struct Meta<'a> {
    name: &'static str,
    ph: &'static str,
    pid: u32,
    tid: u32,
    args: MetaArgs<'a>,
}

#[derive(Serialize)]
struct Flow {
    name: &'static str,
    cat: &'static str,
    ph: &'static str,
    ts: f64,
    pid: u32,
    tid: u32,
    id: u64,
    #[serde(skip_serializing_if = "Option::is_none")]
    bp: Option<&'static str>,
}

#[derive(Serialize)]
#[serde(untagged)]
enum Event<'a> {
    Complete(Complete<'a>),
    Meta(Meta<'a>),
    Flow(Flow),
}

#[derive(Serialize)]
struct Doc<'a> {
    #[serde(rename = "traceEvents")]
    trace_events: Vec<Event<'a>>,
    #[serde(rename = "displayTimeUnit")]
    display_time_unit: &'static str,
}

/// Render spans (plus pid/rank display names) as a complete JSON trace
/// document.
pub fn export(spans: &[Span], names: &BTreeMap<u32, String>) -> String {
    export_with_flows(spans, names, &[])
}

/// [`export`], plus one Chrome flow (`ph:"s"/"t"/"f"`, category
/// `staleness`) per write→apply→release record from the staleness tracer:
/// a start arrow on the writer's compute lane at the write time, a step on
/// the reader's blocked lane at mailbox pop, and an enclosing-slice finish
/// (`bp:"e"`) on the reader's phase lane at release. In the viewer the
/// arrows walk exactly the hops the anatomy histograms aggregate.
pub fn export_with_flows(
    spans: &[Span],
    names: &BTreeMap<u32, String>,
    flows: &[FlowRec],
) -> String {
    let mut events: Vec<Event<'_>> = Vec::with_capacity(spans.len() + 3 * flows.len() + 16);
    let mut rows: BTreeSet<(u32, u32)> = BTreeSet::new();
    for s in spans {
        let (pid, cat) = lane(s.kind);
        rows.insert((pid, s.pid));
        events.push(Event::Complete(Complete {
            name: s.label.as_ref(),
            cat,
            ph: "X",
            ts: s.start_ns as f64 / 1_000.0,
            dur: s.end_ns.saturating_sub(s.start_ns) as f64 / 1_000.0,
            pid,
            tid: s.pid,
        }));
    }
    let (compute, _) = lane(SpanKind::Compute);
    let (blocked, _) = lane(SpanKind::Blocked);
    let (phase, _) = lane(SpanKind::Phase);
    for f in flows {
        rows.insert((compute, f.writer));
        rows.insert((blocked, f.reader));
        rows.insert((phase, f.reader));
        for (ph, ts, pid, tid, bp) in [
            ("s", f.write_ns, compute, f.writer, None),
            ("t", f.recv_ns, blocked, f.reader, None),
            ("f", f.release_ns, phase, f.reader, Some("e")),
        ] {
            events.push(Event::Flow(Flow {
                name: "staleness",
                cat: "staleness",
                ph,
                ts: ts as f64 / 1_000.0,
                pid,
                tid,
                id: f.id,
                bp,
            }));
        }
    }
    let mut fallback: BTreeMap<u32, String> = BTreeMap::new();
    for &(_, tid) in &rows {
        fallback.entry(tid).or_insert_with(|| format!("p{tid}"));
    }
    let lanes: BTreeSet<u32> = rows.iter().map(|&(pid, _)| pid).collect();
    for kind in [SpanKind::Compute, SpanKind::Blocked, SpanKind::Phase] {
        let (pid, lane_name) = lane(kind);
        if !lanes.contains(&pid) {
            continue;
        }
        events.push(Event::Meta(Meta {
            name: "process_name",
            ph: "M",
            pid,
            tid: 0,
            args: MetaArgs { name: lane_name },
        }));
    }
    for &(pid, tid) in &rows {
        let name = names.get(&tid).unwrap_or(&fallback[&tid]);
        events.push(Event::Meta(Meta {
            name: "thread_name",
            ph: "M",
            pid,
            tid,
            args: MetaArgs { name },
        }));
    }
    to_json(&Doc {
        trace_events: events,
        display_time_unit: "ms",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn exports_valid_trace_document() {
        let spans = vec![
            Span {
                pid: 0,
                start_ns: 0,
                end_ns: 5_000,
                kind: SpanKind::Compute,
                label: "run".into(),
            },
            Span {
                pid: 0,
                start_ns: 5_000,
                end_ns: 9_000,
                kind: SpanKind::Blocked,
                label: "rank0".into(),
            },
            Span {
                pid: 1,
                start_ns: 0,
                end_ns: 2_500,
                kind: SpanKind::Phase,
                label: "barrier".into(),
            },
        ];
        let mut names = BTreeMap::new();
        names.insert(0u32, "island0".to_string());
        let doc = export(&spans, &names);
        validate(&doc).unwrap();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("island0"));
        // Unnamed pid 1 gets a fallback name.
        assert!(doc.contains("\"p1\""));
        // Compute lane is pid 1, blocked lane pid 2, phase lane pid 3.
        assert!(doc.contains("\"cat\":\"compute\""));
        assert!(doc.contains("\"cat\":\"blocked\""));
        assert!(doc.contains("\"cat\":\"phase\""));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let doc = export(&[], &BTreeMap::new());
        validate(&doc).unwrap();
    }

    #[test]
    fn flow_records_render_as_start_step_finish_triples() {
        let spans = vec![Span {
            pid: 0,
            start_ns: 0,
            end_ns: 5_000,
            kind: SpanKind::Compute,
            label: "run".into(),
        }];
        let flows = vec![FlowRec {
            id: 1,
            writer: 0,
            reader: 2,
            loc: 7,
            write_ns: 1_000,
            recv_ns: 4_000,
            release_ns: 6_000,
        }];
        let doc = export_with_flows(&spans, &BTreeMap::new(), &flows);
        validate(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"s\""));
        assert!(doc.contains("\"ph\":\"t\""));
        assert!(doc.contains("\"ph\":\"f\""));
        assert!(doc.contains("\"bp\":\"e\""));
        assert!(doc.contains("\"cat\":\"staleness\""));
        // Flow rows get thread_name metas even without spans of their own:
        // the reader appears in both the blocked and phase lanes.
        assert!(doc.contains("\"p2\""));
        // No flows → byte-identical to the plain export.
        assert_eq!(export(&spans, &BTreeMap::new()), {
            let no_flows: Vec<FlowRec> = Vec::new();
            export_with_flows(&spans, &BTreeMap::new(), &no_flows)
        });
    }
}
