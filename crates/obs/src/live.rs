//! The live telemetry feed: a line-delimited JSON stream of metric
//! snapshots, counter deltas, and wall-clock scheduler accounting.
//!
//! Everything else the hub produces is post-mortem — you learn what a run
//! did after it ends. When a sink is attached ([`crate::hub::Hub::set_live`],
//! wired to `NSCC_LIVE=<path|fd>` by the bench harness), each periodic
//! [`MetricSnapshot`] additionally goes out, as it is cut, as one JSON
//! line a dashboard (`nscc top`) can tail while the run is still going.
//!
//! ## Feed line schema (version [`FEED_VERSION`])
//!
//! Every line is one complete JSON object stamped with `feed_version` and
//! a `kind` discriminator:
//!
//! - `kind:"start"` — one header line, written when the sink attaches:
//!   the bench name, the report `schema_version`, and the snapshot
//!   cadence in virtual ns (0 when snapshots are disabled, in which case
//!   the feed carries only this header and the final line).
//! - `kind:"snap"` — one line per periodic snapshot: the full
//!   [`MetricSnapshot`] under `snap` (cumulative counters, percentile
//!   digests), the counter deltas since the previous snap line under
//!   `delta`, the wall-clock time since the sink attached (`wall_ns`),
//!   the warp ratio `warp` = virtual ns / wall ns (how much faster than
//!   real time the simulation runs), and the scheduler's wall-clock
//!   self-accounting under `sched` (see [`SchedSummary`]).
//! - `kind:"final"` — one closing line with the run's cumulative event
//!   counters under `counters`, exactly the counter fields of the
//!   `HubSummary` embedded in the end-of-run `BENCH_*.json` report —
//!   byte-for-byte the same numbers, which `tests/live.rs` pins — plus
//!   the final `sched` totals.
//!
//! The schema only grows additively; removing or renaming a field bumps
//! [`FEED_VERSION`]. Readers must ignore unknown fields and unknown
//! `kind`s. Writes are line-buffered and flushed per line so a tailing
//! reader never sees a torn line once a newline has appeared.

use std::io::Write;
use std::time::Instant;

use serde::Serialize;

use crate::hub::{HubSummary, MetricSnapshot};

/// Version stamp carried by every live-feed line. Bumped whenever a feed
/// field is removed or renamed (additions keep the version, mirroring the
/// report schema's additive-growth policy).
pub const FEED_VERSION: u32 = 1;

/// Wall-clock self-accounting of the virtual-time scheduler, aggregated
/// across every simulation the hub observed.
///
/// These are *real* nanoseconds (`std::time::Instant`), not virtual ones:
/// they measure what the scheduler architecture costs on the host, which
/// is exactly the baseline the ROADMAP's scheduler-rearchitecture item
/// must beat. They are therefore nondeterministic across runs and
/// machines, and are kept strictly out of the deterministic report
/// sections: a `RunReport` carries them only under its optional `wall`
/// field (populated only on explicit request), never in `HubSummary`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SchedSummary {
    /// Queue entries executed (events + process resumptions).
    pub events: u64,
    /// Times a process thread re-parked on its reply channel at the end
    /// of a slice (advance or block) — one OS-level context switch each.
    pub parks: u64,
    /// Resume dispatches: times the scheduler unparked a process thread
    /// and handed it a slice.
    pub unparks: u64,
    /// Wall ns spent inside process slices (the scheduler waiting on the
    /// running process). The remainder of `wall_ns` is queue management
    /// and channel overhead.
    pub exec_ns: u64,
    /// Total wall ns spent inside scheduler event loops.
    pub wall_ns: u64,
    /// Queue entries executed per wall-clock second (`events` over
    /// `wall_ns`; 0 when nothing was measured).
    pub events_per_sec: f64,
    /// Median park duration in wall ns: the time between a process
    /// re-parking at the end of a slice and its next slice starting.
    /// Captures scheduler hand-off tail latency, not just totals — the
    /// other half of the ROADMAP item-1 baseline.
    pub park_p50_ns: u64,
    /// 99th-percentile park duration in wall ns.
    pub park_p99_ns: u64,
    /// Per-process slice accounting, sorted by pid. A process's parked
    /// wall time is `wall_ns − exec_ns` of its row (it is either running
    /// a slice or parked while the scheduler serves everyone else).
    pub procs: Vec<ProcSched>,
}

/// One process's share of the scheduler's wall-clock accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ProcSched {
    /// Process id (spawn order).
    pub pid: u32,
    /// Wall ns this process spent executing slices.
    pub exec_ns: u64,
    /// Slices served (= times this process was unparked).
    pub slices: u64,
}

/// One batch of scheduler accounting, flushed into the hub by a
/// simulation run (see `SimBuilder::attach_wall` in `nscc-sim`). All
/// fields are deltas since the previous flush; the hub accumulates.
#[derive(Debug, Clone, Default)]
pub struct SchedDelta {
    /// Queue entries executed since the last flush.
    pub events: u64,
    /// Thread parks since the last flush.
    pub parks: u64,
    /// Resume dispatches since the last flush.
    pub unparks: u64,
    /// Wall ns spent in process slices since the last flush.
    pub exec_ns: u64,
    /// Wall ns elapsed in the event loop since the last flush.
    pub wall_ns: u64,
    /// Per-process `(pid, exec_ns, slices)` deltas.
    pub per_proc: Vec<(u32, u64, u64)>,
    /// Park-duration samples since the last flush (wall ns between a
    /// process parking and its next slice), as a mergeable histogram.
    pub park: crate::hist::Histogram,
}

/// Counter deltas between two consecutive snap lines (first snap line:
/// since the start of the run). Rates, where cumulative counters need a
/// subtraction first.
#[derive(Debug, Clone, Copy, Default, Serialize)]
struct SnapDelta {
    reads: u64,
    writes: u64,
    messages: u64,
    stale_discards: u64,
    faults_dropped: u64,
    retransmits: u64,
    degraded_reads: u64,
    blocked_reads: u64,
}

#[derive(Serialize)]
struct StartLine {
    feed_version: u32,
    kind: &'static str,
    bench: String,
    schema_version: u32,
    snap_every_ns: u64,
}

#[derive(Serialize)]
struct SnapLine {
    feed_version: u32,
    kind: &'static str,
    wall_ns: u64,
    warp: f64,
    snap: MetricSnapshot,
    delta: SnapDelta,
    sched: SchedSummary,
}

/// The cumulative event counters of the run, mirroring the counter
/// fields of `HubSummary` one-for-one (same names, same values).
#[derive(Serialize)]
struct FinalCounters {
    events: u64,
    events_dropped: u64,
    spans: u64,
    spans_dropped: u64,
    reads: u64,
    writes: u64,
    messages: u64,
    stale_discards: u64,
    barriers: u64,
    anti_messages: u64,
    faults_dropped: u64,
    faults_duplicated: u64,
    retransmits: u64,
    degraded_reads: u64,
    suspected_writers: u64,
    checkpoints: u64,
    restores: u64,
    mailbox_warnings: u64,
}

#[derive(Serialize)]
struct FinalLine {
    feed_version: u32,
    kind: &'static str,
    bench: String,
    wall_ns: u64,
    counters: FinalCounters,
    sched: SchedSummary,
}

/// The attached feed writer plus the state needed to compute per-line
/// deltas and the warp ratio. Owned by the hub behind a mutex; all
/// methods are called with that lock held, so writes are line-atomic.
pub(crate) struct LiveSink {
    out: Box<dyn Write + Send>,
    bench: String,
    started: Instant,
    prev: Option<MetricSnapshot>,
}

impl LiveSink {
    /// Attach a sink and write the `start` header line.
    pub(crate) fn new(mut out: Box<dyn Write + Send>, bench: &str, snap_every_ns: u64) -> LiveSink {
        let header = crate::json::to_json(&StartLine {
            feed_version: FEED_VERSION,
            kind: "start",
            bench: bench.to_string(),
            schema_version: crate::SCHEMA_VERSION,
            snap_every_ns,
        });
        let _ = writeln!(out, "{header}");
        let _ = out.flush();
        LiveSink {
            out,
            bench: bench.to_string(),
            started: Instant::now(),
            prev: None,
        }
    }

    /// Emit one `snap` line for a freshly cut snapshot.
    pub(crate) fn snap(&mut self, snap: MetricSnapshot, sched: SchedSummary) {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let prev = self.prev.replace(snap);
        let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
        let delta = match prev {
            None => SnapDelta {
                reads: snap.reads,
                writes: snap.writes,
                messages: snap.messages,
                stale_discards: snap.stale_discards,
                faults_dropped: snap.faults_dropped,
                retransmits: snap.retransmits,
                degraded_reads: snap.degraded_reads,
                blocked_reads: snap.blocked_reads,
            },
            Some(p) => SnapDelta {
                reads: d(snap.reads, p.reads),
                writes: d(snap.writes, p.writes),
                messages: d(snap.messages, p.messages),
                stale_discards: d(snap.stale_discards, p.stale_discards),
                faults_dropped: d(snap.faults_dropped, p.faults_dropped),
                retransmits: d(snap.retransmits, p.retransmits),
                degraded_reads: d(snap.degraded_reads, p.degraded_reads),
                blocked_reads: d(snap.blocked_reads, p.blocked_reads),
            },
        };
        let line = crate::json::to_json(&SnapLine {
            feed_version: FEED_VERSION,
            kind: "snap",
            wall_ns,
            warp: if wall_ns == 0 {
                0.0
            } else {
                snap.t_ns as f64 / wall_ns as f64
            },
            snap,
            delta,
            sched,
        });
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }

    /// Emit the closing `final` line from the end-of-run summary.
    pub(crate) fn finish(&mut self, obs: &HubSummary, sched: SchedSummary) {
        let line = crate::json::to_json(&FinalLine {
            feed_version: FEED_VERSION,
            kind: "final",
            bench: self.bench.clone(),
            wall_ns: self.started.elapsed().as_nanos() as u64,
            counters: FinalCounters {
                events: obs.events,
                events_dropped: obs.events_dropped,
                spans: obs.spans,
                spans_dropped: obs.spans_dropped,
                reads: obs.reads,
                writes: obs.writes,
                messages: obs.messages,
                stale_discards: obs.stale_discards,
                barriers: obs.barriers,
                anti_messages: obs.anti_messages,
                faults_dropped: obs.faults_dropped,
                faults_duplicated: obs.faults_duplicated,
                retransmits: obs.retransmits,
                degraded_reads: obs.degraded_reads,
                suspected_writers: obs.suspected_writers,
                checkpoints: obs.checkpoints,
                restores: obs.restores,
                mailbox_warnings: obs.mailbox_warnings,
            },
            sched,
        });
        let _ = writeln!(self.out, "{line}");
        let _ = self.out.flush();
    }
}
