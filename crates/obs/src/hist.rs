//! A small log₂-bucketed histogram for latency- and staleness-like values.
//!
//! Values are `u64` (nanoseconds, iterations, bytes — the unit is the
//! caller's business). Bucket `i` holds values whose bit length is `i`,
//! i.e. bucket 0 is exactly `{0}`, bucket 1 is `{1}`, bucket 2 is `{2, 3}`,
//! bucket 3 is `{4..=7}`, and so on — 65 buckets cover the full `u64`
//! range. Recording is O(1) and allocation-free after construction, so the
//! hub can keep histograms exact even when it has to drop raw events.

use serde::ser::{Serialize, SerializeStruct, Serializer};

/// Number of log₂ buckets needed to cover `u64` (bit lengths 0..=64).
pub const BUCKETS: usize = 65;

/// A mergeable log₂ histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

/// Bucket index of a value: its bit length.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket.
fn bucket_upper(idx: usize) -> u64 {
    match idx {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the first bucket whose
    /// cumulative count reaches `q` (0.0..=1.0) of the total, clamped to
    /// the exact observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
            .collect()
    }

    /// One-line human summary, e.g. for bench footers.
    pub fn brief(&self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.1} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max
        )
    }
}

// Stable binary form for checkpoints: the raw fields, including the
// `u64::MAX` min sentinel of an empty histogram, so decode∘encode is the
// identity and re-serialized JSON reports match byte-for-byte.
impl nscc_ckpt::Snapshot for Histogram {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.count);
        enc.put_u64(self.sum);
        enc.put_u64(self.min);
        enc.put_u64(self.max);
        for &b in &self.buckets {
            enc.put_u64(b);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        let count = dec.u64()?;
        let sum = dec.u64()?;
        let min = dec.u64()?;
        let max = dec.u64()?;
        let mut buckets = vec![0u64; BUCKETS];
        for b in &mut buckets {
            *b = dec.u64()?;
        }
        Ok(Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

// Hand-written so the JSON form carries derived stats and only the
// populated buckets (65 mostly-zero entries would dominate the report).
impl Serialize for Histogram {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Histogram", 8)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("sum", &self.sum)?;
        st.serialize_field("min", &self.min())?;
        st.serialize_field("max", &self.max())?;
        st.serialize_field("mean", &self.mean())?;
        st.serialize_field("p50", &self.quantile(0.50))?;
        st.serialize_field("p99", &self.quantile(0.99))?;
        st.serialize_field("buckets", &self.nonzero_buckets())?;
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn records_and_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.5), 1);
        // p100 lands in the 1000 bucket [512, 1023], clamped to max.
        assert_eq!(h.quantile(1.0), 1000);
        // Quantiles never exceed the observed max.
        assert!(h.quantile(0.999) <= 1000);
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5, 9, 13] {
            a.record(v);
            all.record(v);
        }
        for v in [2, 70000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
