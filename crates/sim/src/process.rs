//! Simulated processes and the process-side context handle.
//!
//! Every simulated process runs its application code on a dedicated OS
//! thread, but threads execute strictly one at a time: control is handed
//! back and forth between the scheduler and the running process through
//! rendezvous channels. This lets application code be written in natural,
//! blocking style (the real GA loop, the real sampler) while time remains
//! fully virtual and deterministic.

use std::panic;

use crossbeam::channel::{Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::Event;
use crate::time::SimTime;

/// Identifier of a simulated process; assigned densely in spawn order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

impl Pid {
    /// The dense index of this process (spawn order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A request sent from a running process thread to the scheduler.
pub(crate) enum ProcCall {
    /// Charge `dur` of virtual compute time; resume the process afterwards.
    Advance(SimTime),
    /// Block until some event wakes this process. The reason string is used
    /// in deadlock diagnostics; the optional probe reports the depth of the
    /// queue being waited on if the run deadlocks.
    Block {
        reason: String,
        probe: Option<Box<dyn Fn() -> usize + Send>>,
    },
    /// Schedule an event `delay` in the future; the scheduler replies
    /// immediately and the process keeps running at the same instant.
    Schedule { delay: SimTime, event: Event },
    /// The process body returned normally.
    Done,
    /// The process body panicked with the given message.
    Panicked(String),
}

/// Scheduler -> process replies.
pub(crate) enum Reply {
    /// Resume execution; the process's local clock becomes `now`.
    Resume { now: SimTime },
    /// Acknowledge a non-yielding call such as [`ProcCall::Schedule`].
    Ack,
}

/// Sentinel panic payload used to unwind process threads at shutdown.
pub(crate) struct ShutdownToken;

/// The handle a simulated process uses to interact with virtual time.
///
/// A `Ctx` is passed by the engine to the process closure. All methods that
/// "take time" ([`advance`](Ctx::advance), [`Mailbox::recv`]) suspend the
/// calling thread and hand control to the scheduler; everything else runs
/// inline at the current virtual instant.
///
/// [`Mailbox::recv`]: crate::Mailbox::recv
pub struct Ctx {
    pid: Pid,
    now: SimTime,
    rng: StdRng,
    call_tx: Sender<(Pid, ProcCall)>,
    reply_rx: Receiver<Reply>,
}

impl Ctx {
    pub(crate) fn new(
        pid: Pid,
        seed: u64,
        call_tx: Sender<(Pid, ProcCall)>,
        reply_rx: Receiver<Reply>,
    ) -> Self {
        // Derive a per-process stream from the global seed; SplitMix64-style
        // mixing keeps the streams decorrelated.
        let mut z = seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(pid.0 as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Ctx {
            pid,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(z),
            call_tx,
            reply_rx,
        }
    }

    /// This process's identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// A deterministic per-process random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Charge `dur` of virtual time (e.g. a compute phase) and resume
    /// afterwards. Other processes and events run in the meantime.
    pub fn advance(&mut self, dur: SimTime) {
        let reply = self.roundtrip(ProcCall::Advance(dur));
        match reply {
            Reply::Resume { now } => self.now = now,
            Reply::Ack => unreachable!("Advance must be answered with Resume"),
        }
    }

    /// Yield to the scheduler without consuming virtual time. Equivalent to
    /// `advance(SimTime::ZERO)`; lets same-instant events (e.g. message
    /// deliveries already scheduled for `now`) run before this process
    /// continues.
    pub fn yield_now(&mut self) {
        self.advance(SimTime::ZERO);
    }

    /// Block until another event wakes this process via
    /// [`EventCtx::wake`](crate::EventCtx::wake). The `reason` appears in
    /// deadlock diagnostics. Wake-ups may be spurious from the caller's
    /// perspective; re-check your condition in a loop.
    pub fn block(&mut self, reason: impl Into<String>) {
        self.block_inner(reason.into(), None);
    }

    /// Like [`block`](Ctx::block), but registers a depth probe: if the run
    /// deadlocks while this process is blocked, the scheduler calls the
    /// probe and attaches the result to the diagnostics as the waited-on
    /// queue's depth (see [`DeadlockInfo`](crate::DeadlockInfo)).
    pub fn block_with_probe<F>(&mut self, reason: impl Into<String>, probe: F)
    where
        F: Fn() -> usize + Send + 'static,
    {
        self.block_inner(reason.into(), Some(Box::new(probe)));
    }

    fn block_inner(&mut self, reason: String, probe: Option<Box<dyn Fn() -> usize + Send>>) {
        let reply = self.roundtrip(ProcCall::Block { reason, probe });
        match reply {
            Reply::Resume { now } => self.now = now,
            Reply::Ack => unreachable!("Block must be answered with Resume"),
        }
    }

    /// Schedule `event` to fire `delay` after the current instant. Returns
    /// immediately; the process keeps running at the same virtual time.
    pub fn schedule(&mut self, delay: SimTime, event: Event) {
        let reply = self.roundtrip(ProcCall::Schedule { delay, event });
        match reply {
            Reply::Ack => {}
            Reply::Resume { .. } => unreachable!("Schedule must be answered with Ack"),
        }
    }

    /// Schedule a closure to fire `delay` after the current instant.
    pub fn schedule_fn<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut crate::event::EventCtx<'_>) + Send + 'static,
    {
        self.schedule(delay, Event::new(f));
    }

    /// Wake `pid` at the current instant (a convenience for simple
    /// cross-process signalling; most code should use
    /// [`Mailbox`](crate::Mailbox) instead).
    pub fn wake(&mut self, pid: Pid) {
        self.schedule_fn(SimTime::ZERO, move |ec| ec.wake(pid));
    }

    /// Park until the scheduler issues the first `Resume`; `Err` means the
    /// scheduler was torn down before this process ever ran.
    pub(crate) fn await_first_resume(&mut self) -> Result<(), ()> {
        match self.reply_rx.recv() {
            Ok(Reply::Resume { now }) => {
                self.now = now;
                Ok(())
            }
            Ok(Reply::Ack) | Err(_) => Err(()),
        }
    }

    fn roundtrip(&mut self, call: ProcCall) -> Reply {
        if self.call_tx.send((self.pid, call)).is_err() {
            // Scheduler has gone away: unwind this thread quietly.
            panic::panic_any(ShutdownToken);
        }
        match self.reply_rx.recv() {
            Ok(reply) => reply,
            Err(_) => panic::panic_any(ShutdownToken),
        }
    }
}

/// Extract a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
