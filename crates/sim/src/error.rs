//! Error types reported by the simulation engine.

use std::fmt;

use crate::process::Pid;
use crate::time::SimTime;

/// Diagnostics for one blocked process inside a [`SimError::Deadlock`]:
/// everything needed to tell *why* a run wedged without re-running it
/// under a debugger.
#[derive(Debug, Clone)]
pub struct DeadlockInfo {
    /// The blocked process.
    pub pid: Pid,
    /// Its registered name.
    pub name: String,
    /// The reason string it blocked with (e.g. the mailbox name).
    pub reason: String,
    /// Virtual time at which it entered the current block.
    pub since: SimTime,
    /// Virtual time at which it last started running (its final resume).
    pub last_progress: SimTime,
    /// Messages sitting in the mailbox it is waiting on, if the wait
    /// registered a depth probe (a non-zero depth means the process is
    /// wedged *despite* pending input — a protocol bug, not starvation).
    pub mailbox_depth: Option<usize>,
}

impl fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} `{}` waiting on: {} (blocked since t={}, last progress t={}",
            self.pid, self.name, self.reason, self.since, self.last_progress
        )?;
        if let Some(depth) = self.mailbox_depth {
            write!(f, ", mailbox depth {depth}")?;
        }
        write!(f, ")")
    }
}

/// A fatal condition that terminated a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Every runnable process is blocked and no future event can unblock one.
    ///
    /// Carries the virtual time of the deadlock and per-process
    /// [`DeadlockInfo`] diagnostics for every blocked non-daemon process.
    Deadlock {
        /// Virtual time at which the engine ran out of events.
        at: SimTime,
        /// Diagnostics for every blocked non-daemon process.
        blocked: Vec<DeadlockInfo>,
        /// Subsystem breadcrumbs collected at the moment of the wedge
        /// from probes registered via
        /// [`SimBuilder::deadlock_note`](crate::SimBuilder::deadlock_note)
        /// (e.g. the marker plane's open snapshot waves and per-channel
        /// in-flight recording depths).
        notes: Vec<String>,
    },
    /// A simulated process panicked; the panic message is captured.
    ProcessPanicked {
        /// The process that panicked.
        pid: Pid,
        /// Its registered name.
        name: String,
        /// The stringified panic payload.
        message: String,
    },
    /// The virtual-time horizon configured via
    /// [`SimBuilder::time_limit`](crate::SimBuilder::time_limit) was reached.
    TimeLimitExceeded {
        /// The configured horizon.
        limit: SimTime,
    },
    /// The event-count safety cap configured via
    /// [`SimBuilder::event_limit`](crate::SimBuilder::event_limit) was reached.
    EventLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked, notes } => {
                writeln!(f, "simulation deadlocked at t={at}: all processes blocked")?;
                for info in blocked {
                    writeln!(f, "  {info}")?;
                }
                for note in notes {
                    writeln!(f, "  note: {note}")?;
                }
                Ok(())
            }
            SimError::ProcessPanicked { pid, name, message } => {
                write!(f, "process {pid:?} `{name}` panicked: {message}")
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit {limit} exceeded")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}
