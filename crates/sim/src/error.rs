//! Error types reported by the simulation engine.

use std::fmt;

use crate::process::Pid;
use crate::time::SimTime;

/// A fatal condition that terminated a simulation run.
#[derive(Debug)]
pub enum SimError {
    /// Every runnable process is blocked and no future event can unblock one.
    ///
    /// Carries the virtual time of the deadlock and, for each blocked
    /// process, its pid, name, and the reason string it blocked with.
    Deadlock {
        /// Virtual time at which the engine ran out of events.
        at: SimTime,
        /// `(pid, name, wait reason)` for every blocked process.
        blocked: Vec<(Pid, String, String)>,
    },
    /// A simulated process panicked; the panic message is captured.
    ProcessPanicked {
        /// The process that panicked.
        pid: Pid,
        /// Its registered name.
        name: String,
        /// The stringified panic payload.
        message: String,
    },
    /// The virtual-time horizon configured via
    /// [`SimBuilder::time_limit`](crate::SimBuilder::time_limit) was reached.
    TimeLimitExceeded {
        /// The configured horizon.
        limit: SimTime,
    },
    /// The event-count safety cap configured via
    /// [`SimBuilder::event_limit`](crate::SimBuilder::event_limit) was reached.
    EventLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                writeln!(f, "simulation deadlocked at t={at}: all processes blocked")?;
                for (pid, name, reason) in blocked {
                    writeln!(f, "  {pid:?} `{name}` waiting on: {reason}")?;
                }
                Ok(())
            }
            SimError::ProcessPanicked { pid, name, message } => {
                write!(f, "process {pid:?} `{name}` panicked: {message}")
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "virtual time limit {limit} exceeded")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}
