//! Virtual time for the discrete-event engine.
//!
//! [`SimTime`] is a nanosecond-resolution point on the simulation clock; it
//! doubles as a duration (the engine never needs to distinguish the two, and
//! a single type keeps arithmetic simple and allocation-free).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time (or a duration), in nanoseconds.
///
/// All simulation ordering is derived from this value plus a deterministic
/// sequence number, so two runs with the same seed produce identical
/// schedules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / the zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// saturate to zero; values beyond the representable range saturate to
    /// [`SimTime::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating addition (for long-running accumulators such as
    /// statistics counters).
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// True if this is the zero instant/duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl nscc_ckpt::Snapshot for SimTime {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        enc.put_u64(self.0);
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(SimTime(dec.u64()?))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflowed"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_mul(rhs)
                .expect("SimTime multiplication overflowed"),
        )
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(3);
        assert_eq!(a + b, SimTime::from_millis(5));
        assert_eq!(b - a, SimTime::from_millis(1));
        assert_eq!(a * 4, SimTime::from_millis(8));
        assert_eq!(b / 3, SimTime::from_millis(1));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.max(a), b);
        assert_eq!(b.min(a), a);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4u64).map(SimTime::from_millis).sum();
        assert_eq!(total, SimTime::from_millis(10));
    }
}
