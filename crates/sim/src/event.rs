//! Events: the unit of work on the virtual-time queue.

use std::cmp::Ordering;

use crate::process::Pid;
use crate::time::SimTime;

/// A deferred action that fires at a scheduled virtual instant.
///
/// Events run on the scheduler thread with exclusive access to the engine
/// through an [`EventCtx`]; they may deliver messages, wake blocked
/// processes, and schedule further events.
pub struct Event(pub(crate) Box<dyn FnOnce(&mut EventCtx<'_>) + Send>);

impl Event {
    /// Wrap a closure as an event.
    pub fn new<F>(f: F) -> Self
    where
        F: FnOnce(&mut EventCtx<'_>) + Send + 'static,
    {
        Event(Box::new(f))
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Event(..)")
    }
}

/// What a queue entry does when it reaches the head of the event queue.
pub(crate) enum EventKind {
    /// Run a closure.
    Fire(Event),
    /// Hand control to a process thread.
    Resume(Pid),
}

/// An entry in the event queue; ordered by `(time, seq)` so ties are broken
/// deterministically by insertion order.
pub(crate) struct QueueEntry {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueueEntry {}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueueEntry {
    // Reversed: BinaryHeap is a max-heap and we want the earliest entry first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The capabilities an [`Event`] has while it is firing.
///
/// Only the scheduler constructs an `EventCtx`; events cannot block, so
/// everything here completes inline at the current instant.
pub struct EventCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) pending: &'a mut Vec<(SimTime, EventKind)>,
    pub(crate) wakes: &'a mut Vec<Pid>,
}

impl EventCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule another event `delay` after the current instant.
    pub fn schedule(&mut self, delay: SimTime, event: Event) {
        self.pending
            .push((self.now + delay, EventKind::Fire(event)));
    }

    /// Schedule a closure `delay` after the current instant.
    pub fn schedule_fn<F>(&mut self, delay: SimTime, f: F)
    where
        F: FnOnce(&mut EventCtx<'_>) + Send + 'static,
    {
        self.schedule(delay, Event::new(f));
    }

    /// Wake a blocked process at the current instant. A wake targeting a
    /// process that is not blocked is ignored (this makes wake-ups idempotent
    /// and tolerant of races between multiple deliveries at one instant).
    pub fn wake(&mut self, pid: Pid) {
        self.wakes.push(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_entry_orders_by_time_then_seq() {
        let a = QueueEntry {
            time: SimTime::from_millis(1),
            seq: 5,
            kind: EventKind::Resume(Pid(0)),
        };
        let b = QueueEntry {
            time: SimTime::from_millis(1),
            seq: 6,
            kind: EventKind::Resume(Pid(1)),
        };
        let c = QueueEntry {
            time: SimTime::from_millis(2),
            seq: 1,
            kind: EventKind::Resume(Pid(2)),
        };
        // Reversed ordering: earlier entries compare as Greater (max-heap head).
        assert!(a > b);
        assert!(b > c);
        assert!(a > c);
    }

    #[test]
    fn heap_pops_earliest_first() {
        use std::collections::BinaryHeap;
        let mut heap = BinaryHeap::new();
        for (t, s) in [(3u64, 0u64), (1, 1), (2, 2), (1, 0)] {
            heap.push(QueueEntry {
                time: SimTime::from_millis(t),
                seq: s,
                kind: EventKind::Resume(Pid(0)),
            });
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time.as_nanos() / 1_000_000, e.seq))
            .collect();
        assert_eq!(order, vec![(1, 0), (1, 1), (2, 2), (3, 0)]);
    }
}
