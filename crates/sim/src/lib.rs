//! # nscc-sim — deterministic discrete-event simulation engine
//!
//! The substrate beneath the whole NSCC reproduction. Real application code
//! (the actual genetic algorithm, the actual logic sampler) runs on
//! dedicated OS threads, but the engine executes exactly one process slice
//! or event at a time and all waiting happens in **virtual time**, so runs
//! are fully deterministic for a given seed.
//!
//! Key pieces:
//!
//! * [`SimTime`] — nanosecond virtual clock.
//! * [`SimBuilder`] — spawn processes (plain or daemon), set safety caps, run.
//! * [`Ctx`] — the in-process handle: [`Ctx::advance`] charges compute time,
//!   [`Ctx::schedule_fn`] defers events, [`Ctx::rng`] gives a seeded RNG.
//! * [`Mailbox`] — virtual-time FIFO channels between processes; receives
//!   block in virtual time.
//! * [`EventCtx`] — what a firing event may do (deliver, wake, reschedule).
//!
//! ## Why threads and not an async runtime?
//!
//! Blocking style keeps the ported applications byte-for-byte close to their
//! paper pseudocode, and a rendezvous-driven scheduler gives determinism
//! that no wall-clock runtime can. Context switches are ~1 µs, far below the
//! cost of the real math being simulated.
//!
//! ```
//! use nscc_sim::{Mailbox, SimBuilder, SimTime};
//!
//! let mb: Mailbox<u64> = Mailbox::new("pings");
//! let (tx, rx) = (mb.clone(), mb.clone());
//! let mut sim = SimBuilder::new(7);
//! sim.spawn("producer", move |ctx| {
//!     for i in 0..3 {
//!         ctx.advance(SimTime::from_millis(10)); // compute
//!         let tx = tx.clone();
//!         ctx.schedule_fn(SimTime::from_millis(2), move |ec| tx.deliver(ec, i));
//!     }
//! });
//! sim.spawn("consumer", move |ctx| {
//!     for want in 0..3 {
//!         assert_eq!(rx.recv(ctx), want);
//!     }
//! });
//! assert_eq!(sim.run().unwrap().end_time, SimTime::from_millis(32));
//! ```

#![warn(missing_docs)]

mod error;
mod event;
mod mailbox;
mod process;
mod scheduler;
mod time;

pub use error::{DeadlockInfo, SimError};
pub use event::{Event, EventCtx};
pub use mailbox::Mailbox;
// Tracing moved into the shared observability crate; re-exported here so
// span types stay reachable where the engine hands them out.
pub use nscc_obs::{Hub, ObsEvent, Span, SpanKind, Trace, TraceTotals};
pub use process::{Ctx, Pid};
pub use scheduler::{SimBuilder, SimReport};
pub use time::SimTime;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let sim = SimBuilder::new(0);
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.processes, 0);
    }

    #[test]
    fn advance_accumulates() {
        let mut sim = SimBuilder::new(0);
        sim.spawn("p", |ctx| {
            for _ in 0..5 {
                ctx.advance(SimTime::from_millis(2));
            }
            assert_eq!(ctx.now(), SimTime::from_millis(10));
        });
        assert_eq!(sim.run().unwrap().end_time, SimTime::from_millis(10));
    }

    #[test]
    fn interleaving_is_by_virtual_time() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut sim = SimBuilder::new(0);
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let log = Arc::clone(&log);
            sim.spawn(name, move |ctx| {
                for i in 0..3 {
                    ctx.advance(SimTime::from_millis(step));
                    log.lock().push((name, i, ctx.now().as_nanos() / 1_000_000));
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        assert_eq!(
            got,
            vec![
                ("a", 0, 3),
                ("b", 0, 5),
                ("a", 1, 6),
                ("a", 2, 9),
                ("b", 1, 10),
                ("b", 2, 15),
            ]
        );
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once(seed: u64) -> Vec<u64> {
            let samples = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let mut sim = SimBuilder::new(seed);
            for p in 0..4 {
                let samples = Arc::clone(&samples);
                sim.spawn(format!("p{p}"), move |ctx| {
                    use rand::Rng;
                    for _ in 0..10 {
                        let jitter: u64 = ctx.rng().gen_range(1..100);
                        ctx.advance(SimTime::from_micros(jitter));
                        samples.lock().push(ctx.now().as_nanos());
                    }
                });
            }
            sim.run().unwrap();
            let v = samples.lock().clone();
            v
        }
        assert_eq!(run_once(99), run_once(99));
        assert_ne!(run_once(99), run_once(100));
    }

    #[test]
    fn wall_accounting_counts_events_slices_and_parks() {
        let hub = Hub::new();
        let mut sim = SimBuilder::new(0);
        sim.attach_wall(hub.clone());
        for p in 0..2 {
            sim.spawn(format!("p{p}"), |ctx| {
                for _ in 0..3 {
                    ctx.advance(SimTime::from_millis(1));
                }
            });
        }
        let report = sim.run().unwrap();
        let s = hub.sched();
        assert_eq!(s.events, report.events_executed);
        // Each process: 1 initial unpark + 3 advance re-resumes = 4 slices;
        // the final slice ends in Done (no re-park), so parks = slices − 1.
        assert_eq!(s.unparks, 8);
        assert_eq!(s.parks, 6);
        assert!(s.wall_ns > 0, "event loop spent some real time");
        assert!(s.exec_ns <= s.wall_ns, "slices are inside the loop");
        assert_eq!(s.procs.len(), 2);
        assert_eq!(s.procs[0].pid, 0);
        assert_eq!(s.procs[0].slices, 4);
        assert_eq!(s.procs[1].slices, 4);
        assert!(s.events_per_sec > 0.0);
        // Wall accounting records no spans and no events: the hub's
        // deterministic summary is untouched.
        let sum = hub.summary();
        assert_eq!(sum.events, 0);
        assert_eq!(sum.spans, 0);
    }

    #[test]
    fn deadlock_is_detected_with_diagnostics() {
        let mb: Mailbox<()> = Mailbox::new("never");
        let mut sim = SimBuilder::new(0);
        let mb2 = mb.clone();
        sim.spawn("stuck", move |ctx| {
            let _ = mb2.recv(ctx);
        });
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].name, "stuck");
                assert!(blocked[0].reason.contains("never"));
                assert_eq!(blocked[0].since, SimTime::ZERO);
                assert_eq!(blocked[0].last_progress, SimTime::ZERO);
                assert_eq!(blocked[0].mailbox_depth, Some(0));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_diagnostics_report_depth_and_progress() {
        // A process wedges waiting on a condition while a message sits
        // queued in a mailbox nobody drains — the depth probe must surface
        // the jam, and since/last_progress must date the wedge.
        let jam: Mailbox<u32> = Mailbox::new("jammed");
        let mut sim = SimBuilder::new(0);
        let jam_probe = jam.clone();
        sim.spawn("consumer", move |ctx| {
            ctx.advance(SimTime::from_millis(2));
            let jam = jam_probe.clone();
            ctx.block_with_probe("waiting for flush signal", move || jam.len());
        });
        sim.spawn("producer", move |ctx| {
            let jam = jam.clone();
            // Delivered with no waiter: stays queued, nobody ever drains it.
            ctx.schedule_fn(SimTime::from_micros(1500), move |ec| jam.deliver(ec, 9));
        });
        match sim.run() {
            Err(SimError::Deadlock { at, blocked, notes }) => {
                assert_eq!(at, SimTime::from_millis(2));
                assert_eq!(blocked.len(), 1);
                let info = &blocked[0];
                assert_eq!(info.name, "consumer");
                assert!(info.reason.contains("flush signal"));
                assert_eq!(info.since, SimTime::from_millis(2));
                assert_eq!(info.last_progress, SimTime::from_millis(2));
                assert_eq!(info.mailbox_depth, Some(1));
                let rendered = format!("{}", SimError::Deadlock { at, blocked, notes });
                assert!(rendered.contains("flush signal"));
                assert!(rendered.contains("mailbox depth 1"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_notes_surface_registered_breadcrumbs() {
        let mb: Mailbox<()> = Mailbox::new("never");
        let mut sim = SimBuilder::new(0);
        sim.deadlock_note(|| vec!["marker plane: cut 4 incomplete".into()]);
        sim.deadlock_note(Vec::new); // empty probes contribute nothing
        let mb2 = mb.clone();
        sim.spawn("stuck", move |ctx| {
            let _ = mb2.recv(ctx);
        });
        match sim.run() {
            Err(err @ SimError::Deadlock { .. }) => {
                let SimError::Deadlock { ref notes, .. } = err else {
                    unreachable!()
                };
                assert_eq!(notes, &["marker plane: cut 4 incomplete".to_string()]);
                let rendered = format!("{err}");
                assert!(rendered.contains("note: marker plane: cut 4 incomplete"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn blocked_daemon_does_not_deadlock() {
        let mb: Mailbox<()> = Mailbox::new("quiet");
        let mut sim = SimBuilder::new(0);
        let mb2 = mb.clone();
        sim.spawn_daemon("idle-daemon", move |ctx| {
            let _ = mb2.recv(ctx);
        });
        sim.spawn("worker", |ctx| ctx.advance(SimTime::from_millis(1)));
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_millis(1));
    }

    #[test]
    fn daemon_does_not_prolong_run() {
        let mut sim = SimBuilder::new(0);
        sim.spawn_daemon("loader", |ctx| loop {
            ctx.advance(SimTime::from_millis(1));
        });
        sim.spawn("worker", |ctx| ctx.advance(SimTime::from_millis(5)));
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = SimBuilder::new(0);
        sim.spawn("bad", |ctx| {
            ctx.advance(SimTime::from_millis(1));
            panic!("boom at {}", ctx.now());
        });
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message, .. }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_enforced() {
        let mut sim = SimBuilder::new(0);
        sim.time_limit(SimTime::from_millis(10));
        sim.spawn("runner", |ctx| loop {
            ctx.advance(SimTime::from_millis(3));
        });
        assert!(matches!(sim.run(), Err(SimError::TimeLimitExceeded { .. })));
    }

    #[test]
    fn event_limit_enforced() {
        let mut sim = SimBuilder::new(0);
        sim.event_limit(50);
        sim.spawn("runner", |ctx| loop {
            ctx.advance(SimTime::from_millis(1));
        });
        assert!(matches!(
            sim.run(),
            Err(SimError::EventLimitExceeded { .. })
        ));
    }

    #[test]
    fn scheduled_events_fire_in_order() {
        let counter = Arc::new(AtomicU64::new(0));
        let mut sim = SimBuilder::new(0);
        let c = Arc::clone(&counter);
        sim.spawn("scheduler", move |ctx| {
            for i in (0..10u64).rev() {
                let c = Arc::clone(&c);
                ctx.schedule_fn(SimTime::from_millis(i), move |ec| {
                    // Each event asserts it fires after all earlier ones.
                    let prev = c.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(prev, i, "event at t={} fired out of order", ec.now());
                });
            }
            ctx.advance(SimTime::from_millis(20));
        });
        sim.run().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn wake_on_nonblocked_process_is_ignored() {
        let mut sim = SimBuilder::new(0);
        let target = sim.spawn("sleeper", |ctx| {
            ctx.advance(SimTime::from_millis(5));
        });
        sim.spawn("waker", move |ctx| {
            // Sleeper is in an Advance (not Blocked); wake must be a no-op.
            ctx.schedule_fn(SimTime::from_millis(1), move |ec| ec.wake(target));
            ctx.advance(SimTime::from_millis(2));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn yield_now_lets_same_instant_events_run() {
        let mb: Mailbox<u32> = Mailbox::new("inst");
        let mb2 = mb.clone();
        let mut sim = SimBuilder::new(0);
        sim.spawn("p", move |ctx| {
            let mb3 = mb2.clone();
            ctx.schedule_fn(SimTime::ZERO, move |ec| mb3.deliver(ec, 1));
            assert!(mb2.try_recv().is_none(), "event must not fire inline");
            ctx.yield_now();
            assert_eq!(mb2.try_recv(), Some(1));
        });
        sim.run().unwrap();
    }
}
