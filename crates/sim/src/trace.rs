//! Lightweight execution tracing: who ran when, who blocked on what.
//!
//! A [`Trace`] is an optional, shared sink the application layers can
//! record spans into; it costs nothing when not attached. Used by the
//! examples to print per-process utilization timelines and by tests to
//! assert scheduling behaviour.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::process::Pid;
use crate::time::SimTime;

/// What a traced span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Virtual CPU time (an `advance`).
    Compute,
    /// Blocked waiting for a message or condition.
    Blocked,
    /// Application-defined phase (e.g. "barrier", "migration").
    Phase,
}

/// One traced interval of a process's life.
#[derive(Debug, Clone)]
pub struct Span {
    /// The process.
    pub pid: Pid,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
    /// What the process was doing.
    pub kind: SpanKind,
    /// Free-form label.
    pub label: &'static str,
}

#[derive(Default)]
struct Inner {
    spans: Vec<Span>,
}

/// A shareable span sink.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Arc<Mutex<Inner>>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a span.
    pub fn record(&self, pid: Pid, start: SimTime, end: SimTime, kind: SpanKind, label: &'static str) {
        debug_assert!(end >= start, "span ends before it starts");
        self.inner.lock().spans.push(Span {
            pid,
            start,
            end,
            kind,
            label,
        });
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All spans, sorted by start time (clones; call once at the end).
    pub fn spans(&self) -> Vec<Span> {
        let mut v = self.inner.lock().spans.clone();
        v.sort_by_key(|s| (s.start, s.pid.0));
        v
    }

    /// Total time per kind for one process.
    pub fn totals(&self, pid: Pid) -> TraceTotals {
        let inner = self.inner.lock();
        let mut t = TraceTotals::default();
        for s in inner.spans.iter().filter(|s| s.pid == pid) {
            let d = s.end.saturating_sub(s.start);
            match s.kind {
                SpanKind::Compute => t.compute += d,
                SpanKind::Blocked => t.blocked += d,
                SpanKind::Phase => t.phase += d,
            }
        }
        t
    }

    /// A compact utilization summary line per process (for examples).
    pub fn summary(&self, pids: &[Pid]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &pid in pids {
            let t = self.totals(pid);
            let total = (t.compute + t.blocked + t.phase).as_secs_f64();
            let util = if total > 0.0 {
                t.compute.as_secs_f64() / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  pid {:>3}: compute {:>10} blocked {:>10} phase {:>10} (util {:>5.1}%)",
                pid.0, t.compute, t.blocked, t.phase, util
            );
        }
        out
    }
}

/// Aggregated span durations for one process.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceTotals {
    /// Total compute time.
    pub compute: SimTime,
    /// Total blocked time.
    pub blocked: SimTime,
    /// Total phase time.
    pub phase: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_and_totals() {
        let tr = Trace::new();
        tr.record(Pid(0), t(0), t(5), SpanKind::Compute, "gen");
        tr.record(Pid(0), t(5), t(8), SpanKind::Blocked, "read");
        tr.record(Pid(1), t(0), t(2), SpanKind::Compute, "gen");
        assert_eq!(tr.len(), 3);
        let p0 = tr.totals(Pid(0));
        assert_eq!(p0.compute, t(5));
        assert_eq!(p0.blocked, t(3));
        assert_eq!(tr.totals(Pid(1)).compute, t(2));
    }

    #[test]
    fn spans_sorted_by_start() {
        let tr = Trace::new();
        tr.record(Pid(0), t(7), t(9), SpanKind::Phase, "b");
        tr.record(Pid(1), t(1), t(2), SpanKind::Phase, "a");
        let spans = tr.spans();
        assert_eq!(spans[0].label, "a");
        assert_eq!(spans[1].label, "b");
    }

    #[test]
    fn summary_mentions_every_pid() {
        let tr = Trace::new();
        tr.record(Pid(2), t(0), t(4), SpanKind::Compute, "x");
        let s = tr.summary(&[Pid(2)]);
        assert!(s.contains("pid   2"));
        assert!(s.contains("util 100.0%"));
    }
}
