//! The virtual-time scheduler: owns the event queue and the process table,
//! and executes exactly one thing (event or process slice) at a time.

use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{self, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{self, Receiver, Sender};
use nscc_obs::{Hub, SchedDelta, SpanKind};

use crate::error::{DeadlockInfo, SimError};
use crate::event::{Event, EventCtx, EventKind, QueueEntry};
use crate::process::{panic_message, Ctx, Pid, ProcCall, Reply, ShutdownToken};
use crate::time::SimTime;

/// Lifecycle state of a simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProcState {
    /// Has a pending `Resume` entry in the queue (or is currently running).
    Runnable,
    /// Suspended; waiting for an [`EventCtx::wake`]. Carries the reason and
    /// the virtual time the block began, for deadlock diagnostics and
    /// blocked-span observability.
    Blocked { reason: String, since: SimTime },
    /// Body returned.
    Done,
}

struct ProcSlot {
    name: String,
    daemon: bool,
    state: ProcState,
    reply_tx: Sender<Reply>,
    body: Option<Box<dyn FnOnce(&mut Ctx) + Send>>,
    join: Option<JoinHandle<()>>,
    /// Virtual time this process last started a run slice.
    last_progress: SimTime,
    /// Depth probe registered by the current block, if any.
    probe: Option<Box<dyn Fn() -> usize + Send>>,
}

/// Summary statistics for a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time at which the run ended (all non-daemon processes done).
    pub end_time: SimTime,
    /// Total queue entries executed (events + process resumptions).
    pub events_executed: u64,
    /// Number of processes spawned (including daemons).
    pub processes: usize,
}

/// Builder/owner of a simulation: spawn processes, then [`run`](SimBuilder::run).
///
/// ```
/// use nscc_sim::{SimBuilder, SimTime};
///
/// let mut sim = SimBuilder::new(42);
/// sim.spawn("worker", |ctx| {
///     ctx.advance(SimTime::from_millis(5));
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time, SimTime::from_millis(5));
/// ```
pub struct SimBuilder {
    seed: u64,
    procs: Vec<ProcSlot>,
    time_limit: SimTime,
    event_limit: u64,
    call_tx: Sender<(Pid, ProcCall)>,
    call_rx: Receiver<(Pid, ProcCall)>,
    ctxs: Vec<Option<Ctx>>,
    obs: Option<Hub>,
    wall: Option<Hub>,
    diag: Vec<Box<dyn Fn() -> Vec<String> + Send>>,
}

impl SimBuilder {
    /// Create a simulation whose randomness derives entirely from `seed`.
    pub fn new(seed: u64) -> Self {
        let (call_tx, call_rx) = channel::unbounded();
        SimBuilder {
            seed,
            procs: Vec::new(),
            time_limit: SimTime::MAX,
            event_limit: u64::MAX,
            call_tx,
            call_rx,
            ctxs: Vec::new(),
            obs: None,
            wall: None,
            diag: Vec::new(),
        }
    }

    /// Register a deadlock breadcrumb probe: should the run wedge, `f` is
    /// invoked once and every line it returns is appended to the
    /// [`SimError::Deadlock`] report (and the flight ring, when armed).
    /// Probes run on the scheduler thread after all processes stopped, so
    /// they may freely lock shared state (e.g. a snapshot board) to report
    /// open marker waves and per-channel in-flight recording depths.
    pub fn deadlock_note(&mut self, f: impl Fn() -> Vec<String> + Send + 'static) -> &mut Self {
        self.diag.push(Box::new(f));
        self
    }

    /// Attach an observability hub: the scheduler records a compute span
    /// per `advance` and a blocked span (labelled with the block reason)
    /// per block/wake pair, and registers process names for trace exports.
    /// Detached (the default) costs one branch per scheduling decision.
    pub fn attach_obs(&mut self, hub: Hub) -> &mut Self {
        self.obs = Some(hub);
        self
    }

    /// Attach wall-clock scheduler self-accounting: the event loop counts
    /// entries executed, park/unpark transitions, and real (host-clock)
    /// nanoseconds spent inside process slices vs. total, flushing
    /// [`SchedDelta`] batches into `hub` (see `Hub::sched`). Unlike
    /// [`attach_obs`](SimBuilder::attach_obs) this records **no** spans or
    /// events, so it never perturbs deterministic report output — but its
    /// numbers are real time and differ run to run, which is why callers
    /// gate it on `Hub::wants_wall` rather than attaching unconditionally.
    /// Detached (the default) costs one `Option` check per entry.
    pub fn attach_wall(&mut self, hub: Hub) -> &mut Self {
        self.wall = Some(hub);
        self
    }

    /// Abort the run with [`SimError::TimeLimitExceeded`] if virtual time
    /// passes `limit` (a safety net against livelock).
    pub fn time_limit(&mut self, limit: SimTime) -> &mut Self {
        self.time_limit = limit;
        self
    }

    /// Abort the run with [`SimError::EventLimitExceeded`] after `limit`
    /// queue entries (a safety net against runaway event loops).
    pub fn event_limit(&mut self, limit: u64) -> &mut Self {
        self.event_limit = limit;
        self
    }

    /// Spawn a process. The simulation completes when every non-daemon
    /// process body has returned.
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.spawn_inner(name.into(), false, Box::new(body))
    }

    /// Spawn a daemon process: it participates normally but the simulation
    /// does not wait for it to finish (e.g. background-load generators).
    pub fn spawn_daemon<F>(&mut self, name: impl Into<String>, body: F) -> Pid
    where
        F: FnOnce(&mut Ctx) + Send + 'static,
    {
        self.spawn_inner(name.into(), true, Box::new(body))
    }

    fn spawn_inner(
        &mut self,
        name: String,
        daemon: bool,
        body: Box<dyn FnOnce(&mut Ctx) + Send>,
    ) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        let (reply_tx, reply_rx) = channel::unbounded();
        let ctx = Ctx::new(pid, self.seed, self.call_tx.clone(), reply_rx);
        self.ctxs.push(Some(ctx));
        self.procs.push(ProcSlot {
            name,
            daemon,
            state: ProcState::Runnable,
            reply_tx,
            body: Some(body),
            join: None,
            last_progress: SimTime::ZERO,
            probe: None,
        });
        pid
    }

    /// Run the simulation to completion.
    ///
    /// Returns a [`SimReport`] when every non-daemon process finishes, or a
    /// [`SimError`] on deadlock, process panic, or a safety cap.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        install_quiet_shutdown_hook();
        if let Some(hub) = &self.obs {
            for (i, slot) in self.procs.iter().enumerate() {
                hub.set_proc_name(i as u32, slot.name.clone());
            }
        }
        // Start every process thread parked on its reply channel.
        for (i, slot) in self.procs.iter_mut().enumerate() {
            let body = slot.body.take().expect("process body consumed twice");
            let mut ctx = self.ctxs[i].take().expect("process ctx consumed twice");
            let call_tx = self.call_tx.clone();
            let pid = Pid(i as u32);
            let name = slot.name.clone();
            slot.join = Some(
                std::thread::Builder::new()
                    .name(format!("sim-{}-{}", i, name))
                    .spawn(move || {
                        // Wait for the first Resume before running the body.
                        match ctx_first_resume(&mut ctx) {
                            Ok(()) => {}
                            Err(()) => return, // shutdown before start
                        }
                        let result = panic::catch_unwind(AssertUnwindSafe(|| {
                            (body)(&mut ctx);
                        }));
                        match result {
                            Ok(()) => {
                                let _ = call_tx.send((pid, ProcCall::Done));
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<ShutdownToken>().is_none() {
                                    let msg = panic_message(payload.as_ref());
                                    let _ = call_tx.send((pid, ProcCall::Panicked(msg)));
                                }
                            }
                        }
                    })
                    .expect("failed to spawn simulation thread"),
            );
        }

        let result = self.event_loop();

        // Tear down: drop reply senders so parked threads unwind, then join.
        for slot in &mut self.procs {
            let (dead_tx, _) = channel::unbounded();
            slot.reply_tx = dead_tx; // drop the real sender
        }
        for slot in &mut self.procs {
            if let Some(handle) = slot.join.take() {
                let _ = handle.join();
            }
        }
        result
    }

    fn event_loop(&mut self) -> Result<SimReport, SimError> {
        let mut acct = self.wall.take().map(WallAcct::new);
        let result = self.event_loop_inner(&mut acct);
        if let Some(mut a) = acct {
            a.flush();
        }
        result
    }

    fn event_loop_inner(&mut self, acct: &mut Option<WallAcct>) -> Result<SimReport, SimError> {
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut now = SimTime::ZERO;
        let mut executed: u64 = 0;
        let mut live_nondaemons = self.procs.iter().filter(|p| !p.daemon).count();

        // Initial resume for every process, in spawn order.
        for i in 0..self.procs.len() {
            queue.push(QueueEntry {
                time: SimTime::ZERO,
                seq,
                kind: EventKind::Resume(Pid(i as u32)),
            });
            seq += 1;
        }

        let mut pending: Vec<(SimTime, EventKind)> = Vec::new();
        let mut wakes: Vec<Pid> = Vec::new();

        loop {
            if live_nondaemons == 0 {
                return Ok(SimReport {
                    end_time: now,
                    events_executed: executed,
                    processes: self.procs.len(),
                });
            }
            let entry = match queue.pop() {
                Some(e) => e,
                None => {
                    let blocked: Vec<DeadlockInfo> = self
                        .procs
                        .iter()
                        .enumerate()
                        .filter_map(|(i, p)| match &p.state {
                            ProcState::Blocked { reason, since } if !p.daemon => {
                                Some(DeadlockInfo {
                                    pid: Pid(i as u32),
                                    name: p.name.clone(),
                                    reason: reason.clone(),
                                    since: *since,
                                    last_progress: p.last_progress,
                                    mailbox_depth: p.probe.as_ref().map(|probe| probe()),
                                })
                            }
                            _ => None,
                        })
                        .collect();
                    let notes: Vec<String> =
                        self.diag.iter().flat_map(|probe| probe()).collect();
                    // Leave the diagnosis in the flight ring (a side
                    // channel: never touches counters or the report) so a
                    // post-mortem dump explains the hang per process.
                    if let Some(hub) = &self.obs {
                        if hub.flight_enabled() {
                            hub.flight_note(nscc_obs::ObsEvent::Custom {
                                t_ns: now.as_nanos(),
                                label: format!("deadlock: {} process(es) blocked", blocked.len())
                                    .into(),
                            });
                            for b in &blocked {
                                hub.flight_note(nscc_obs::ObsEvent::Custom {
                                    t_ns: now.as_nanos(),
                                    label: format!(
                                        "deadlock: pid {} ({}) blocked on {} since {} ns{}",
                                        b.pid.0,
                                        b.name,
                                        b.reason,
                                        b.since.as_nanos(),
                                        match b.mailbox_depth {
                                            Some(d) => format!(", mailbox depth {d}"),
                                            None => String::new(),
                                        }
                                    )
                                    .into(),
                                });
                            }
                            for note in &notes {
                                hub.flight_note(nscc_obs::ObsEvent::Custom {
                                    t_ns: now.as_nanos(),
                                    label: format!("deadlock: {note}").into(),
                                });
                            }
                        }
                    }
                    return Err(SimError::Deadlock {
                        at: now,
                        blocked,
                        notes,
                    });
                }
            };
            debug_assert!(entry.time >= now, "event queue went backwards in time");
            now = entry.time;
            executed += 1;
            if let Some(a) = acct.as_mut() {
                a.event();
            }
            if now > self.time_limit {
                return Err(SimError::TimeLimitExceeded {
                    limit: self.time_limit,
                });
            }
            if executed > self.event_limit {
                return Err(SimError::EventLimitExceeded {
                    limit: self.event_limit,
                });
            }

            match entry.kind {
                EventKind::Fire(Event(f)) => {
                    let mut ec = EventCtx {
                        now,
                        pending: &mut pending,
                        wakes: &mut wakes,
                    };
                    f(&mut ec);
                }
                EventKind::Resume(pid) => {
                    let slot = &mut self.procs[pid.index()];
                    match slot.state {
                        ProcState::Runnable => {}
                        // A wake raced with completion, or a stale resume:
                        // skip quietly.
                        ProcState::Done | ProcState::Blocked { .. } => continue,
                    }
                    slot.last_progress = now;
                    let slice_start = acct.as_ref().map(|_| Instant::now());
                    let mut parked = false;
                    if slot.reply_tx.send(Reply::Resume { now }).is_err() {
                        // Thread died without reporting: treat as panic.
                        return Err(SimError::ProcessPanicked {
                            pid,
                            name: slot.name.clone(),
                            message: "process thread terminated unexpectedly".into(),
                        });
                    }
                    // Serve the process until it yields control.
                    loop {
                        let (from, call) = match self.call_rx.recv() {
                            Ok(c) => c,
                            Err(_) => {
                                unreachable!("call channel cannot close while we hold a sender")
                            }
                        };
                        debug_assert_eq!(from, pid, "call from a process that is not running");
                        match call {
                            ProcCall::Advance(d) => {
                                if let Some(hub) = &self.obs {
                                    hub.span(
                                        pid.0,
                                        now.as_nanos(),
                                        (now + d).as_nanos(),
                                        SpanKind::Compute,
                                        "run",
                                    );
                                    let period = hub.profile_period();
                                    if period > 0 {
                                        hub.profile_add(
                                            pid.0,
                                            "compute",
                                            "",
                                            profile_samples(
                                                now.as_nanos(),
                                                (now + d).as_nanos(),
                                                period,
                                            ),
                                        );
                                    }
                                }
                                pending.push((now + d, EventKind::Resume(pid)));
                                parked = true;
                                break;
                            }
                            ProcCall::Block { reason, probe } => {
                                let slot = &mut self.procs[pid.index()];
                                slot.probe = probe;
                                slot.state = ProcState::Blocked { reason, since: now };
                                parked = true;
                                break;
                            }
                            ProcCall::Schedule { delay, event } => {
                                pending.push((now + delay, EventKind::Fire(event)));
                                let slot = &self.procs[pid.index()];
                                if slot.reply_tx.send(Reply::Ack).is_err() {
                                    return Err(SimError::ProcessPanicked {
                                        pid,
                                        name: slot.name.clone(),
                                        message: "process thread terminated unexpectedly".into(),
                                    });
                                }
                            }
                            ProcCall::Done => {
                                let slot = &mut self.procs[pid.index()];
                                slot.state = ProcState::Done;
                                if !slot.daemon {
                                    live_nondaemons -= 1;
                                }
                                break;
                            }
                            ProcCall::Panicked(message) => {
                                return Err(SimError::ProcessPanicked {
                                    pid,
                                    name: self.procs[pid.index()].name.clone(),
                                    message,
                                });
                            }
                        }
                    }
                    if let (Some(a), Some(t0)) = (acct.as_mut(), slice_start) {
                        a.slice(pid.0, t0, parked);
                    }
                }
            }

            // Flush effects produced by the entry we just executed, in order.
            for w in wakes.drain(..) {
                let slot = &mut self.procs[w.index()];
                if matches!(slot.state, ProcState::Blocked { .. }) {
                    slot.probe = None;
                    if let ProcState::Blocked { reason, since } =
                        std::mem::replace(&mut slot.state, ProcState::Runnable)
                    {
                        if let Some(hub) = &self.obs {
                            let period = hub.profile_period();
                            if period > 0 {
                                let samples =
                                    profile_samples(since.as_nanos(), now.as_nanos(), period);
                                if samples > 0 {
                                    // A layer that annotated the wait (e.g.
                                    // a DSM `Global_Read` naming its
                                    // location) wins over the raw blocking
                                    // reason.
                                    let (phase, detail) = hub
                                        .phase_of(w.0)
                                        .unwrap_or_else(|| ("blocked".into(), reason.clone()));
                                    hub.profile_add(w.0, &phase, &detail, samples);
                                }
                            }
                            hub.span(
                                w.0,
                                since.as_nanos(),
                                now.as_nanos(),
                                SpanKind::Blocked,
                                reason,
                            );
                        }
                    }
                    pending.push((now, EventKind::Resume(w)));
                }
            }
            for (t, kind) in pending.drain(..) {
                queue.push(QueueEntry { time: t, seq, kind });
                seq += 1;
            }
        }
    }
}

/// Wall-clock self-accounting for the event loop, active only when a hub
/// requested it via [`SimBuilder::attach_wall`]. Counts are batched
/// locally and flushed into the hub as [`SchedDelta`]s every
/// `FLUSH_EVERY` entries (and once at loop exit), so the steady-state
/// cost per entry is a handful of integer adds — the hub's atomics are
/// touched ~once per 4096 events.
struct WallAcct {
    hub: Hub,
    started: Instant,
    /// Wall ns already attributed to the hub by previous flushes.
    last_wall_flushed: u64,
    events: u64,
    since_flush: u64,
    parks: u64,
    unparks: u64,
    exec_ns: u64,
    per_proc: BTreeMap<u32, (u64, u64)>,
    /// When each parked process re-parked, for park-duration sampling.
    parked_at: BTreeMap<u32, Instant>,
    /// Park durations (re-park → next slice start) since the last flush.
    park: nscc_obs::Histogram,
}

impl WallAcct {
    const FLUSH_EVERY: u64 = 4096;

    fn new(hub: Hub) -> WallAcct {
        WallAcct {
            hub,
            started: Instant::now(),
            last_wall_flushed: 0,
            events: 0,
            since_flush: 0,
            parks: 0,
            unparks: 0,
            exec_ns: 0,
            per_proc: BTreeMap::new(),
            parked_at: BTreeMap::new(),
            park: nscc_obs::Histogram::new(),
        }
    }

    /// One queue entry executed.
    fn event(&mut self) {
        self.events += 1;
        self.since_flush += 1;
        if self.since_flush >= Self::FLUSH_EVERY {
            self.flush();
        }
    }

    /// One process slice served: `t0` is the real instant the scheduler
    /// handed the thread its `Resume`; the slice ran until now. `parked`
    /// is true when the slice ended with the thread re-parking on its
    /// reply channel (advance/block) rather than exiting.
    fn slice(&mut self, pid: u32, t0: Instant, parked: bool) {
        let end = Instant::now();
        let ns = end.saturating_duration_since(t0).as_nanos() as u64;
        // The gap between this process's previous re-park and this
        // slice's start is one park-duration sample: the hand-off tail
        // the coroutine-scheduler rewrite must shrink.
        if let Some(p) = self.parked_at.remove(&pid) {
            self.park
                .record(t0.saturating_duration_since(p).as_nanos() as u64);
        }
        self.exec_ns += ns;
        self.unparks += 1;
        self.parks += u64::from(parked);
        let e = self.per_proc.entry(pid).or_insert((0, 0));
        e.0 += ns;
        e.1 += 1;
        if parked {
            self.parked_at.insert(pid, end);
        }
    }

    /// Hand the accumulated deltas to the hub.
    fn flush(&mut self) {
        let wall_total = self.started.elapsed().as_nanos() as u64;
        let wall_ns = wall_total.saturating_sub(self.last_wall_flushed);
        self.last_wall_flushed = wall_total;
        self.since_flush = 0;
        self.hub.note_sched(&SchedDelta {
            events: std::mem::take(&mut self.events),
            parks: std::mem::take(&mut self.parks),
            unparks: std::mem::take(&mut self.unparks),
            exec_ns: std::mem::take(&mut self.exec_ns),
            wall_ns,
            per_proc: std::mem::take(&mut self.per_proc)
                .into_iter()
                .map(|(pid, (exec_ns, slices))| (pid, exec_ns, slices))
                .collect(),
            park: std::mem::take(&mut self.park),
        });
    }
}

/// Deterministic virtual-time sampling: the number of sampling ticks
/// (multiples of `period`) falling in the half-open interval
/// `(start_ns, end_ns]`. Purely arithmetic on the virtual clock, so two
/// same-seed runs produce byte-identical profiles.
fn profile_samples(start_ns: u64, end_ns: u64, period: u64) -> u64 {
    (end_ns / period).saturating_sub(start_ns / period)
}

/// Park a fresh process thread until its first `Resume` arrives.
fn ctx_first_resume(ctx: &mut Ctx) -> Result<(), ()> {
    ctx.await_first_resume()
}

/// Teardown of daemon processes unwinds their threads with a
/// [`ShutdownToken`] panic, which is caught — but the default panic hook
/// would still print a scary message. Install (once) a wrapper hook that
/// stays silent for shutdown tokens and defers to the previous hook for
/// everything else.
fn install_quiet_shutdown_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownToken>().is_none() {
                previous(info);
            }
        }));
    });
}
