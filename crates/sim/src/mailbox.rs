//! Virtual-time mailboxes: the basic inter-process communication channel.
//!
//! A [`Mailbox`] is an unbounded FIFO of messages owned by one receiving
//! process. Deliveries happen from *events* (typically scheduled by a
//! network model at the computed arrival time); receives happen from the
//! owning process and block in virtual time until a message is available.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::EventCtx;
use crate::process::{Ctx, Pid};
use crate::time::SimTime;

struct Inner<T> {
    queue: VecDeque<T>,
    waiter: Option<Pid>,
    delivered: u64,
    received: u64,
    /// Deepest the queue has ever been.
    high_watermark: u64,
    /// Depth at which a one-shot warning fires (None = disabled).
    warn_at: Option<u64>,
    /// The warning already fired (it is once per mailbox, not per message).
    warned: bool,
    /// A fired warning not yet collected by [`Mailbox::take_warn`]; holds
    /// the depth observed at the crossing.
    warn_pending: Option<u64>,
}

impl<T> Inner<T> {
    /// Track depth after a push; arm the one-shot warning at the crossing.
    fn note_depth(&mut self, name: &str) {
        let depth = self.queue.len() as u64;
        if depth > self.high_watermark {
            self.high_watermark = depth;
        }
        if let Some(warn) = self.warn_at {
            if depth >= warn && !self.warned {
                self.warned = true;
                self.warn_pending = Some(depth);
                eprintln!(
                    "warning: mailbox `{name}` depth {depth} crossed warn \
                     threshold {warn} (NSCC_MAILBOX_WARN) — receiver is \
                     falling behind"
                );
            }
        }
    }
}

/// An unbounded virtual-time FIFO channel with a single logical receiver.
///
/// Cloning a `Mailbox` clones a handle to the same queue (cheap `Arc`
/// clone). Access is serialized by the engine (only one process/event runs
/// at a time), so the internal lock is uncontended.
pub struct Mailbox<T> {
    inner: Arc<Mutex<Inner<T>>>,
    name: String,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
            name: self.name.clone(),
        }
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// Create an empty mailbox; `name` appears in deadlock diagnostics.
    pub fn new(name: impl Into<String>) -> Self {
        Mailbox {
            inner: Arc::new(Mutex::new(Inner {
                queue: VecDeque::new(),
                waiter: None,
                delivered: 0,
                received: 0,
                high_watermark: 0,
                warn_at: None,
                warned: false,
                warn_pending: None,
            })),
            name: name.into(),
        }
    }

    /// Push a message from an event (e.g. a network delivery) and wake the
    /// receiver if it is blocked in [`recv`](Mailbox::recv).
    pub fn deliver(&self, ec: &mut EventCtx<'_>, msg: T) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(msg);
        inner.delivered += 1;
        inner.note_depth(&self.name);
        if let Some(pid) = inner.waiter.take() {
            ec.wake(pid);
        }
    }

    /// Push a message directly from process context **at the current
    /// instant** (zero-latency local delivery). The wake is scheduled as an
    /// immediate event.
    pub fn deliver_now(&self, ctx: &mut Ctx, msg: T) {
        let mut inner = self.inner.lock();
        inner.queue.push_back(msg);
        inner.delivered += 1;
        inner.note_depth(&self.name);
        if let Some(pid) = inner.waiter.take() {
            drop(inner);
            ctx.wake(pid);
        }
    }

    /// Blocking receive: suspends the calling process in virtual time until
    /// a message is available.
    pub fn recv(&self, ctx: &mut Ctx) -> T {
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(msg) = inner.queue.pop_front() {
                    inner.received += 1;
                    return msg;
                }
                debug_assert!(
                    inner.waiter.is_none() || inner.waiter == Some(ctx.pid()),
                    "mailbox `{}` has multiple waiters",
                    self.name
                );
                inner.waiter = Some(ctx.pid());
            }
            let depth = Arc::clone(&self.inner);
            ctx.block_with_probe(format!("recv on mailbox `{}`", self.name), move || {
                depth.lock().queue.len()
            });
        }
    }

    /// Blocking receive with a virtual-time deadline: returns `None` once
    /// the clock reaches `deadline` with no message available. The timeout
    /// is driven by a scheduled wake event, so it fires even when nothing
    /// else is happening (it never turns into a deadlock).
    pub fn recv_deadline(&self, ctx: &mut Ctx, deadline: SimTime) -> Option<T> {
        let mut armed = false;
        loop {
            {
                let mut inner = self.inner.lock();
                if let Some(msg) = inner.queue.pop_front() {
                    inner.received += 1;
                    return Some(msg);
                }
                if ctx.now() >= deadline {
                    if inner.waiter == Some(ctx.pid()) {
                        inner.waiter = None;
                    }
                    return None;
                }
                debug_assert!(
                    inner.waiter.is_none() || inner.waiter == Some(ctx.pid()),
                    "mailbox `{}` has multiple waiters",
                    self.name
                );
                inner.waiter = Some(ctx.pid());
            }
            if !armed {
                armed = true;
                let pid = ctx.pid();
                // A wake on a non-blocked process is ignored, so the timer
                // is harmless if a message arrives first.
                ctx.schedule_fn(deadline.saturating_sub(ctx.now()), move |ec| ec.wake(pid));
            }
            let depth = Arc::clone(&self.inner);
            ctx.block_with_probe(
                format!("recv (deadline) on mailbox `{}`", self.name),
                move || depth.lock().queue.len(),
            );
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let msg = inner.queue.pop_front();
        if msg.is_some() {
            inner.received += 1;
        }
        msg
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total messages ever delivered into this mailbox.
    pub fn total_delivered(&self) -> u64 {
        self.inner.lock().delivered
    }

    /// Deepest the queue has ever been (a backpressure gauge: a receiver
    /// keeping up holds this near 1 regardless of traffic volume).
    pub fn high_watermark(&self) -> u64 {
        self.inner.lock().high_watermark
    }

    /// Arm a one-shot depth warning: the first delivery that leaves the
    /// queue at or above `depth` prints one stderr line and records a
    /// pending warning for [`Mailbox::take_warn`].
    pub fn set_warn_threshold(&self, depth: u64) {
        self.inner.lock().warn_at = Some(depth);
    }

    /// Collect a fired-but-unreported depth warning, if any: the depth
    /// observed at the crossing. Polled by the message layer so it can emit
    /// a structured observability event from receiver context.
    pub fn take_warn(&self) -> Option<u64> {
        self.inner.lock().warn_pending.take()
    }

    /// Total messages ever received out of this mailbox.
    pub fn total_received(&self) -> u64 {
        self.inner.lock().received
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimBuilder, SimTime};

    #[test]
    fn try_recv_on_empty_is_none() {
        let mb: Mailbox<u32> = Mailbox::new("t");
        assert!(mb.try_recv().is_none());
        assert!(mb.is_empty());
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb: Mailbox<u32> = Mailbox::new("data");
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            let v = mb_r.recv(ctx);
            assert_eq!(v, 7);
            assert_eq!(ctx.now(), SimTime::from_millis(3));
        });
        sim.spawn("sender", move |ctx| {
            let mb = mb_s.clone();
            ctx.schedule_fn(SimTime::from_millis(3), move |ec| {
                mb.deliver(ec, 7);
            });
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_millis(3));
        assert_eq!(mb.total_delivered(), 1);
        assert_eq!(mb.total_received(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mb: Mailbox<u32> = Mailbox::new("fifo");
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            for expect in 0..10u32 {
                assert_eq!(mb_r.recv(ctx), expect);
            }
        });
        sim.spawn("sender", move |ctx| {
            for i in 0..10u32 {
                let mb = mb_s.clone();
                ctx.schedule_fn(SimTime::from_millis(i as u64 + 1), move |ec| {
                    mb.deliver(ec, i);
                });
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_deadline_times_out_empty() {
        let mb: Mailbox<u32> = Mailbox::new("slow");
        let mb_r = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            let got = mb_r.recv_deadline(ctx, SimTime::from_millis(5));
            assert_eq!(got, None);
            assert_eq!(ctx.now(), SimTime::from_millis(5));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_millis(5));
    }

    #[test]
    fn recv_deadline_returns_early_message() {
        let mb: Mailbox<u32> = Mailbox::new("fast");
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            let got = mb_r.recv_deadline(ctx, SimTime::from_millis(10));
            assert_eq!(got, Some(42));
            assert_eq!(ctx.now(), SimTime::from_millis(2));
            // The stale timer wake must not disturb a later plain recv.
            let v = mb_r.recv(ctx);
            assert_eq!(v, 43);
        });
        sim.spawn("sender", move |ctx| {
            let mb1 = mb_s.clone();
            ctx.schedule_fn(SimTime::from_millis(2), move |ec| mb1.deliver(ec, 42));
            let mb2 = mb_s.clone();
            ctx.schedule_fn(SimTime::from_millis(20), move |ec| mb2.deliver(ec, 43));
        });
        sim.run().unwrap();
    }

    #[test]
    fn high_watermark_and_one_shot_warn() {
        let mb: Mailbox<u32> = Mailbox::new("deep");
        mb.set_warn_threshold(3);
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            // Drain only after everything is queued.
            ctx.advance(SimTime::from_millis(100));
            for expect in 0..5u32 {
                assert_eq!(mb_r.recv(ctx), expect);
            }
        });
        sim.spawn("sender", move |ctx| {
            for i in 0..5u32 {
                let mb = mb_s.clone();
                ctx.schedule_fn(SimTime::from_millis(i as u64 + 1), move |ec| {
                    mb.deliver(ec, i);
                });
            }
        });
        sim.run().unwrap();
        assert_eq!(mb.high_watermark(), 5);
        // The crossing fired once, at the delivery that reached depth 3.
        assert_eq!(mb.take_warn(), Some(3));
        assert_eq!(mb.take_warn(), None);
    }

    #[test]
    fn no_warn_below_threshold() {
        let mb: Mailbox<u32> = Mailbox::new("shallow");
        mb.set_warn_threshold(10);
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            assert_eq!(mb_r.recv(ctx), 1);
        });
        sim.spawn("sender", move |ctx| {
            let mb = mb_s.clone();
            ctx.schedule_fn(SimTime::from_millis(1), move |ec| mb.deliver(ec, 1));
        });
        sim.run().unwrap();
        assert_eq!(mb.high_watermark(), 1);
        assert_eq!(mb.take_warn(), None);
    }

    #[test]
    fn deliver_now_wakes_peer() {
        let mb: Mailbox<&'static str> = Mailbox::new("local");
        let mb_r = mb.clone();
        let mb_s = mb.clone();
        let mut sim = SimBuilder::new(1);
        sim.spawn("receiver", move |ctx| {
            assert_eq!(mb_r.recv(ctx), "hi");
        });
        sim.spawn("sender", move |ctx| {
            ctx.advance(SimTime::from_millis(1));
            mb_s.deliver_now(ctx, "hi");
        });
        sim.run().unwrap();
    }
}
