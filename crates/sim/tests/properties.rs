//! Property-based tests of the simulation engine's core guarantees.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use nscc_sim::{Mailbox, SimBuilder, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The end time of independent processes is the max of their local
    /// advance sums, whatever the interleaving.
    #[test]
    fn end_time_is_max_of_process_sums(
        durations in prop::collection::vec(prop::collection::vec(1u64..5000, 1..20), 1..6)
    ) {
        let mut sim = SimBuilder::new(0);
        let mut expected = SimTime::ZERO;
        for (i, ds) in durations.iter().enumerate() {
            let total: SimTime = ds.iter().map(|&d| SimTime::from_micros(d)).sum();
            expected = expected.max(total);
            let ds = ds.clone();
            sim.spawn(format!("p{i}"), move |ctx| {
                for d in ds {
                    ctx.advance(SimTime::from_micros(d));
                }
            });
        }
        let report = sim.run().expect("no deadlock");
        prop_assert_eq!(report.end_time, expected);
    }

    /// Mailboxes deliver every message exactly once, in delivery-time
    /// order, whatever the schedule of sends.
    #[test]
    fn mailbox_delivers_everything_in_order(
        sends in prop::collection::vec((0u64..10_000, 0u64..2_000), 1..40)
    ) {
        let mb: Mailbox<u64> = Mailbox::new("props");
        let out = Arc::new(Mutex::new(Vec::new()));
        let n = sends.len();
        let mut sim = SimBuilder::new(1);
        {
            let mb = mb.clone();
            sim.spawn("sender", move |ctx| {
                // Schedule all deliveries up-front at absolute times.
                for (send_at, delay) in sends {
                    let mb = mb.clone();
                    let at = SimTime::from_micros(send_at + delay);
                    ctx.schedule_fn(at, move |ec| {
                        let t = ec.now().as_nanos();
                        mb.deliver(ec, t);
                    });
                }
            });
        }
        {
            let mb = mb.clone();
            let out = Arc::clone(&out);
            sim.spawn("receiver", move |ctx| {
                for _ in 0..n {
                    let v = mb.recv(ctx);
                    out.lock().push(v);
                }
            });
        }
        sim.run().expect("no deadlock");
        let got = out.lock().clone();
        prop_assert_eq!(got.len(), n);
        // Delivery order is non-decreasing in virtual delivery time.
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Determinism: identical seeds and programs give identical reports.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), n in 1usize..5) {
        let run = |seed: u64| {
            let mut sim = SimBuilder::new(seed);
            for i in 0..n {
                sim.spawn(format!("p{i}"), move |ctx| {
                    use rand::Rng;
                    for _ in 0..20 {
                        let d: u64 = ctx.rng().gen_range(1..1000);
                        ctx.advance(SimTime::from_micros(d));
                    }
                });
            }
            let r = sim.run().expect("runs");
            (r.end_time, r.events_executed)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
