//! Endpoints and envelopes: the PVM-like communication world.
//!
//! A [`CommWorld`] groups `p` ranks that exchange typed messages over one
//! simulated [`Network`]. Each rank gets an [`Endpoint`] with PVM-flavoured
//! operations: `send`, `broadcast` (unicast fan-out, like `pvm_mcast` over
//! Ethernet), blocking `recv`, and non-blocking `try_recv`. Per-message CPU
//! overheads (the dominant cost of user-level message passing in the
//! paper's era) are charged to the sending/receiving process's virtual
//! clock.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use nscc_net::{Network, NodeId, Verdict, WarpMeter};
use nscc_obs::{Hub, ObsEvent};
use nscc_sim::{Ctx, Mailbox, SimTime};

use crate::reliable::{self, RelMsg, RelState, ReliableConfig};
use crate::wire::wire_size;

/// Per-message CPU costs and fixed header size.
#[derive(Debug, Clone)]
pub struct MsgConfig {
    /// CPU time the sender spends per send (packing + syscall).
    pub send_overhead: SimTime,
    /// CPU time the receiver spends per received message (unpacking).
    pub recv_overhead: SimTime,
    /// Message-layer header bytes added to every payload.
    pub header_bytes: usize,
    /// Ack/retransmit layer for lossy media; `None` (the default) keeps
    /// the paper's fire-and-forget transport, byte-for-byte.
    pub reliable: Option<ReliableConfig>,
    /// Mailbox depth at which a one-shot backpressure warning fires per
    /// rank (stderr line + `MailboxHigh` obs event). `None` disables.
    /// Bench bins set this from `NSCC_MAILBOX_WARN`.
    pub mailbox_warn: Option<u64>,
}

impl Default for MsgConfig {
    /// PVM 3.x (direct routing) on a 77 MHz RS/6000: roughly 150 µs of
    /// sender CPU and 100 µs of receiver CPU per message, 32-byte message
    /// header, no reliability layer.
    fn default() -> Self {
        MsgConfig {
            send_overhead: SimTime::from_micros(150),
            recv_overhead: SimTime::from_micros(100),
            header_bytes: 32,
            reliable: None,
            mailbox_warn: None,
        }
    }
}

/// Causal provenance of one tagged message: which writer generated which
/// location at which iteration, plus the frame's virtual-time budget so
/// far. Stamped by [`Endpoint::send_tagged`] /
/// [`Endpoint::multicast_tagged`] **only when an observability hub is
/// attached** — detached worlds never allocate a sequence number or probe
/// the medium, preserving the zero-cost-when-detached guarantee.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Provenance {
    /// Writing rank.
    pub writer: u32,
    /// Location identifier (the DSM's `LocId.0`).
    pub loc: u32,
    /// Writer's iteration number when the value was generated.
    pub write_iter: u64,
    /// World-unique message sequence number (allocation order is
    /// deterministic because the simulation is).
    pub msg_seq: u64,
    /// Time the frame waited for the medium before its first transmission
    /// could start, in nanoseconds (probed at submit time).
    pub queued_ns: u64,
    /// Delay added by the reliable layer's retransmissions: original
    /// submit → start of the delivering attempt. Zero on first-try
    /// deliveries and on unreliable transports.
    pub retrans_ns: u64,
    /// Virtual time the value was written — stamped in
    /// [`Endpoint::stamp`] *before* the sender's per-message CPU overhead
    /// advances the clock, so `sent_at - write_ns` is exactly the
    /// writer-side publish cost.
    pub write_ns: u64,
    /// Injected fault delay carried by the delivering frame copy (stall
    /// floors, degradation windows, delay faults; a duplicate's second
    /// copy also books its inter-copy gap here). The staleness tracer's
    /// `fault` stage.
    pub fault_ns: u64,
    /// Virtual time this frame copy arrives at the destination — stamped
    /// per delivered copy at plan time, so retransmitted and duplicated
    /// copies each carry their own arrival.
    pub arrive_ns: u64,
    /// Virtual time the receiver popped the envelope from its mailbox —
    /// stamped in `finish_recv` *before* the receiver's per-message CPU
    /// overhead advances the clock, so `arrive_ns..recv_ns` is exactly
    /// the mailbox dwell.
    pub recv_ns: u64,
}

/// A received message with its transport metadata.
#[derive(Debug, Clone)]
pub struct Envelope<T> {
    /// Sending rank.
    pub src: usize,
    /// Virtual time at which the sender submitted the message.
    pub sent_at: SimTime,
    /// Causal provenance, present only on tagged sends from a world with
    /// an observability hub attached (see [`Provenance`]).
    pub prov: Option<Provenance>,
    /// The payload.
    pub payload: T,
}

/// Cumulative per-world message counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CommStats {
    /// Messages sent (one per destination; a broadcast to `p-1` peers
    /// counts `p-1`).
    pub sent: u64,
    /// Messages received by application code.
    pub received: u64,
    /// Total payload bytes sent (excluding headers).
    pub payload_bytes: u64,
    /// Frames retransmitted by the reliable layer (0 when disabled).
    pub retransmits: u64,
    /// Acknowledgement frames put on the wire by the reliable layer.
    pub acks_sent: u64,
    /// Duplicate deliveries suppressed before reaching a mailbox.
    pub dup_suppressed: u64,
    /// Frames abandoned after exhausting their retries.
    pub give_ups: u64,
    /// Deepest any rank's mailbox has ever been (backpressure gauge; a
    /// receiver keeping up holds this near 1 regardless of volume).
    pub mailbox_high_watermark: u64,
}

impl CommStats {
    /// Accumulate another world's counters (for aggregating over runs).
    /// The mailbox high-watermark is a gauge, so it merges by max.
    pub fn merge(&mut self, other: &CommStats) {
        self.sent += other.sent;
        self.received += other.received;
        self.payload_bytes += other.payload_bytes;
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.dup_suppressed += other.dup_suppressed;
        self.give_ups += other.give_ups;
        self.mailbox_high_watermark = self
            .mailbox_high_watermark
            .max(other.mailbox_high_watermark);
    }
}

impl nscc_ckpt::Snapshot for CommStats {
    fn encode(&self, enc: &mut nscc_ckpt::Enc) {
        for v in [
            self.sent,
            self.received,
            self.payload_bytes,
            self.retransmits,
            self.acks_sent,
            self.dup_suppressed,
            self.give_ups,
            self.mailbox_high_watermark,
        ] {
            enc.put_u64(v);
        }
    }

    fn decode(dec: &mut nscc_ckpt::Dec<'_>) -> Result<Self, nscc_ckpt::CkptError> {
        Ok(CommStats {
            sent: dec.u64()?,
            received: dec.u64()?,
            payload_bytes: dec.u64()?,
            retransmits: dec.u64()?,
            acks_sent: dec.u64()?,
            dup_suppressed: dec.u64()?,
            give_ups: dec.u64()?,
            mailbox_high_watermark: dec.u64()?,
        })
    }
}

pub(crate) struct WorldInner {
    pub(crate) stats: CommStats,
    pub(crate) rel: RelState,
    /// Next provenance sequence number (see [`Provenance::msg_seq`]).
    pub(crate) prov_seq: u64,
}

/// A communication world of `p` ranks over one simulated network.
pub struct CommWorld<T: Send + 'static> {
    net: Network,
    boxes: Vec<Mailbox<Envelope<T>>>,
    nodes: Vec<NodeId>,
    cfg: MsgConfig,
    warp: Option<WarpMeter>,
    obs: Option<Hub>,
    inner: Arc<Mutex<WorldInner>>,
}

impl<T: Send + 'static> CommWorld<T> {
    /// A world of `ranks` endpoints mapped to nodes `0..ranks` of `net`.
    pub fn new(net: Network, ranks: usize, cfg: MsgConfig) -> Self {
        let boxes: Vec<Mailbox<Envelope<T>>> = (0..ranks)
            .map(|r| Mailbox::new(format!("rank{r}")))
            .collect();
        if let Some(warn) = cfg.mailbox_warn {
            for mb in &boxes {
                mb.set_warn_threshold(warn);
            }
        }
        let nodes = (0..ranks).map(|r| NodeId(r as u32)).collect();
        CommWorld {
            net,
            boxes,
            nodes,
            cfg,
            warp: None,
            obs: None,
            inner: Arc::new(Mutex::new(WorldInner {
                stats: CommStats::default(),
                rel: RelState::default(),
                prov_seq: 0,
            })),
        }
    }

    /// Attach a [`WarpMeter`]; every subsequent receive records a warp
    /// observation (as the paper instruments *all* messages above PVM).
    pub fn with_warp(mut self, warp: WarpMeter) -> Self {
        self.warp = Some(warp);
        self
    }

    /// Attach an observability hub. When a [`WarpMeter`] is also attached,
    /// every warp sample produced at receive time is forwarded to the
    /// hub's warp timeline, timestamped with the receiver's virtual clock.
    pub fn with_obs(mut self, hub: Hub) -> Self {
        self.obs = Some(hub);
        self
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// The endpoint for `rank`.
    pub fn endpoint(&self, rank: usize) -> Endpoint<T> {
        assert!(rank < self.ranks(), "rank {rank} out of range");
        Endpoint {
            rank,
            net: self.net.clone(),
            boxes: self.boxes.clone(),
            nodes: self.nodes.clone(),
            cfg: self.cfg.clone(),
            warp: self.warp.clone(),
            obs: self.obs.clone(),
            inner: Arc::clone(&self.inner),
        }
    }

    /// Snapshot of the counters. The mailbox high-watermark is computed
    /// here, as the max over every rank's mailbox.
    pub fn stats(&self) -> CommStats {
        let mut stats = self.inner.lock().stats;
        stats.mailbox_high_watermark = self
            .boxes
            .iter()
            .map(|mb| mb.high_watermark())
            .max()
            .unwrap_or(0);
        stats
    }
}

/// One rank's handle into a [`CommWorld`].
pub struct Endpoint<T: Send + 'static> {
    rank: usize,
    net: Network,
    boxes: Vec<Mailbox<Envelope<T>>>,
    nodes: Vec<NodeId>,
    cfg: MsgConfig,
    warp: Option<WarpMeter>,
    obs: Option<Hub>,
    inner: Arc<Mutex<WorldInner>>,
}

impl<T: Send + 'static> Clone for Endpoint<T> {
    fn clone(&self) -> Self {
        Endpoint {
            rank: self.rank,
            net: self.net.clone(),
            boxes: self.boxes.clone(),
            nodes: self.nodes.clone(),
            cfg: self.cfg.clone(),
            warp: self.warp.clone(),
            obs: self.obs.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Serialize + Clone + Send + 'static> Endpoint<T> {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// Send `payload` to `dst`, charging the sender's CPU overhead and
    /// occupying the network. Returns the scheduled arrival time.
    pub fn send(&self, ctx: &mut Ctx, dst: usize, payload: T) -> SimTime {
        self.send_prov(ctx, dst, payload, None)
    }

    /// [`send`](Endpoint::send) with a causal provenance stamp: the
    /// envelope records that this message carries `loc` as generated in
    /// the sender's iteration `write_iter`. When no observability hub is
    /// attached the stamp is skipped entirely (no sequence allocation, no
    /// medium probe) and this is exactly `send`.
    pub fn send_tagged(
        &self,
        ctx: &mut Ctx,
        dst: usize,
        payload: T,
        loc: u32,
        write_iter: u64,
    ) -> SimTime {
        let prov = self.stamp(ctx, loc, write_iter);
        self.send_prov(ctx, dst, payload, prov)
    }

    fn send_prov(
        &self,
        ctx: &mut Ctx,
        dst: usize,
        payload: T,
        prov: Option<Provenance>,
    ) -> SimTime {
        assert!(
            dst < self.boxes.len(),
            "destination rank {dst} out of range"
        );
        assert_ne!(
            dst, self.rank,
            "self-sends are not modeled; use local state"
        );
        ctx.advance(self.cfg.send_overhead);
        let bytes = wire_size(&payload) + self.cfg.header_bytes;
        {
            let mut inner = self.inner.lock();
            inner.stats.sent += 1;
            inner.stats.payload_bytes += (bytes - self.cfg.header_bytes) as u64;
        }
        let env = Envelope {
            src: self.rank,
            sent_at: ctx.now(),
            prov,
            payload,
        };
        match self.cfg.reliable {
            None => self.plan_and_deliver(ctx, dst, bytes, env),
            Some(rc) => self.rel_send(ctx, dst, bytes, env, rc),
        }
    }

    /// Plan one unicast frame and schedule the surviving copies into the
    /// destination mailbox — behaviorally identical to
    /// [`Network::send_to`], except each scheduled copy's provenance (when
    /// present) is stamped with that copy's own arrival instant and fault
    /// share, which per-mailbox scheduling cannot do from inside the net
    /// layer.
    fn plan_and_deliver(
        &self,
        ctx: &mut Ctx,
        dst: usize,
        bytes: usize,
        env: Envelope<T>,
    ) -> SimTime {
        let now = ctx.now();
        let tx = self
            .net
            .plan(now, self.nodes[self.rank], self.nodes[dst], bytes);
        match tx.verdict {
            Verdict::Deliver => {
                let mut env = env;
                if let Some(p) = env.prov.as_mut() {
                    p.arrive_ns = tx.arrival.as_nanos();
                    p.fault_ns = tx.fault.as_nanos();
                }
                let mb = self.boxes[dst].clone();
                ctx.schedule_fn(tx.arrival - now, move |ec| mb.deliver(ec, env));
            }
            Verdict::Drop(_) => {}
            Verdict::Duplicate { second } => {
                let (mb, mb2) = (self.boxes[dst].clone(), self.boxes[dst].clone());
                let mut copy = env.clone();
                let mut env = env;
                if let Some(p) = env.prov.as_mut() {
                    p.arrive_ns = tx.arrival.as_nanos();
                    p.fault_ns = tx.fault.as_nanos();
                }
                if let Some(p) = copy.prov.as_mut() {
                    // The spurious copy's extra gap past the first arrival
                    // is fault-injected too.
                    p.arrive_ns = second.as_nanos();
                    p.fault_ns = (tx.fault + second.saturating_sub(tx.arrival)).as_nanos();
                }
                ctx.schedule_fn(tx.arrival - now, move |ec| mb.deliver(ec, env));
                ctx.schedule_fn(second.saturating_sub(now), move |ec| mb2.deliver(ec, copy));
            }
        }
        tx.arrival
    }

    /// Build the provenance stamp for a tagged send, or `None` when the
    /// world has no hub (the zero-cost-when-detached path: one branch).
    /// The queueing probe is read *before* the send occupies the medium,
    /// so it reflects the backlog this frame actually waits behind.
    fn stamp(&self, ctx: &Ctx, loc: u32, write_iter: u64) -> Option<Provenance> {
        if self.obs.is_none() {
            return None;
        }
        let msg_seq = {
            let mut inner = self.inner.lock();
            let s = inner.prov_seq;
            inner.prov_seq += 1;
            s
        };
        // The probe uses the post-overhead submit time the frame will see.
        let at = ctx.now() + self.cfg.send_overhead;
        Some(Provenance {
            writer: self.rank as u32,
            loc,
            write_iter,
            msg_seq,
            queued_ns: self.net.queue_delay(at).as_nanos(),
            retrans_ns: 0,
            // Stamped before the send overhead advances the clock: the
            // value exists *now*; everything until `sent_at` is publish.
            write_ns: ctx.now().as_nanos(),
            fault_ns: 0,
            arrive_ns: 0,
            recv_ns: 0,
        })
    }

    /// Hand one envelope to the ack/retransmit layer (see
    /// [`crate::reliable`]).
    fn rel_send(
        &self,
        ctx: &mut Ctx,
        dst: usize,
        bytes: usize,
        env: Envelope<T>,
        rc: ReliableConfig,
    ) -> SimTime {
        let seq = {
            let mut inner = self.inner.lock();
            let seq = inner.rel.next_seq;
            inner.rel.next_seq += 1;
            seq
        };
        let msg = RelMsg {
            net: self.net.clone(),
            inner: Arc::clone(&self.inner),
            obs: self.obs.clone(),
            cfg: rc,
            src_node: self.nodes[self.rank],
            dst_node: self.nodes[dst],
            src: self.rank,
            dst,
            seq,
            bytes,
            mailbox: self.boxes[dst].clone(),
            env,
        };
        reliable::attempt(ctx, &msg, 0)
    }

    /// Send `payload` to every other rank. On broadcast-capable media
    /// (the shared Ethernet) this is one frame on the wire and one
    /// sender-side CPU charge — `pvm_mcast` over a bus; elsewhere it
    /// falls back to unicast fan-out.
    pub fn broadcast(&self, ctx: &mut Ctx, payload: T) {
        let dsts: Vec<usize> = (0..self.boxes.len()).filter(|&d| d != self.rank).collect();
        self.multicast(ctx, &dsts, payload);
    }

    /// Send `payload` to the given ranks with a single sender-side pack
    /// (one wire frame on broadcast media). Destination order must not
    /// include this rank.
    pub fn multicast(&self, ctx: &mut Ctx, dsts: &[usize], payload: T) {
        self.multicast_prov(ctx, dsts, payload, None)
    }

    /// [`multicast`](Endpoint::multicast) with a causal provenance stamp
    /// (see [`Endpoint::send_tagged`]); every copy carries the same stamp.
    pub fn multicast_tagged(
        &self,
        ctx: &mut Ctx,
        dsts: &[usize],
        payload: T,
        loc: u32,
        write_iter: u64,
    ) {
        let prov = self.stamp(ctx, loc, write_iter);
        self.multicast_prov(ctx, dsts, payload, prov)
    }

    fn multicast_prov(&self, ctx: &mut Ctx, dsts: &[usize], payload: T, prov: Option<Provenance>) {
        if dsts.is_empty() {
            return;
        }
        if dsts.len() == 1 {
            self.send_prov(ctx, dsts[0], payload, prov);
            return;
        }
        for &d in dsts {
            assert!(d < self.boxes.len(), "destination rank {d} out of range");
            assert_ne!(d, self.rank, "self-sends are not modeled");
        }
        ctx.advance(self.cfg.send_overhead);
        let bytes = wire_size(&payload) + self.cfg.header_bytes;
        {
            let mut inner = self.inner.lock();
            inner.stats.sent += dsts.len() as u64;
            inner.stats.payload_bytes += (bytes - self.cfg.header_bytes) as u64;
        }
        let env = Envelope {
            src: self.rank,
            sent_at: ctx.now(),
            prov,
            payload,
        };
        if let Some(rc) = self.cfg.reliable {
            // Per-destination acking is incompatible with a single wire
            // frame, so reliable multicast is unicast fan-out (still one
            // sender-side CPU charge).
            for &d in dsts {
                self.rel_send(ctx, d, bytes, env.clone(), rc);
            }
            return;
        }
        let now = ctx.now();
        match self.net.plan_broadcast(now, self.nodes[self.rank], bytes) {
            Some(arrival) => {
                // One frame on the wire, heard by all: every copy arrives
                // at the broadcast instant, and broadcast-capable media
                // are never fault-wrapped (the fault layer masks hardware
                // broadcast), so there is no fault share to book.
                let delay = arrival - now;
                for &d in dsts {
                    let mb = self.boxes[d].clone();
                    let mut m = env.clone();
                    if let Some(p) = m.prov.as_mut() {
                        p.arrive_ns = arrival.as_nanos();
                    }
                    ctx.schedule_fn(delay, move |ec| mb.deliver(ec, m));
                }
            }
            None => {
                for &d in dsts {
                    self.plan_and_deliver(ctx, d, bytes, env.clone());
                }
            }
        }
    }

    /// Blocking receive: suspends in virtual time until a message arrives,
    /// then charges the receiver's CPU overhead.
    pub fn recv(&self, ctx: &mut Ctx) -> Envelope<T> {
        let mut env = self.boxes[self.rank].recv(ctx);
        self.finish_recv(ctx, &mut env);
        env
    }

    /// Blocking receive with a virtual-time deadline: returns `None` if no
    /// message arrives by `deadline` (overhead is charged only on
    /// success). The degradation primitive for fault-tolerant layers.
    pub fn recv_deadline(&self, ctx: &mut Ctx, deadline: SimTime) -> Option<Envelope<T>> {
        let mut env = self.boxes[self.rank].recv_deadline(ctx, deadline)?;
        self.finish_recv(ctx, &mut env);
        Some(env)
    }

    /// Non-blocking receive; charges receive overhead only on success.
    pub fn try_recv(&self, ctx: &mut Ctx) -> Option<Envelope<T>> {
        let mut env = self.boxes[self.rank].try_recv()?;
        self.finish_recv(ctx, &mut env);
        Some(env)
    }

    /// Messages currently queued for this rank.
    pub fn pending(&self) -> usize {
        self.boxes[self.rank].len()
    }

    fn finish_recv(&self, ctx: &mut Ctx, env: &mut Envelope<T>) {
        // Stamp the pop instant before the receive overhead advances the
        // clock: `arrive_ns..recv_ns` is pure mailbox dwell, the overhead
        // is booked downstream (the DSM's apply stage).
        if let Some(p) = env.prov.as_mut() {
            p.recv_ns = ctx.now().as_nanos();
        }
        ctx.advance(self.cfg.recv_overhead);
        self.inner.lock().stats.received += 1;
        if let Some(depth) = self.boxes[self.rank].take_warn() {
            if let Some(hub) = &self.obs {
                hub.emit(ObsEvent::MailboxHigh {
                    t_ns: ctx.now().as_nanos(),
                    rank: self.rank as u32,
                    depth,
                });
            }
        }
        if let Some(warp) = &self.warp {
            let sample = warp.observe(
                self.nodes[self.rank],
                self.nodes[env.src],
                env.sent_at,
                ctx.now(),
            );
            if let (Some(s), Some(hub)) = (sample, &self.obs) {
                hub.warp_sample(ctx.now().as_nanos(), s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_net::IdealMedium;
    use nscc_sim::SimBuilder;

    fn world(ranks: usize) -> CommWorld<u64> {
        CommWorld::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            ranks,
            MsgConfig::default(),
        )
    }

    #[test]
    fn ping_pong_roundtrip() {
        let w = world(2);
        let (e0, e1) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            e0.send(ctx, 1, 42);
            let back = e0.recv(ctx);
            assert_eq!(back.payload, 43);
            assert_eq!(back.src, 1);
        });
        sim.spawn("r1", move |ctx| {
            let msg = e1.recv(ctx);
            assert_eq!(msg.payload, 42);
            assert_eq!(msg.src, 0);
            e1.send(ctx, 0, msg.payload + 1);
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.received, 2);
    }

    #[test]
    fn broadcast_reaches_all_other_ranks() {
        let w = world(4);
        let sender = w.endpoint(0);
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| sender.broadcast(ctx, 7));
        for r in 1..4 {
            let e = w.endpoint(r);
            sim.spawn(format!("r{r}"), move |ctx| {
                assert_eq!(e.recv(ctx).payload, 7);
            });
        }
        sim.run().unwrap();
        assert_eq!(w.stats().sent, 3);
    }

    #[test]
    fn send_charges_cpu_overhead() {
        let w = world(2);
        let e0 = w.endpoint(0);
        let sink = w.endpoint(1);
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            e0.send(ctx, 1, 1);
            assert_eq!(ctx.now(), MsgConfig::default().send_overhead);
        });
        sim.spawn("r1", move |ctx| {
            let _ = sink.recv(ctx);
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let w = world(2);
        let e1 = w.endpoint(1);
        let mut sim = SimBuilder::new(0);
        sim.spawn("r1", move |ctx| {
            assert!(e1.try_recv(ctx).is_none());
            assert_eq!(ctx.now(), SimTime::ZERO, "miss must not cost CPU");
        });
        sim.run().unwrap();
    }

    #[test]
    fn warp_meter_observes_received_messages() {
        let warp = WarpMeter::new();
        let w = CommWorld::<u64>::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            2,
            MsgConfig::default(),
        )
        .with_warp(warp.clone());
        let (e0, e1) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            for _ in 0..5 {
                ctx.advance(SimTime::from_millis(10));
                e0.send(ctx, 1, 0);
            }
        });
        sim.spawn("r1", move |ctx| {
            for _ in 0..5 {
                let _ = e1.recv(ctx);
            }
        });
        sim.run().unwrap();
        assert_eq!(warp.len(), 4);
        assert!((warp.mean() - 1.0).abs() < 0.05, "ideal medium is stable");
    }

    #[test]
    fn warp_samples_are_forwarded_to_the_hub() {
        let warp = WarpMeter::new();
        let hub = Hub::new();
        let w = CommWorld::<u64>::new(
            Network::new(IdealMedium::new(SimTime::from_millis(1))),
            2,
            MsgConfig::default(),
        )
        .with_warp(warp.clone())
        .with_obs(hub.clone());
        let (e0, e1) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            for _ in 0..5 {
                ctx.advance(SimTime::from_millis(10));
                e0.send(ctx, 1, 0);
            }
        });
        sim.spawn("r1", move |ctx| {
            for _ in 0..5 {
                let _ = e1.recv(ctx);
            }
        });
        sim.run().unwrap();
        assert_eq!(warp.len(), 4);
        assert_eq!(hub.warp().len(), 4);
        assert!((hub.warp().summary().mean - warp.mean()).abs() < 1e-12);
    }

    #[test]
    fn mailbox_watermark_flows_into_stats_and_obs() {
        let hub = Hub::new();
        let w = CommWorld::<u64>::new(
            Network::new(IdealMedium::new(SimTime::from_micros(1))),
            2,
            MsgConfig {
                mailbox_warn: Some(3),
                ..MsgConfig::default()
            },
        )
        .with_obs(hub.clone());
        let (e0, e1) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            for i in 0..5u64 {
                e0.send(ctx, 1, i);
            }
        });
        sim.spawn("r1", move |ctx| {
            // Let everything pile up before draining.
            ctx.advance(SimTime::from_millis(50));
            for want in 0..5u64 {
                assert_eq!(e1.recv(ctx).payload, want);
            }
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.mailbox_high_watermark, 5);
        let s = hub.summary();
        assert_eq!(s.mailbox_warnings, 1, "one-shot event at the crossing");
        // CommStats roundtrips through the checkpoint codec.
        let back: CommStats = nscc_ckpt::from_bytes(&nscc_ckpt::to_bytes(&stats)).unwrap();
        assert_eq!(back.mailbox_high_watermark, 5);
        assert_eq!(back.sent, stats.sent);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_panics() {
        let w = world(2);
        let e0 = w.endpoint(0);
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            e0.send(ctx, 0, 1);
        });
        let _ = sim.run().map_err(|e| panic!("{e}"));
    }

    #[test]
    fn fifo_per_sender_pair() {
        let w = world(2);
        let (e0, e1) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(0);
        sim.spawn("r0", move |ctx| {
            for i in 0..20u64 {
                e0.send(ctx, 1, i);
            }
        });
        sim.spawn("r1", move |ctx| {
            for want in 0..20u64 {
                assert_eq!(e1.recv(ctx).payload, want);
            }
        });
        sim.run().unwrap();
    }
}
