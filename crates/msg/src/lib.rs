//! # nscc-msg — PVM-like message passing over simulated networks
//!
//! The paper implements its DSM as "a simple layer of software on top of
//! PVM" (§4.1). This crate is that PVM: typed point-to-point sends and
//! receives between `p` ranks, broadcast as unicast fan-out, per-message
//! CPU overheads charged to the simulated processes, and exact wire-size
//! accounting via a byte-counting serde serializer ([`wire_size`]).
//!
//! ```
//! use nscc_msg::{CommWorld, MsgConfig};
//! use nscc_net::{IdealMedium, Network};
//! use nscc_sim::{SimBuilder, SimTime};
//!
//! let net = Network::new(IdealMedium::new(SimTime::from_millis(1)));
//! let world: CommWorld<String> = CommWorld::new(net, 2, MsgConfig::default());
//! let (tx, rx) = (world.endpoint(0), world.endpoint(1));
//! let mut sim = SimBuilder::new(0);
//! sim.spawn("sender", move |ctx| {
//!     tx.send(ctx, 1, "hello".to_string());
//! });
//! sim.spawn("receiver", move |ctx| {
//!     assert_eq!(rx.recv(ctx).payload, "hello");
//! });
//! sim.run().unwrap();
//! ```

#![warn(missing_docs)]

mod comm;
mod marker;
mod reliable;
mod wire;

pub use comm::{CommStats, CommWorld, Endpoint, Envelope, MsgConfig, Provenance};
pub use marker::{MarkerMsg, MarkerPlane, MarkerPort};
pub use reliable::ReliableConfig;
pub use wire::wire_size;
