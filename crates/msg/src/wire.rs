//! Wire-size accounting: a serde serializer that counts bytes instead of
//! producing them.
//!
//! The simulation never needs real byte buffers — messages travel inside the
//! process as Rust values — but the network model needs faithful *sizes*.
//! [`wire_size`] measures what a compact binary encoding (fixed-width
//! integers, length-prefixed sequences, u32 variant tags) would produce.

use serde::ser::{self, Serialize};
use std::fmt;

/// Compute the encoded size in bytes of `value` under a compact binary
/// encoding. Deterministic and allocation-free.
///
/// ```
/// use nscc_msg::wire_size;
/// assert_eq!(wire_size(&0u64), 8);
/// assert_eq!(wire_size(&(1u32, 2u32)), 8);
/// // Vec: 4-byte length prefix + elements.
/// assert_eq!(wire_size(&vec![0u8; 10]), 14);
/// ```
pub fn wire_size<T: Serialize>(value: &T) -> usize {
    let mut counter = ByteCounter { bytes: 0 };
    value
        .serialize(&mut counter)
        .expect("byte counting cannot fail");
    counter.bytes
}

/// Error type for the counter; counting never actually fails, but serde's
/// trait requires one.
#[derive(Debug)]
pub struct CountError;

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("byte counting error")
    }
}

impl std::error::Error for CountError {}

impl ser::Error for CountError {
    fn custom<T: fmt::Display>(_msg: T) -> Self {
        CountError
    }
}

struct ByteCounter {
    bytes: usize,
}

/// Length prefix used for strings, byte arrays, sequences and maps.
const LEN_PREFIX: usize = 4;
/// Enum variant tag width.
const TAG: usize = 4;

impl<'a> ser::Serializer for &'a mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    type SerializeSeq = &'a mut ByteCounter;
    type SerializeTuple = &'a mut ByteCounter;
    type SerializeTupleStruct = &'a mut ByteCounter;
    type SerializeTupleVariant = &'a mut ByteCounter;
    type SerializeMap = &'a mut ByteCounter;
    type SerializeStruct = &'a mut ByteCounter;
    type SerializeStructVariant = &'a mut ByteCounter;

    fn serialize_bool(self, _v: bool) -> Result<(), CountError> {
        self.bytes += 1;
        Ok(())
    }
    fn serialize_i8(self, _v: i8) -> Result<(), CountError> {
        self.bytes += 1;
        Ok(())
    }
    fn serialize_i16(self, _v: i16) -> Result<(), CountError> {
        self.bytes += 2;
        Ok(())
    }
    fn serialize_i32(self, _v: i32) -> Result<(), CountError> {
        self.bytes += 4;
        Ok(())
    }
    fn serialize_i64(self, _v: i64) -> Result<(), CountError> {
        self.bytes += 8;
        Ok(())
    }
    fn serialize_u8(self, _v: u8) -> Result<(), CountError> {
        self.bytes += 1;
        Ok(())
    }
    fn serialize_u16(self, _v: u16) -> Result<(), CountError> {
        self.bytes += 2;
        Ok(())
    }
    fn serialize_u32(self, _v: u32) -> Result<(), CountError> {
        self.bytes += 4;
        Ok(())
    }
    fn serialize_u64(self, _v: u64) -> Result<(), CountError> {
        self.bytes += 8;
        Ok(())
    }
    fn serialize_f32(self, _v: f32) -> Result<(), CountError> {
        self.bytes += 4;
        Ok(())
    }
    fn serialize_f64(self, _v: f64) -> Result<(), CountError> {
        self.bytes += 8;
        Ok(())
    }
    fn serialize_char(self, _v: char) -> Result<(), CountError> {
        self.bytes += 4;
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CountError> {
        self.bytes += LEN_PREFIX + v.len();
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CountError> {
        self.bytes += LEN_PREFIX + v.len();
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CountError> {
        self.bytes += 1;
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CountError> {
        self.bytes += 1;
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CountError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CountError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CountError> {
        self.bytes += TAG;
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        self.bytes += TAG;
        value.serialize(self)
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, CountError> {
        self.bytes += LEN_PREFIX;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, CountError> {
        Ok(self)
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, CountError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, CountError> {
        self.bytes += TAG;
        Ok(self)
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, CountError> {
        self.bytes += LEN_PREFIX;
        Ok(self)
    }
    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, CountError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, CountError> {
        self.bytes += TAG;
        Ok(self)
    }
}

macro_rules! impl_compound {
    ($trait:ident, $($fn:ident($($arg:ident: $ty:ty),*)),+) => {
        impl ser::$trait for &mut ByteCounter {
            type Ok = ();
            type Error = CountError;
            $(
                fn $fn<T: Serialize + ?Sized>(&mut self, $($arg: $ty,)* value: &T) -> Result<(), CountError> {
                    $(let _ = $arg;)*
                    value.serialize(&mut **self)
                }
            )+
            fn end(self) -> Result<(), CountError> {
                Ok(())
            }
        }
    };
}

impl_compound!(SerializeSeq, serialize_element());
impl_compound!(SerializeTuple, serialize_element());
impl_compound!(SerializeTupleStruct, serialize_field());
impl_compound!(SerializeTupleVariant, serialize_field());
impl_compound!(SerializeStruct, serialize_field(key: &'static str));
impl_compound!(SerializeStructVariant, serialize_field(key: &'static str));

impl ser::SerializeMap for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CountError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[test]
    fn primitives() {
        assert_eq!(wire_size(&true), 1);
        assert_eq!(wire_size(&1u8), 1);
        assert_eq!(wire_size(&1u16), 2);
        assert_eq!(wire_size(&1u32), 4);
        assert_eq!(wire_size(&1u64), 8);
        assert_eq!(wire_size(&1i64), 8);
        assert_eq!(wire_size(&1.0f32), 4);
        assert_eq!(wire_size(&1.0f64), 8);
        assert_eq!(wire_size(&'x'), 4);
        assert_eq!(wire_size(&()), 0);
    }

    #[test]
    fn strings_and_bytes_are_length_prefixed() {
        assert_eq!(wire_size(&"hello"), 4 + 5);
        assert_eq!(wire_size(&String::from("hi")), 4 + 2);
    }

    #[test]
    fn options() {
        assert_eq!(wire_size(&Option::<u64>::None), 1);
        assert_eq!(wire_size(&Some(1u64)), 9);
    }

    #[test]
    fn sequences() {
        assert_eq!(wire_size(&Vec::<u32>::new()), 4);
        assert_eq!(wire_size(&vec![1u32, 2, 3]), 4 + 12);
        assert_eq!(wire_size(&[1u64; 4].as_slice()), 4 + 32);
    }

    #[test]
    fn structs_and_enums() {
        #[derive(Serialize)]
        struct Migrant {
            genome: Vec<u8>,
            fitness: f64,
        }
        let m = Migrant {
            genome: vec![0; 16],
            fitness: 0.5,
        };
        assert_eq!(wire_size(&m), (4 + 16) + 8);

        #[derive(Serialize)]
        enum Msg {
            Ping,
            Data(u64),
            Pair { a: u32, b: u32 },
        }
        assert_eq!(wire_size(&Msg::Ping), 4);
        assert_eq!(wire_size(&Msg::Data(0)), 4 + 8);
        assert_eq!(wire_size(&Msg::Pair { a: 0, b: 0 }), 4 + 8);
    }

    #[test]
    fn maps() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(1u32, 2u64);
        m.insert(3u32, 4u64);
        assert_eq!(wire_size(&m), 4 + 2 * (4 + 8));
    }

    #[test]
    fn nested() {
        #[derive(Serialize)]
        struct Outer {
            items: Vec<(u16, Option<f64>)>,
            name: &'static str,
        }
        let o = Outer {
            items: vec![(1, None), (2, Some(3.0))],
            name: "abc",
        };
        // 4 (len) + [2+1] + [2+1+8] + (4+3)
        assert_eq!(wire_size(&o), 4 + 3 + 11 + 7);
    }
}
