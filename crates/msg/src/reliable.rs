//! Optional ack/retransmit layer under the PVM-like endpoints.
//!
//! The paper's PVM transport assumes a lossless LAN; under the fault plans
//! of `nscc-faults` frames can vanish. When [`ReliableConfig`] is set on
//! [`MsgConfig`](crate::MsgConfig), every unicast send is tracked by a
//! sequence number: the receiver acknowledges each frame with a small ack
//! frame (charged to the wire but not to either CPU — think NIC-level),
//! and the sender retransmits unacknowledged frames with exponential
//! backoff until `max_retries` is exhausted. Duplicate deliveries — from
//! spurious retransmits or the medium itself — are suppressed before the
//! application mailbox sees them.
//!
//! Everything after the initial send runs in event context, so a sender
//! blocked in `recv` (or long dead, under a crash plan) still has its
//! frames retried; the protocol state lives in the world-shared
//! [`RelState`].

use std::collections::HashSet;
use std::sync::Arc;

use parking_lot::Mutex;

use nscc_net::{Network, NodeId, Verdict};
use nscc_obs::{Hub, ObsEvent};
use nscc_sim::{Ctx, EventCtx, Mailbox, SimTime};

use crate::comm::{Envelope, WorldInner};

/// Tuning knobs for the reliable-delivery layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Wire size of an acknowledgement frame.
    pub ack_bytes: usize,
    /// Retransmission timeout for the first retry; each further retry
    /// doubles it (up to [`max_rto`](ReliableConfig::max_rto)).
    pub base_rto: SimTime,
    /// Retransmissions attempted before giving up on a frame.
    pub max_retries: u32,
    /// Ceiling on the exponential backoff: no retry interval exceeds this,
    /// so a long partition cannot push the gap between attempts past a
    /// watchdog's `time_limit` (a frame either delivers or gives up on a
    /// bounded schedule). Must be ≥ `base_rto`; it is ignored below that.
    pub max_rto: SimTime,
}

impl Default for ReliableConfig {
    /// 32-byte acks, 10 ms initial RTO (several LAN round-trips), five
    /// retries — enough to ride out ~97% loss on an independent-loss
    /// link — and a 4 s backoff ceiling (far above the default schedule's
    /// 320 ms final interval, so it only binds in long-partition tunings
    /// with larger retry budgets).
    fn default() -> Self {
        ReliableConfig {
            ack_bytes: 32,
            base_rto: SimTime::from_millis(10),
            max_retries: 5,
            max_rto: SimTime::from_secs(4),
        }
    }
}

impl ReliableConfig {
    /// Timeout before retry `n + 1` (0-based attempt `n`): `base_rto << n`,
    /// with the shift capped so it cannot overflow, clamped to
    /// [`max_rto`](ReliableConfig::max_rto) (but never below `base_rto`).
    fn rto_for(&self, attempt: u32) -> SimTime {
        let exp = SimTime::from_nanos(
            self.base_rto
                .as_nanos()
                .saturating_mul(1u64 << attempt.min(16)),
        );
        if self.max_rto >= self.base_rto {
            exp.min(self.max_rto)
        } else {
            exp
        }
    }
}

/// World-shared protocol state, embedded in the comm world's inner lock.
#[derive(Debug, Default)]
pub(crate) struct RelState {
    /// Next sequence number (world-unique; allocation order is
    /// deterministic because the simulation is).
    pub(crate) next_seq: u64,
    /// Receiver side: sequence numbers already delivered to a mailbox.
    pub(crate) seen: HashSet<u64>,
    /// Sender side: sequence numbers acknowledged by their receiver.
    pub(crate) acked: HashSet<u64>,
}

/// Everything one tracked frame needs to retry itself from event context.
pub(crate) struct RelMsg<T> {
    pub(crate) net: Network,
    pub(crate) inner: Arc<Mutex<WorldInner>>,
    pub(crate) obs: Option<Hub>,
    pub(crate) cfg: ReliableConfig,
    pub(crate) src_node: NodeId,
    pub(crate) dst_node: NodeId,
    pub(crate) src: usize,
    pub(crate) dst: usize,
    pub(crate) seq: u64,
    pub(crate) bytes: usize,
    pub(crate) mailbox: Mailbox<Envelope<T>>,
    pub(crate) env: Envelope<T>,
}

impl<T: Clone> Clone for RelMsg<T> {
    fn clone(&self) -> Self {
        RelMsg {
            net: self.net.clone(),
            inner: Arc::clone(&self.inner),
            obs: self.obs.clone(),
            cfg: self.cfg,
            src_node: self.src_node,
            dst_node: self.dst_node,
            src: self.src,
            dst: self.dst,
            seq: self.seq,
            bytes: self.bytes,
            mailbox: self.mailbox.clone(),
            env: self.env.clone(),
        }
    }
}

/// The two scheduling contexts a retry can be issued from.
pub(crate) trait Sched {
    fn now(&self) -> SimTime;
    fn after(&mut self, delay: SimTime, f: Box<dyn FnOnce(&mut EventCtx<'_>) + Send>);
}

impl Sched for Ctx {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn after(&mut self, delay: SimTime, f: Box<dyn FnOnce(&mut EventCtx<'_>) + Send>) {
        self.schedule_fn(delay, f);
    }
}

impl Sched for EventCtx<'_> {
    fn now(&self) -> SimTime {
        EventCtx::now(self)
    }
    fn after(&mut self, delay: SimTime, f: Box<dyn FnOnce(&mut EventCtx<'_>) + Send>) {
        self.schedule_fn(delay, f);
    }
}

/// Put attempt `n` (0-based) of `m` on the wire and arm its retry timer.
/// Returns the planned arrival of this attempt (the sender-observed time,
/// even if the frame is fated to drop).
pub(crate) fn attempt<T: Clone + Send + 'static>(
    s: &mut dyn Sched,
    m: &RelMsg<T>,
    n: u32,
) -> SimTime {
    let now = s.now();
    let tx = m.net.plan(now, m.src_node, m.dst_node, m.bytes);
    let arrivals: &[SimTime] = match tx.verdict {
        Verdict::Deliver => &[tx.arrival],
        Verdict::Drop(_) => &[],
        Verdict::Duplicate { second } => &[tx.arrival, second],
    };
    for &at in arrivals {
        let mut mm = m.clone();
        if let Some(p) = &mut mm.env.prov {
            // Each copy carries its own hop stamps: this attempt's arrival
            // and fault share (a duplicate's second copy also books its
            // extra gap as fault). Whichever copy delivers first wins the
            // dedup, so the receiver sees a consistent decomposition.
            p.arrive_ns = at.as_nanos();
            p.fault_ns = (tx.fault + at.saturating_sub(tx.arrival)).as_nanos();
        }
        s.after(at.saturating_sub(now), Box::new(move |ec| deliver(ec, &mm)));
    }

    let mm = m.clone();
    s.after(
        m.cfg.rto_for(n),
        Box::new(move |ec| {
            if mm.inner.lock().rel.acked.contains(&mm.seq) {
                return;
            }
            if n >= mm.cfg.max_retries {
                mm.inner.lock().stats.give_ups += 1;
                if let Some(hub) = &mm.obs {
                    hub.emit(ObsEvent::RetransmitGiveUp {
                        t_ns: ec.now().as_nanos(),
                        src: mm.src as u32,
                        dst: mm.dst as u32,
                        seq: mm.seq,
                    });
                }
                return;
            }
            mm.inner.lock().stats.retransmits += 1;
            if let Some(hub) = &mm.obs {
                hub.emit(ObsEvent::Retransmit {
                    t_ns: ec.now().as_nanos(),
                    src: mm.src as u32,
                    dst: mm.dst as u32,
                    seq: mm.seq,
                    attempt: n + 1,
                });
            }
            let mut mm = mm;
            if let Some(p) = &mut mm.env.prov {
                // Provenance keeps the delay the retransmit protocol has
                // added so far: original submit → start of this attempt.
                // Receivers see the stamp of whichever attempt delivered.
                p.retrans_ns = ec.now().saturating_sub(mm.env.sent_at).as_nanos();
            }
            attempt(ec, &mm, n + 1);
        }),
    );
    tx.arrival
}

/// A copy of frame `m` reached the receiving node: deliver it to the
/// application mailbox unless a copy already did, and acknowledge either
/// way (the previous ack may itself have been lost).
fn deliver<T: Clone + Send + 'static>(ec: &mut EventCtx<'_>, m: &RelMsg<T>) {
    let fresh = {
        let mut g = m.inner.lock();
        let fresh = g.rel.seen.insert(m.seq);
        if !fresh {
            g.stats.dup_suppressed += 1;
        }
        g.stats.acks_sent += 1;
        fresh
    };
    if fresh {
        // The audit layer's sequence monitor watches these: a (src, dst,
        // seq) triple accepted twice means the dedup above failed.
        if let Some(hub) = &m.obs {
            hub.emit(ObsEvent::SeqAccept {
                t_ns: ec.now().as_nanos(),
                src: m.src as u32,
                dst: m.dst as u32,
                seq: m.seq,
            });
        }
        m.mailbox.deliver(ec, m.env.clone());
    }

    let now = ec.now();
    let ack = m.net.plan(now, m.dst_node, m.src_node, m.cfg.ack_bytes);
    match ack.verdict {
        Verdict::Deliver | Verdict::Duplicate { .. } => {
            let inner = Arc::clone(&m.inner);
            let seq = m.seq;
            ec.schedule_fn(ack.arrival.saturating_sub(now), move |_| {
                inner.lock().rel.acked.insert(seq);
            });
        }
        Verdict::Drop(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CommWorld, MsgConfig};
    use nscc_net::{DropReason, MediumStats, Transmission};
    use nscc_sim::SimBuilder;

    /// Fixed-latency medium that misbehaves on *data* frames (anything
    /// bigger than an ack): the first `drop_next` are lost, and every data
    /// frame is duplicated when `duplicate` is set. Acks always pass.
    struct Chaotic {
        delay: SimTime,
        data_min: usize,
        drop_next: u32,
        duplicate: bool,
        stats: MediumStats,
    }

    impl Chaotic {
        fn new(drop_next: u32, duplicate: bool) -> Self {
            Chaotic {
                delay: SimTime::from_millis(1),
                // Data frames here are 8-byte payloads + 32-byte header;
                // anything larger than a bare ack counts as data.
                data_min: 33,
                drop_next,
                duplicate,
                stats: MediumStats::default(),
            }
        }
    }

    impl nscc_net::Medium for Chaotic {
        fn transmit(
            &mut self,
            now: SimTime,
            _src: NodeId,
            _dst: NodeId,
            payload_bytes: usize,
        ) -> SimTime {
            self.stats.frames += 1;
            self.stats.payload_bytes += payload_bytes as u64;
            now + self.delay
        }

        fn plan_transmit(
            &mut self,
            now: SimTime,
            src: NodeId,
            dst: NodeId,
            payload_bytes: usize,
        ) -> Transmission {
            let arrival = self.transmit(now, src, dst, payload_bytes);
            if payload_bytes >= self.data_min {
                if self.drop_next > 0 {
                    self.drop_next -= 1;
                    return Transmission {
                        arrival,
                        verdict: Verdict::Drop(DropReason::Loss),
                        fault: SimTime::ZERO,
                    };
                }
                if self.duplicate {
                    return Transmission {
                        arrival,
                        verdict: Verdict::Duplicate {
                            second: arrival + self.delay,
                        },
                        fault: SimTime::ZERO,
                    };
                }
            }
            Transmission {
                arrival,
                verdict: Verdict::Deliver,
                fault: SimTime::ZERO,
            }
        }

        fn stats(&self) -> MediumStats {
            self.stats
        }

        fn next_free(&self, now: SimTime) -> SimTime {
            now
        }
    }

    fn reliable_world(medium: Chaotic) -> CommWorld<u64> {
        CommWorld::new(
            Network::new(medium),
            2,
            MsgConfig {
                reliable: Some(ReliableConfig::default()),
                ..MsgConfig::default()
            },
        )
    }

    #[test]
    fn retransmit_recovers_lost_frame() {
        let w = reliable_world(Chaotic::new(2, false));
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            tx.send(ctx, 1, 99);
        });
        sim.spawn("rx", move |ctx| {
            let env = rx.recv(ctx);
            assert_eq!(env.payload, 99);
            // Two drops at a 10 ms initial RTO: delivery on the third try.
            assert!(ctx.now() >= SimTime::from_millis(30));
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.received, 1);
        assert_eq!(stats.retransmits, 2);
        assert_eq!(stats.give_ups, 0);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let w = reliable_world(Chaotic::new(0, true));
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            tx.send(ctx, 1, 5);
            tx.send(ctx, 1, 6);
        });
        sim.spawn("rx", move |ctx| {
            assert_eq!(rx.recv(ctx).payload, 5);
            assert_eq!(rx.recv(ctx).payload, 6);
            // The duplicate copies must never surface.
            assert!(rx
                .recv_deadline(ctx, ctx.now() + SimTime::from_millis(50))
                .is_none());
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.received, 2);
        assert!(stats.dup_suppressed >= 2, "dups: {}", stats.dup_suppressed);
        assert_eq!(stats.retransmits, 0);
    }

    #[test]
    fn black_hole_gives_up_after_max_retries() {
        let w = reliable_world(Chaotic::new(u32::MAX, false));
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            tx.send(ctx, 1, 1);
            // Past base_rto * (2^6 - 1) = 630 ms, every retry has fired.
            ctx.advance(SimTime::from_secs(2));
        });
        sim.spawn("rx", move |ctx| {
            assert!(rx.recv_deadline(ctx, SimTime::from_secs(1)).is_none());
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.received, 0);
        assert_eq!(
            stats.retransmits,
            ReliableConfig::default().max_retries as u64
        );
        assert_eq!(stats.give_ups, 1);
    }

    #[test]
    fn backoff_ceiling_bounds_retry_intervals_under_a_long_partition() {
        // Ten retries at base 10 ms would end with a 10.24 s interval
        // uncapped; a 40 ms ceiling keeps the whole schedule (10 + 20 +
        // 40 + 7·40 = 350 ms) inside a short watchdog budget.
        let w = CommWorld::new(
            Network::new(Chaotic::new(u32::MAX, false)),
            2,
            MsgConfig {
                reliable: Some(ReliableConfig {
                    max_retries: 10,
                    max_rto: SimTime::from_millis(40),
                    ..ReliableConfig::default()
                }),
                ..MsgConfig::default()
            },
        );
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            tx.send(ctx, 1, 1);
            ctx.advance(SimTime::from_millis(500));
        });
        sim.spawn("rx", move |ctx| {
            assert!(rx.recv_deadline(ctx, SimTime::from_millis(500)).is_none());
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.received, 0);
        assert_eq!(stats.retransmits, 10, "every retry fired within 500 ms");
        assert_eq!(stats.give_ups, 1, "the frame gave up on a bounded schedule");
    }

    #[test]
    fn rto_ceiling_clamps_without_dropping_below_base() {
        let rc = ReliableConfig {
            base_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_millis(35),
            ..ReliableConfig::default()
        };
        assert_eq!(rc.rto_for(0), SimTime::from_millis(10));
        assert_eq!(rc.rto_for(1), SimTime::from_millis(20));
        assert_eq!(rc.rto_for(2), SimTime::from_millis(35));
        assert_eq!(rc.rto_for(9), SimTime::from_millis(35));
        // A ceiling below base_rto is ignored rather than starving retries.
        let bad = ReliableConfig {
            base_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_millis(1),
            ..ReliableConfig::default()
        };
        assert_eq!(bad.rto_for(3), SimTime::from_millis(80));
    }

    #[test]
    fn rto_cap_equal_to_base_pins_every_retry_at_base() {
        // Boundary: a ceiling exactly at the initial RTO is honored — the
        // whole schedule degenerates to fixed-interval retries at base_rto
        // (the smallest schedule a cap can produce).
        let rc = ReliableConfig {
            base_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_millis(10),
            ..ReliableConfig::default()
        };
        for attempt in [0, 1, 2, 5, 16, 40] {
            assert_eq!(
                rc.rto_for(attempt),
                SimTime::from_millis(10),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn rto_cap_below_base_is_ignored_not_clamped() {
        // Pinned decision: a ceiling below base_rto is *ignored* — the
        // schedule runs uncapped exponential backoff exactly as if no
        // ceiling were set. It is neither an error nor clamped up to
        // base_rto, so a misconfigured cap can never starve retries.
        let rc = ReliableConfig {
            base_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_millis(1),
            ..ReliableConfig::default()
        };
        assert_eq!(rc.rto_for(0), SimTime::from_millis(10));
        assert_eq!(rc.rto_for(1), SimTime::from_millis(20));
        assert_eq!(rc.rto_for(6), SimTime::from_millis(640));
    }

    #[test]
    fn give_up_accounting_under_a_shrunk_minimal_loss_plan() {
        use nscc_faults::{FaultPlan, FaultyMedium, LinkFaults};
        use nscc_net::IdealMedium;

        // The locally-minimal repro shape `nscc shrink` converges to: one
        // removable event (a total-loss override on the 0→1 data link;
        // acks travel 1→0 untouched), removing which makes the plan noop.
        let plan = FaultPlan::new(7).link(
            0,
            1,
            LinkFaults {
                drop_prob: 1.0,
                ..LinkFaults::default()
            },
        );
        assert_eq!(plan.events(), 1, "locally minimal: exactly one event");
        assert!(plan.without_event(0).unwrap().is_noop());

        let w: CommWorld<u64> = CommWorld::new(
            Network::new(FaultyMedium::new(
                IdealMedium::new(SimTime::from_millis(1)),
                plan,
            )),
            2,
            MsgConfig {
                reliable: Some(ReliableConfig::default()),
                ..MsgConfig::default()
            },
        );
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let back = w.endpoint(1);
        let front = w.endpoint(0);
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            tx.send(ctx, 1, 41);
            tx.send(ctx, 1, 42);
            // Default schedule: 10+20+40+80+160 ms of retries, then the
            // give-up; stay alive well past it.
            ctx.advance(SimTime::from_secs(2));
            // The reverse link is clean: proof the loss is the one event.
            back.send(ctx, 0, 7);
        });
        sim.spawn("rx", move |ctx| {
            assert!(rx.recv_deadline(ctx, SimTime::from_secs(1)).is_none());
            assert_eq!(front.recv(ctx).payload, 7);
        });
        sim.run().unwrap();
        let stats = w.stats();
        // Exactly one give-up per swallowed frame, each after a full retry
        // budget; the clean reverse frame inflates neither counter.
        assert_eq!(stats.give_ups, 2);
        assert_eq!(
            stats.retransmits,
            2 * ReliableConfig::default().max_retries as u64
        );
        assert_eq!(stats.received, 1);
    }

    #[test]
    fn clean_link_needs_no_retransmits() {
        let w = reliable_world(Chaotic::new(0, false));
        let (tx, rx) = (w.endpoint(0), w.endpoint(1));
        let mut sim = SimBuilder::new(7);
        sim.spawn("tx", move |ctx| {
            for v in 0..10 {
                tx.send(ctx, 1, v);
            }
        });
        sim.spawn("rx", move |ctx| {
            for v in 0..10 {
                assert_eq!(rx.recv(ctx).payload, v);
            }
        });
        sim.run().unwrap();
        let stats = w.stats();
        assert_eq!(stats.received, 10);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.dup_suppressed, 0);
        assert_eq!(stats.acks_sent, 10);
    }
}
