//! The out-of-band marker plane for Chandy–Lamport consistent snapshots.
//!
//! Markers deliberately do **not** ride the data path. An [`Endpoint`]
//! send charges CPU overheads, bumps [`CommStats`], occupies the medium
//! and shifts virtual time — any of which would make a snapshot-on run
//! observably different from a snapshot-off run. The recovery contract is
//! the opposite: islands never pause and reports stay byte-identical, so
//! markers travel on dedicated side mailboxes with a fixed latency, no
//! medium contention, no stats, and no CPU charge. Polling for a marker
//! ([`MarkerPort::poll`]) is free as well.
//!
//! The price of the side channel is FIFO *relaxation*: a marker may
//! overtake data frames still queued on the medium, so a receiver can see
//! the closing marker of a channel before every pre-capture update on
//! that channel has arrived. Classic Chandy–Lamport forbids this; NSCC
//! tolerates it because the age bound already tolerates the consequence —
//! an update missing from the recorded channel state re-arrives after
//! restore looking like one more stale-but-admissible write (see
//! DESIGN.md, "Consistent cuts without FIFO").
//!
//! [`Endpoint`]: crate::Endpoint
//! [`CommStats`]: crate::CommStats

use std::sync::Arc;

use nscc_sim::{Ctx, Mailbox, SimTime};

/// One snapshot marker: "cut `id` passes here, sent by rank `src`".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerMsg {
    /// The cut id this marker belongs to.
    pub id: u64,
    /// Rank whose outgoing channels this marker closes.
    pub src: usize,
}

struct PlaneInner {
    boxes: Vec<Mailbox<MarkerMsg>>,
    latency: SimTime,
}

/// The world-wide marker fabric: one side mailbox per rank plus a fixed
/// marker latency. Cloneable; hand each rank its [`MarkerPort`].
#[derive(Clone)]
pub struct MarkerPlane {
    inner: Arc<PlaneInner>,
}

impl MarkerPlane {
    /// Build a plane for `ranks` processes with the given fixed marker
    /// latency. The latency only stretches the window during which
    /// in-flight data is recorded; it never delays the data itself.
    pub fn new(ranks: usize, latency: SimTime) -> Self {
        MarkerPlane {
            inner: Arc::new(PlaneInner {
                boxes: (0..ranks)
                    .map(|r| Mailbox::new(format!("marker:{r}")))
                    .collect(),
                latency,
            }),
        }
    }

    /// Number of ranks on the plane.
    pub fn ranks(&self) -> usize {
        self.inner.boxes.len()
    }

    /// The port for `rank`.
    pub fn port(&self, rank: usize) -> MarkerPort {
        assert!(rank < self.inner.boxes.len(), "marker rank out of range");
        MarkerPort {
            plane: self.clone(),
            rank,
        }
    }
}

/// One rank's handle on the [`MarkerPlane`]: broadcast markers to every
/// peer, poll for arrivals. All operations are virtual-time-free for the
/// caller — broadcasting schedules deliveries at `now + latency` without
/// advancing the sender, and polling never blocks.
#[derive(Clone)]
pub struct MarkerPort {
    plane: MarkerPlane,
    rank: usize,
}

impl MarkerPort {
    /// This port's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Send the marker for cut `id` to every *other* rank. Costs the
    /// sender nothing; each peer sees it `latency` later.
    pub fn broadcast(&self, ctx: &mut Ctx, id: u64) {
        let latency = self.plane.inner.latency;
        let src = self.rank;
        for (r, mb) in self.plane.inner.boxes.iter().enumerate() {
            if r == src {
                continue;
            }
            let mb = mb.clone();
            ctx.schedule_fn(latency, move |ec| {
                mb.deliver(ec, MarkerMsg { id, src });
            });
        }
    }

    /// Drain every marker that has arrived. Free: no blocking, no CPU
    /// charge, no stats.
    pub fn poll(&self) -> Vec<MarkerMsg> {
        let mb = &self.plane.inner.boxes[self.rank];
        let mut out = Vec::new();
        while let Some(m) = mb.try_recv() {
            out.push(m);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_sim::SimBuilder;
    use std::sync::Mutex;

    #[test]
    fn broadcast_reaches_every_peer_but_not_the_sender() {
        let plane = MarkerPlane::new(3, SimTime::from_millis(1));
        let seen: Arc<Mutex<Vec<(usize, MarkerMsg, u64)>>> = Arc::new(Mutex::new(Vec::new()));

        let mut sim = SimBuilder::new(1);
        let p0 = plane.port(0);
        sim.spawn("sender", move |ctx| {
            p0.broadcast(ctx, 7);
            assert_eq!(ctx.now().as_nanos(), 0, "broadcast is free for the sender");
            assert!(p0.poll().is_empty(), "sender gets no marker of its own");
        });
        for r in 1..3 {
            let port = plane.port(r);
            let seen = seen.clone();
            sim.spawn(format!("peer{r}"), move |ctx| {
                ctx.advance(SimTime::from_millis(2));
                for m in port.poll() {
                    seen.lock().unwrap().push((r, m, ctx.now().as_nanos()));
                }
            });
        }
        sim.run().unwrap();

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 2);
        for (_, m, _) in seen.iter() {
            assert_eq!(*m, MarkerMsg { id: 7, src: 0 });
        }
    }

    #[test]
    fn poll_is_nonblocking_and_empty_without_markers() {
        let plane = MarkerPlane::new(2, SimTime::from_millis(1));
        let port = plane.port(1);
        let mut sim = SimBuilder::new(2);
        sim.spawn("idle", move |ctx| {
            assert!(port.poll().is_empty());
            assert_eq!(ctx.now().as_nanos(), 0);
        });
        sim.run().unwrap();
    }
}
