//! Property-based tests of the wire-size accounting.

use proptest::prelude::*;
use serde::Serialize;

use nscc_msg::wire_size;

#[derive(Serialize, Clone, Debug)]
struct Migrant {
    genome: Vec<u8>,
    fitness: f64,
}

proptest! {
    /// Vectors cost a length prefix plus their elements.
    #[test]
    fn vec_size_is_prefix_plus_elements(v in prop::collection::vec(any::<u32>(), 0..200)) {
        prop_assert_eq!(wire_size(&v), 4 + 4 * v.len());
    }

    /// Structs are the sum of their fields; batches scale linearly.
    #[test]
    fn batch_size_is_linear(genome_len in 0usize..64, count in 0usize..40) {
        let m = Migrant { genome: vec![0; genome_len], fitness: 1.0 };
        let single = wire_size(&m);
        prop_assert_eq!(single, 4 + genome_len + 8);
        let batch = vec![m; count];
        prop_assert_eq!(wire_size(&batch), 4 + count * single);
    }

    /// Options cost one byte of tag plus the payload when present.
    #[test]
    fn option_size(x in any::<Option<u64>>()) {
        let expect = match x { Some(_) => 9, None => 1 };
        prop_assert_eq!(wire_size(&x), expect);
    }

    /// Strings are length-prefixed UTF-8 bytes.
    #[test]
    fn string_size(s in "[a-z]{0,80}") {
        prop_assert_eq!(wire_size(&s), 4 + s.len());
    }
}
