//! A small undirected graph type for partitioning.

use std::collections::BTreeSet;

/// An undirected graph stored as adjacency lists. Vertices are `0..n`.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Build from an edge list (duplicates and self-loops are ignored).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut seen = BTreeSet::new();
        let mut g = Graph::new(n);
        for (u, v) in edges {
            let (a, b) = (u.min(v), u.max(v));
            if a != b && seen.insert((a, b)) {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Add the undirected edge `{u, v}`. Panics on self-loops or
    /// out-of-range vertices; does not deduplicate.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edges += 1;
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Mean number of edges per node (the statistic Table 2 reports).
    pub fn edges_per_node(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            self.edges as f64 / self.adj.len() as f64
        }
    }

    /// Iterate over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_skips_loops() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 2), (2, 3)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn edges_per_node_statistic() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]);
        assert!((g.edges_per_node() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }
}
