//! # nscc-partition — graph partitioning (METIS substitute)
//!
//! The paper partitions each belief network across processors with METIS
//! [11] and reports the resulting edge-cut (Table 2). This crate provides
//! the same service: balanced k-way partitioning by recursive bisection,
//! with BFS region growing for initial splits and Fiduccia–Mattheyses
//! refinement to shrink the cut.
//!
//! ```
//! use nscc_partition::{partition, edge_cut, Graph};
//!
//! // Two triangles joined by a single bridge edge.
//! let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5),(2,3)]);
//! let parts = partition(&g, 2, 42);
//! assert_eq!(edge_cut(&g, &parts), 1);
//! ```

#![warn(missing_docs)]

mod bisect;
mod graph;

pub use graph::Graph;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Partition `g` into `k` balanced parts (sizes differ by at most one).
/// Returns `assign[v] = part` for every vertex. Deterministic per `seed`.
pub fn partition(g: &Graph, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    let mut assign = vec![0usize; g.len()];
    if k == 1 || g.is_empty() {
        return assign;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let all: Vec<usize> = (0..g.len()).collect();
    recurse(g, &all, k, 0, &mut assign, &mut rng);
    assign
}

/// Recursively bisect `vertices` into `k` parts labelled starting at
/// `first_label`, splitting k as evenly as the vertex counts allow.
fn recurse(
    g: &Graph,
    vertices: &[usize],
    k: usize,
    first_label: usize,
    assign: &mut [usize],
    rng: &mut StdRng,
) {
    if k == 1 {
        for &v in vertices {
            assign[v] = first_label;
        }
        return;
    }
    let ka = k / 2;
    let kb = k - ka;
    // Side A receives ka/k of the vertices (rounded to keep balance exact).
    let target_a = (vertices.len() * ka + k / 2) / k;
    // Random restarts: BFS growth is seed-sensitive, so take the best of a
    // few attempts (cheap at these sizes, large cut improvements).
    let mut side = bisect::bisect(g, vertices, target_a, rng);
    let mut best_cut = cut_of(g, vertices, &side);
    for _ in 0..3 {
        let cand = bisect::bisect(g, vertices, target_a, rng);
        let c = cut_of(g, vertices, &cand);
        if c < best_cut {
            best_cut = c;
            side = cand;
        }
    }
    let (mut va, mut vb) = (Vec::new(), Vec::new());
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            vb.push(v);
        } else {
            va.push(v);
        }
    }
    recurse(g, &va, ka, first_label, assign, rng);
    recurse(g, &vb, kb, first_label + ka, assign, rng);
}

/// Cut of a bisection restricted to `vertices` (side vector aligned).
fn cut_of(g: &Graph, vertices: &[usize], side: &[bool]) -> usize {
    let mut local = vec![usize::MAX; g.len()];
    for (i, &v) in vertices.iter().enumerate() {
        local[v] = i;
    }
    let mut cut = 0;
    for (i, &v) in vertices.iter().enumerate() {
        for &w in g.neighbors(v) {
            let lw = local[w];
            if lw != usize::MAX && lw > i && side[lw] != side[i] {
                cut += 1;
            }
        }
    }
    cut
}

/// Number of edges whose endpoints land in different parts.
pub fn edge_cut(g: &Graph, assign: &[usize]) -> usize {
    assert_eq!(assign.len(), g.len(), "assignment length mismatch");
    g.edges().filter(|&(u, v)| assign[u] != assign[v]).count()
}

/// Sizes of each part under `assign` (length = max label + 1).
pub fn part_sizes(assign: &[usize]) -> Vec<usize> {
    let k = assign.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &p in assign {
        sizes[p] += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn two_cliques_one_bridge_cut_is_one() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, edges);
        let parts = partition(&g, 2, 1);
        assert_eq!(edge_cut(&g, &parts), 1);
        assert_eq!(part_sizes(&parts), vec![5, 5]);
    }

    #[test]
    fn ring_bisection_cut_is_two() {
        let g = ring(20);
        let parts = partition(&g, 2, 3);
        assert_eq!(
            edge_cut(&g, &parts),
            2,
            "a ring split in two halves cuts 2 edges"
        );
    }

    #[test]
    fn balance_holds_for_odd_sizes() {
        let g = ring(21);
        let parts = partition(&g, 2, 3);
        let sizes = part_sizes(&parts);
        assert_eq!(sizes.iter().sum::<usize>(), 21);
        assert!(sizes.iter().all(|&s| s == 10 || s == 11), "{sizes:?}");
    }

    #[test]
    fn four_way_partition_balances() {
        let g = ring(40);
        let parts = partition(&g, 4, 9);
        let sizes = part_sizes(&parts);
        assert_eq!(sizes.len(), 4);
        assert!(sizes.iter().all(|&s| s == 10), "{sizes:?}");
        // A ring split into 4 contiguous arcs cuts 4 edges; allow a little
        // slack for the heuristic.
        assert!(edge_cut(&g, &parts) <= 8);
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = ring(7);
        let parts = partition(&g, 1, 0);
        assert!(parts.iter().all(|&p| p == 0));
        assert_eq!(edge_cut(&g, &parts), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ring(30);
        assert_eq!(partition(&g, 2, 5), partition(&g, 2, 5));
    }

    #[test]
    fn disconnected_graph_is_handled() {
        // Two disjoint rings.
        let mut edges: Vec<(usize, usize)> = (0..10).map(|i| (i, (i + 1) % 10)).collect();
        edges.extend((0..10).map(|i| (10 + i, 10 + (i + 1) % 10)));
        let g = Graph::from_edges(20, edges);
        let parts = partition(&g, 2, 2);
        assert_eq!(part_sizes(&parts), vec![10, 10]);
        // Perfect split puts one ring per side: cut 0; tolerate small cuts.
        assert!(edge_cut(&g, &parts) <= 4);
    }

    #[test]
    fn edgeless_graph() {
        let g = Graph::new(8);
        let parts = partition(&g, 4, 0);
        assert_eq!(part_sizes(&parts), vec![2, 2, 2, 2]);
        assert_eq!(edge_cut(&g, &parts), 0);
    }
}
