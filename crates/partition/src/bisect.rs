//! Balanced graph bisection: BFS region growing for the initial split,
//! Fiduccia–Mattheyses single-move refinement to shrink the cut.

use rand::rngs::StdRng;
use rand::Rng;

use crate::graph::Graph;

/// Split `vertices` (a subset of `g`) into two sides of sizes
/// `(target_a, vertices.len() - target_a)`, minimizing the cut between
/// them. Returns `side[i]` (false = side A) aligned with `vertices`.
pub(crate) fn bisect(
    g: &Graph,
    vertices: &[usize],
    target_a: usize,
    rng: &mut StdRng,
) -> Vec<bool> {
    let n = vertices.len();
    assert!(target_a <= n);
    if n == 0 || target_a == 0 {
        return vec![true; n];
    }
    if target_a == n {
        return vec![false; n];
    }

    // Map global vertex id -> local index within `vertices`.
    let mut local = vec![usize::MAX; g.len()];
    for (i, &v) in vertices.iter().enumerate() {
        local[v] = i;
    }

    let mut side = grow_region(g, vertices, &local, target_a, rng);
    fm_refine(g, vertices, &local, &mut side, target_a);
    side
}

/// BFS region growing from a pseudo-peripheral seed: side A is the first
/// `target_a` vertices reached (preferring already-well-connected ones).
fn grow_region(
    g: &Graph,
    vertices: &[usize],
    local: &[usize],
    target_a: usize,
    rng: &mut StdRng,
) -> Vec<bool> {
    let n = vertices.len();
    let start = pseudo_peripheral(g, vertices, local, rng);

    let mut side = vec![true; n]; // true = side B until claimed by A
    let mut claimed = 0usize;
    let mut visited = vec![false; n];
    let mut frontier = std::collections::VecDeque::new();
    let mut order: Vec<usize> = (0..n).collect();

    frontier.push_back(start);
    visited[start] = true;
    while claimed < target_a {
        let u = match frontier.pop_front() {
            Some(u) => u,
            None => {
                // Disconnected: restart from any unvisited vertex
                // (deterministic: lowest index first).
                let next = order
                    .iter()
                    .copied()
                    .find(|&i| !visited[i])
                    .expect("target_a < n implies an unvisited vertex exists");
                visited[next] = true;
                frontier.push_back(next);
                continue;
            }
        };
        side[u] = false;
        claimed += 1;
        for &w in g.neighbors(vertices[u]) {
            let lw = local[w];
            if lw != usize::MAX && !visited[lw] {
                visited[lw] = true;
                frontier.push_back(lw);
            }
        }
    }
    // Make `order` deterministic but seed-dependent for tie diversity.
    order.sort_unstable();
    side
}

/// Find a vertex far from a random start (two BFS sweeps), a standard
/// heuristic for good growth seeds.
fn pseudo_peripheral(g: &Graph, vertices: &[usize], local: &[usize], rng: &mut StdRng) -> usize {
    let n = vertices.len();
    let start = rng.gen_range(0..n);
    let far = bfs_farthest(g, vertices, local, start);
    bfs_farthest(g, vertices, local, far)
}

fn bfs_farthest(g: &Graph, vertices: &[usize], local: &[usize], start: usize) -> usize {
    let n = vertices.len();
    let mut dist = vec![usize::MAX; n];
    let mut q = std::collections::VecDeque::new();
    dist[start] = 0;
    q.push_back(start);
    let mut last = start;
    while let Some(u) = q.pop_front() {
        last = u;
        for &w in g.neighbors(vertices[u]) {
            let lw = local[w];
            if lw != usize::MAX && dist[lw] == usize::MAX {
                dist[lw] = dist[u] + 1;
                q.push_back(lw);
            }
        }
    }
    last
}

/// Fiduccia–Mattheyses refinement: repeated passes of single-vertex moves
/// with exact balance restored by the end of each pass; keep the best
/// prefix of each pass. Terminates when a pass yields no improvement.
fn fm_refine(g: &Graph, vertices: &[usize], local: &[usize], side: &mut [bool], target_a: usize) {
    let n = vertices.len();
    let max_passes = 10;

    for _ in 0..max_passes {
        // gain[i] = external - internal degree of i w.r.t. current sides.
        let gain = |i: usize, side: &[bool]| -> i64 {
            let mut gval = 0i64;
            for &w in g.neighbors(vertices[i]) {
                let lw = local[w];
                if lw == usize::MAX {
                    continue;
                }
                if side[lw] != side[i] {
                    gval += 1;
                } else {
                    gval -= 1;
                }
            }
            gval
        };

        let mut locked = vec![false; n];
        let mut work = side.to_vec();
        let mut best_cut_delta = 0i64;
        let mut cum_delta = 0i64;
        let mut best_prefix = 0usize;
        let mut moves: Vec<usize> = Vec::new();

        let count_a = |s: &[bool]| s.iter().filter(|&&b| !b).count();

        for _ in 0..n {
            // Choose the best unlocked move that keeps sizes within one of
            // the target (FM alternates sides as needed).
            let cur_a = count_a(&work);
            let mut best: Option<(i64, usize)> = None;
            for i in 0..n {
                if locked[i] {
                    continue;
                }
                // Moving i flips its side; keep |A| within target_a ± 1.
                let new_a = if work[i] { cur_a + 1 } else { cur_a - 1 };
                if new_a + 1 < target_a || new_a > target_a + 1 {
                    continue;
                }
                let gval = gain(i, &work);
                if best.map_or(true, |(bg, bi)| gval > bg || (gval == bg && i < bi)) {
                    best = Some((gval, i));
                }
            }
            let Some((gval, i)) = best else { break };
            work[i] = !work[i];
            locked[i] = true;
            moves.push(i);
            cum_delta -= gval; // positive gain reduces the cut
                               // Only accept prefixes that restore exact balance.
            if count_a(&work) == target_a && cum_delta < best_cut_delta {
                best_cut_delta = cum_delta;
                best_prefix = moves.len();
            }
        }

        if best_prefix == 0 {
            return; // no improving balanced prefix: converged
        }
        for &i in &moves[..best_prefix] {
            side[i] = !side[i];
        }
    }
}
