//! Property-based tests of the partitioner invariants.

use proptest::prelude::*;

use nscc_partition::{edge_cut, part_sizes, partition, Graph};

/// Random graph strategy: `n` vertices, up to 3n random edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
        edges.prop_map(move |es| Graph::from_edges(n, es))
    })
}

proptest! {
    #[test]
    fn partition_is_balanced(g in graph_strategy(), k in 1usize..6, seed in 0u64..1000) {
        prop_assume!(k <= g.len());
        let assign = partition(&g, k, seed);
        prop_assert_eq!(assign.len(), g.len());
        let sizes = part_sizes(&assign);
        prop_assert_eq!(sizes.len(), k);
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        // Recursive bisection keeps every split within 1; allow the
        // accumulated k-way imbalance to reach 2 for odd nesting.
        prop_assert!(max - min <= 2, "sizes {:?}", sizes);
    }

    #[test]
    fn every_vertex_gets_a_valid_label(g in graph_strategy(), k in 1usize..6, seed in 0u64..1000) {
        prop_assume!(k <= g.len());
        let assign = partition(&g, k, seed);
        prop_assert!(assign.iter().all(|&p| p < k));
    }

    #[test]
    fn cut_never_exceeds_edge_count(g in graph_strategy(), k in 1usize..6, seed in 0u64..1000) {
        prop_assume!(k <= g.len());
        let assign = partition(&g, k, seed);
        prop_assert!(edge_cut(&g, &assign) <= g.edge_count());
    }

    #[test]
    fn deterministic(g in graph_strategy(), seed in 0u64..1000) {
        let a = partition(&g, 2, seed);
        let b = partition(&g, 2, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn refinement_beats_or_matches_random_split(g in graph_strategy(), seed in 0u64..100) {
        prop_assume!(g.len() >= 8);
        let assign = partition(&g, 2, seed);
        // Compare against a deterministic "striped" split of equal balance.
        let striped: Vec<usize> = (0..g.len()).map(|v| v % 2).collect();
        // The optimizer should usually do no worse than striping; give a
        // tolerance of one edge for degenerate tiny graphs.
        prop_assert!(
            edge_cut(&g, &assign) <= edge_cut(&g, &striped) + 1,
            "partitioned cut {} vs striped cut {}",
            edge_cut(&g, &assign),
            edge_cut(&g, &striped)
        );
    }
}
