//! The budgeted hunt driver: run `budget` generated trials across OS
//! threads and collect every trial whose oracles fired.
//!
//! Determinism contract: scenario `t` is a pure function of
//! `(master_seed, t)` and each trial's simulation is deterministic, so
//! the finding *set* is identical for any worker count — workers only
//! race for trial indices, never for trial content. Findings are sorted
//! by trial index before returning, erasing scheduling order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use nscc_bench::headless::{run_headless, HeadlessSpec};

use crate::generate::{generate, Envelope};
use crate::oracle::{judge, Verdict};

/// One hunt's parameters.
#[derive(Debug, Clone)]
pub struct HuntConfig {
    /// The hunt's master seed: same seed + budget → same findings.
    pub master_seed: u64,
    /// Number of trials to run.
    pub budget: u64,
    /// Worker threads (0 → one per available CPU, capped at 8).
    pub workers: usize,
    /// The generator's search space.
    pub envelope: Envelope,
}

impl HuntConfig {
    /// The effective worker count.
    pub fn effective_workers(&self) -> usize {
        let w = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            self.workers
        };
        w.max(1).min(self.budget.max(1) as usize)
    }
}

/// One failing trial.
#[derive(Debug, Clone)]
pub struct HuntFinding {
    /// The trial index within the hunt.
    pub trial: u64,
    /// The complete scenario (unshrunk).
    pub spec: HeadlessSpec,
    /// Every oracle that fired.
    pub verdict: Verdict,
}

/// Run the hunt. `progress` receives one line per failing trial, as it
/// is found (unordered across workers; the returned vector is sorted).
pub fn hunt(cfg: &HuntConfig, progress: &(dyn Fn(&str) + Sync)) -> Vec<HuntFinding> {
    let next = AtomicU64::new(0);
    let findings: Mutex<Vec<HuntFinding>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..cfg.effective_workers() {
            scope.spawn(|| loop {
                let trial = next.fetch_add(1, Ordering::Relaxed);
                if trial >= cfg.budget {
                    break;
                }
                let spec = generate(cfg.master_seed, trial, &cfg.envelope);
                let verdict = judge(&spec, &run_headless(&spec));
                if !verdict.is_clean() {
                    progress(&format!(
                        "trial {trial}: {} ({} finding(s))",
                        verdict.primary().unwrap_or("?"),
                        verdict.findings.len()
                    ));
                    findings.lock().unwrap().push(HuntFinding {
                        trial,
                        spec,
                        verdict,
                    });
                }
            });
        }
    });
    let mut found = findings.into_inner().unwrap();
    found.sort_by_key(|f| f.trial);
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sabotage_cfg(budget: u64, workers: usize) -> HuntConfig {
        HuntConfig {
            master_seed: 99,
            budget,
            workers,
            envelope: Envelope {
                // Narrow, fast, guaranteed-to-fire envelope: every trial
                // sabotages, no chaos machinery to slow the sims down.
                sabotage_prob: 1.0,
                max_loss: 0.0,
                max_dup: 0.0,
                max_delay_prob: 0.0,
                max_crashes: 0,
                max_stalls: 0,
                allow_partitions: false,
                procs: (2, 3),
                generations: (12, 16),
                ..Envelope::default()
            },
        }
    }

    #[test]
    fn same_seed_and_budget_yield_identical_findings_across_worker_counts() {
        let a = hunt(&sabotage_cfg(6, 1), &|_| {});
        let b = hunt(&sabotage_cfg(6, 3), &|_| {});
        assert!(!a.is_empty(), "sabotage envelope must produce findings");
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.verdict, y.verdict);
            assert_eq!(format!("{:?}", x.spec), format!("{:?}", y.spec));
        }
    }

    #[test]
    fn effective_workers_are_bounded_by_budget() {
        let mut cfg = sabotage_cfg(2, 16);
        assert_eq!(cfg.effective_workers(), 2);
        cfg.workers = 0;
        assert!(cfg.effective_workers() >= 1);
    }
}
