//! Delta-debugging shrinker: reduce a failing scenario to a locally
//! minimal repro while preserving its most severe failure kind.
//!
//! Two reduction moves, applied to fixpoint:
//!
//! 1. **Plan events** — drop one fault-plan event (base faults, a link
//!    override, a degradation window, a crash, a stall, a partition) at
//!    a time via [`FaultPlan::without_event`]; keep the removal if the
//!    re-run still exhibits the primary failure kind.
//! 2. **Knobs** — simplify configuration one knob at a time: fewer
//!    generations, fewer islands, sabotage off, snapshots off,
//!    supervision off, heartbeat off, read-timeout off, reliable layer
//!    off.
//!
//! Every candidate is an actual re-run of the deterministic simulation,
//! so acceptance is exact, not heuristic. The result is locally minimal:
//! removing any single remaining event or knob loses the failure.

use nscc_bench::headless::{run_headless, HeadlessSpec};

use crate::oracle::{judge, Verdict};

/// Whether `spec` still exhibits failure kind `kind`.
fn still_fails(spec: &HeadlessSpec, kind: &str) -> bool {
    judge(spec, &run_headless(spec)).has_kind(kind)
}

/// The one-knob simplifications applicable to `spec`, most aggressive
/// first. Each candidate differs from `spec` in exactly one knob.
fn knob_candidates(spec: &HeadlessSpec) -> Vec<(String, HeadlessSpec)> {
    let mut out = Vec::new();
    if spec.runs > 1 {
        out.push((
            format!("runs {} -> 1", spec.runs),
            HeadlessSpec {
                runs: 1,
                ..spec.clone()
            },
        ));
    }
    if spec.generations > 10 {
        let g = (spec.generations / 2).max(10);
        out.push((
            format!("generations {} -> {g}", spec.generations),
            HeadlessSpec {
                generations: g,
                ..spec.clone()
            },
        ));
    }
    if spec.procs > 2 {
        out.push((
            format!("procs {} -> {}", spec.procs, spec.procs - 1),
            HeadlessSpec {
                procs: spec.procs - 1,
                ..spec.clone()
            },
        ));
    }
    if spec.inject_stale > 1 {
        out.push((
            format!("inject_stale {} -> 1", spec.inject_stale),
            HeadlessSpec {
                inject_stale: 1,
                ..spec.clone()
            },
        ));
    }
    if spec.inject_stale == 1 {
        out.push((
            "inject_stale 1 -> 0".to_string(),
            HeadlessSpec {
                inject_stale: 0,
                ..spec.clone()
            },
        ));
    }
    if spec.snapshots.is_some() {
        out.push((
            "snapshots off".to_string(),
            HeadlessSpec {
                snapshots: None,
                ..spec.clone()
            },
        ));
    }
    if spec.supervision {
        out.push((
            "supervision off".to_string(),
            HeadlessSpec {
                supervision: false,
                ..spec.clone()
            },
        ));
    }
    if spec.heartbeat.is_some() {
        out.push((
            "heartbeat off".to_string(),
            HeadlessSpec {
                heartbeat: None,
                ..spec.clone()
            },
        ));
    }
    if spec.read_timeout.is_some() {
        out.push((
            "read timeout off".to_string(),
            HeadlessSpec {
                read_timeout: None,
                ..spec.clone()
            },
        ));
    }
    if spec.reliable.is_some() {
        out.push((
            "reliable layer off".to_string(),
            HeadlessSpec {
                reliable: None,
                ..spec.clone()
            },
        ));
    }
    out
}

/// Shrink `spec0` to a locally minimal scenario preserving its primary
/// failure kind; `log` receives one line per accepted reduction.
/// Returns the minimal spec and its fresh verdict. Returns `spec0`
/// unchanged (with its verdict) when the scenario is clean — there is
/// nothing to preserve.
pub fn shrink(spec0: &HeadlessSpec, mut log: impl FnMut(&str)) -> (HeadlessSpec, Verdict) {
    let verdict0 = judge(spec0, &run_headless(spec0));
    let kind = match verdict0.primary() {
        Some(k) => k.to_string(),
        None => return (spec0.clone(), verdict0),
    };
    let mut best = spec0.clone();
    loop {
        let mut improved = false;

        // Pass 1: drop plan events one at a time until none can go.
        while let Some(plan) = best.plan.clone() {
            let mut removed = false;
            for idx in 0..plan.events() {
                let shrunk = plan.without_event(idx).expect("idx < events()");
                let cand = HeadlessSpec {
                    plan: (!shrunk.is_noop()).then_some(shrunk),
                    ..best.clone()
                };
                if still_fails(&cand, &kind) {
                    log(&format!("drop plan event: {}", plan.event_label(idx)));
                    best = cand;
                    removed = true;
                    improved = true;
                    break;
                }
            }
            if !removed {
                break;
            }
        }

        // Pass 2: simplify one knob; restart both passes on success so
        // the plan gets re-minimised under the simpler configuration.
        for (label, cand) in knob_candidates(&best) {
            if still_fails(&cand, &kind) {
                log(&format!("simplify knob: {label}"));
                best = cand;
                improved = true;
                break;
            }
        }

        if !improved {
            break;
        }
    }
    let verdict = judge(&best, &run_headless(&best));
    (best, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nscc_core::FaultPlan;
    use nscc_sim::SimTime;

    /// A sabotage scenario dressed up with irrelevant chaos: the
    /// staleness violation comes from `inject_stale` alone, so the
    /// shrinker must strip the fault plan and the optional machinery.
    #[test]
    fn shrink_strips_irrelevant_chaos_from_a_sabotage_repro() {
        let noisy = HeadlessSpec {
            inject_stale: 3,
            plan: Some(FaultPlan::new(5).loss(0.02).crash_and_restart(
                1,
                SimTime::from_millis(40),
                SimTime::from_millis(80),
            )),
            snapshots: Some(8),
            supervision: true,
            ..HeadlessSpec::quick(13)
        };
        let before = judge(&noisy, &run_headless(&noisy));
        // A sabotaged release carries no honest hop stamps, so its
        // anatomy trips the conservation monitor just before the
        // read-done trips the staleness monitor.
        assert_eq!(before.primary(), Some("audit:conservation"), "{before:?}");
        assert!(before.has_kind("audit:staleness"), "{before:?}");

        let mut steps = Vec::new();
        let (min, verdict) = shrink(&noisy, |s| steps.push(s.to_string()));
        assert_eq!(verdict.primary(), Some("audit:conservation"), "{steps:?}");
        assert!(verdict.has_kind("audit:staleness"), "{steps:?}");
        assert!(min.plan.is_none(), "fault plan was irrelevant: {steps:?}");
        assert_eq!(min.snapshots, None, "{steps:?}");
        assert!(!min.supervision, "{steps:?}");
        assert_eq!(min.inject_stale, 1, "sabotage shrinks to one read");
        assert!(!steps.is_empty());

        // Local minimality: removing the one remaining cause loses the
        // preserved failure kind.
        let without = HeadlessSpec {
            inject_stale: 0,
            ..min.clone()
        };
        let v = judge(&without, &run_headless(&without));
        assert!(!v.has_kind("audit:conservation"), "{v:?}");
        assert!(!v.has_kind("audit:staleness"), "{v:?}");
    }

    #[test]
    fn clean_scenarios_shrink_to_themselves() {
        let clean = HeadlessSpec::quick(3);
        let mut steps = Vec::new();
        let (min, verdict) = shrink(&clean, |s| steps.push(s.to_string()));
        assert!(verdict.is_clean());
        assert!(steps.is_empty());
        assert_eq!(format!("{min:?}"), format!("{clean:?}"));
    }
}
