//! Seeded scenario generation: `(master_seed, trial)` → one complete
//! [`HeadlessSpec`], drawn from a declared [`Envelope`].
//!
//! The generator is a pure function of its arguments — no global RNG,
//! no time — so a hunt is reproducible from its master seed alone and
//! trials can be distributed across any number of workers without
//! changing what gets explored.

use nscc_bench::headless::HeadlessSpec;
use nscc_core::FaultPlan;
use nscc_faults::LinkFaults;
use nscc_msg::ReliableConfig;
use nscc_sim::SimTime;

/// The generator's search space. Every bound is inclusive unless noted;
/// widening the envelope widens future hunts without invalidating old
/// repros (a repro carries its concrete scenario, not the envelope).
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Island-count range (min, max).
    pub procs: (usize, usize),
    /// Serial-baseline generation range (min, max) — small: a fuzz trial
    /// should cost a fraction of a second, not reproduce the paper.
    pub generations: (u64, u64),
    /// `Global_Read` age-bound range (min, max).
    pub ages: (u64, u64),
    /// Upper bound on the base per-frame drop probability.
    pub max_loss: f64,
    /// Upper bound on the base duplication probability.
    pub max_dup: f64,
    /// Upper bound on the base delay probability.
    pub max_delay_prob: f64,
    /// Upper bound on the injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Most crash events per scenario.
    pub max_crashes: u64,
    /// Most stall windows per scenario.
    pub max_stalls: u64,
    /// Whether partition windows may be generated.
    pub allow_partitions: bool,
    /// Probability that a trial runs the `inject_stale` sabotage (the
    /// deliberate age-bound violation the audit plane must catch).
    /// `1.0` turns every trial into a sabotage hunt (`--sabotage`).
    pub sabotage_prob: f64,
}

impl Default for Envelope {
    fn default() -> Self {
        Envelope {
            procs: (2, 5),
            generations: (24, 48),
            ages: (0, 30),
            max_loss: 0.25,
            max_dup: 0.05,
            max_delay_prob: 0.2,
            max_delay_ms: 20,
            max_crashes: 2,
            max_stalls: 1,
            allow_partitions: true,
            sabotage_prob: 0.05,
        }
    }
}

/// SplitMix64 — the small deterministic PRNG behind the generator. Not
/// the simulator's RNG: scenario drawing must stay stable even if the
/// simulator's `rand` dependency changes streams.
#[derive(Debug, Clone)]
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero. (Modulo bias is
    /// irrelevant at fuzzing's tolerances.)
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn fraction(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.fraction() < p
    }
}

/// Generate trial `trial` of the hunt seeded with `master_seed`, within
/// `env`. Pure and stateless: same arguments, same scenario.
pub fn generate(master_seed: u64, trial: u64, env: &Envelope) -> HeadlessSpec {
    let mut r = SplitMix(master_seed ^ (trial + 1).wrapping_mul(0xA076_1D64_78BD_642F));
    r.next_u64(); // decorrelate nearby trial indices

    let procs = r.range(env.procs.0 as u64, env.procs.1 as u64) as usize;
    let generations = r.range(env.generations.0, env.generations.1);
    let age = r.range(env.ages.0, env.ages.1);

    // --- fault plan -----------------------------------------------------
    let mut plan = FaultPlan::new(r.next_u64());
    if r.chance(0.7) {
        plan = plan.loss(r.fraction() * env.max_loss);
    }
    if r.chance(0.2) {
        plan = plan.duplication(r.fraction() * env.max_dup);
    }
    if r.chance(0.3) {
        plan = plan.delay(
            r.fraction() * env.max_delay_prob,
            SimTime::from_millis(r.range(1, env.max_delay_ms.max(1))),
        );
    }
    if r.chance(0.15) {
        // One asymmetric link override: a fully dead direction stresses
        // the reliable layer's give-up path.
        let src = r.below(procs as u64) as u32;
        let dst = (src + 1 + r.below(procs as u64 - 1) as u32) % procs as u32;
        plan = plan.link(
            src,
            dst,
            LinkFaults {
                drop_prob: 1.0,
                ..LinkFaults::default()
            },
        );
    }
    for _ in 0..r.below(env.max_crashes + 1) {
        let node = r.below(procs as u64) as u32;
        let at = SimTime::from_millis(r.range(10, 2_000));
        if r.chance(0.7) {
            let restart = at + SimTime::from_millis(r.range(5, 500));
            plan = plan.crash_and_restart(node, at, restart);
        } else {
            plan = plan.crash(node, at);
        }
    }
    for _ in 0..r.below(env.max_stalls + 1) {
        let node = r.below(procs as u64) as u32;
        let from = SimTime::from_millis(r.range(10, 1_000));
        let until = from + SimTime::from_millis(r.range(1, 300));
        plan = plan.stall(node, from, until);
    }
    if env.allow_partitions && r.chance(0.15) {
        let from = SimTime::from_millis(r.range(10, 1_500));
        let until = from + SimTime::from_millis(r.range(10, 400));
        let split = 1 + r.below(procs as u64 - 1) as u32;
        plan = plan.partition(from, until, 0..split);
    }

    // --- robustness-stack knobs ------------------------------------------
    let reliable = if r.chance(0.9) {
        let base_rto = SimTime::from_millis(r.range(5, 120));
        let max_rto = SimTime::from_nanos(
            (base_rto.as_nanos() << r.below(6)).min(SimTime::from_secs(5).as_nanos()),
        );
        Some(ReliableConfig {
            base_rto,
            max_rto,
            max_retries: r.range(1, 8) as u32,
            ..ReliableConfig::default()
        })
    } else {
        None
    };

    HeadlessSpec {
        procs,
        generations,
        runs: 1,
        seed: r.next_u64(),
        age,
        plan: (!plan.is_noop()).then_some(plan),
        reliable,
        read_timeout: r
            .chance(0.8)
            .then(|| SimTime::from_millis(r.range(10, 100))),
        heartbeat: r.chance(0.8).then(|| SimTime::from_millis(r.range(5, 50))),
        watchdog: SimTime::from_secs(3600),
        inject_stale: if r.chance(env.sabotage_prob) {
            r.range(1, 4)
        } else {
            0
        },
        snapshots: r.chance(0.3).then(|| r.range(4, 16)),
        supervision: r.chance(0.4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_scenario() {
        let env = Envelope::default();
        for trial in 0..20 {
            let a = generate(42, trial, &env);
            let b = generate(42, trial, &env);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "trial {trial}");
        }
    }

    #[test]
    fn different_trials_differ() {
        let env = Envelope::default();
        let a = format!("{:?}", generate(42, 0, &env));
        let b = format!("{:?}", generate(42, 1, &env));
        assert_ne!(a, b);
    }

    #[test]
    fn scenarios_respect_the_envelope() {
        let env = Envelope::default();
        for trial in 0..200 {
            let s = generate(7, trial, &env);
            assert!(
                (env.procs.0..=env.procs.1).contains(&s.procs),
                "trial {trial}"
            );
            assert!(
                (env.generations.0..=env.generations.1).contains(&s.generations),
                "trial {trial}"
            );
            assert!((env.ages.0..=env.ages.1).contains(&s.age), "trial {trial}");
            assert_eq!(s.runs, 1);
            assert_eq!(s.watchdog, SimTime::from_secs(3600));
            if let Some(plan) = &s.plan {
                assert!(!plan.is_noop(), "trial {trial}: stored plans are non-noop");
            }
        }
    }

    #[test]
    fn sabotage_envelope_forces_inject_stale() {
        let env = Envelope {
            sabotage_prob: 1.0,
            ..Envelope::default()
        };
        for trial in 0..20 {
            assert!(generate(1, trial, &env).inject_stale > 0, "trial {trial}");
        }
    }
}
