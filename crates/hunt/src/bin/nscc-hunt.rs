//! `nscc-hunt` — fuzz, shrink and replay robustness scenarios.
//!
//! ```text
//! nscc-hunt hunt --seed S --budget N [--workers W] [--out DIR]
//!                [--sabotage] [--shrink-cap K]
//! nscc-hunt shrink <repro.json> [--out PATH]
//! nscc-hunt replay <file-or-dir>...
//! ```
//!
//! `hunt` runs `N` generated trials (same seed + budget → identical
//! findings, regardless of worker count), then delta-debugs up to `K`
//! findings (default 5) to locally minimal repros; with `--out DIR`
//! each shrunk repro is written as a portable JSON document. `shrink`
//! re-minimises an existing repro in place (or to `--out`). `replay`
//! re-runs committed repros and fails (exit 1) on any divergence —
//! the corpus-forever CI check. Malformed arguments or documents exit 2.

use std::path::{Path, PathBuf};

use nscc_hunt::{hunt, shrink, Envelope, HuntConfig, Repro};

const USAGE: &str = "usage:
  nscc-hunt hunt --seed S --budget N [--workers W] [--out DIR] [--sabotage] [--shrink-cap K]
  nscc-hunt shrink <repro.json> [--out PATH]
  nscc-hunt replay <file-or-dir>...";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| die(&format!("{flag} needs a value")));
    raw.parse()
        .unwrap_or_else(|_| die(&format!("{flag} {raw:?} is malformed: expected an integer")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("hunt") => cmd_hunt(args),
        Some("shrink") => cmd_shrink(args),
        Some("replay") => cmd_replay(args),
        Some("--help") | Some("-h") => println!("{USAGE}"),
        Some(other) => die(&format!("unknown subcommand {other:?}")),
        None => die("missing subcommand"),
    }
}

fn cmd_hunt(mut args: impl Iterator<Item = String>) {
    let mut seed = None;
    let mut budget = None;
    let mut workers = 0usize;
    let mut out_dir: Option<PathBuf> = None;
    let mut envelope = Envelope::default();
    let mut shrink_cap = 5usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = Some(parse_num("--seed", args.next())),
            "--budget" => budget = Some(parse_num("--budget", args.next())),
            "--workers" => workers = parse_num("--workers", args.next()),
            "--out" => {
                out_dir = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a value")),
                ))
            }
            "--sabotage" => envelope.sabotage_prob = 1.0,
            "--shrink-cap" => shrink_cap = parse_num("--shrink-cap", args.next()),
            other => die(&format!("unknown hunt option {other:?}")),
        }
    }
    let cfg = HuntConfig {
        master_seed: seed.unwrap_or_else(|| die("hunt requires --seed")),
        budget: budget.unwrap_or_else(|| die("hunt requires --budget")),
        workers,
        envelope,
    };
    println!(
        "hunt: seed={} budget={} workers={}",
        cfg.master_seed,
        cfg.budget,
        cfg.effective_workers()
    );
    let findings = hunt(&cfg, &|line| eprintln!("  {line}"));
    println!("{} finding(s) in {} trial(s)", findings.len(), cfg.budget);
    for f in &findings {
        println!(
            "trial {}: {} — {}",
            f.trial,
            f.verdict.primary().unwrap_or("?"),
            f.verdict
                .findings
                .first()
                .map(|x| x.detail.as_str())
                .unwrap_or("")
        );
    }
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die(&format!("cannot create --out {}: {e}", dir.display()));
        }
    }
    for f in findings.iter().take(shrink_cap) {
        let note = format!(
            "hunted: seed={} trial={} ({} raw finding(s))",
            cfg.master_seed,
            f.trial,
            f.verdict.findings.len()
        );
        println!("shrinking trial {}:", f.trial);
        let (min, verdict) = shrink(&f.spec, |step| println!("  {step}"));
        let kind = verdict.primary().unwrap_or("clean").to_string();
        println!(
            "  minimal: {} plan event(s), primary {kind}",
            min.plan.as_ref().map_or(0, |p| p.events())
        );
        if let Some(dir) = &out_dir {
            let slug: String = kind
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                .collect();
            let path = dir.join(format!("trial{}-{slug}.json", f.trial));
            let repro = Repro::from_finding(min, &verdict, &note);
            if let Err(e) = std::fs::write(&path, repro.to_json()) {
                die(&format!("cannot write {}: {e}", path.display()));
            }
            println!("  wrote {}", path.display());
        }
    }
    if findings.len() > shrink_cap {
        println!(
            "note: shrank the first {shrink_cap} of {} finding(s) (raise --shrink-cap to widen)",
            findings.len()
        );
    }
}

fn cmd_shrink(mut args: impl Iterator<Item = String>) {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out needs a value")),
                ))
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => die(&format!("unknown shrink option {other:?}")),
        }
    }
    let input = input.unwrap_or_else(|| die("shrink requires a repro file"));
    let repro = Repro::load(&input).unwrap_or_else(|e| die(&e));
    let (min, verdict) = shrink(&repro.scenario, |step| println!("  {step}"));
    if verdict.is_clean() {
        die(&format!(
            "{}: scenario no longer fails; nothing to shrink (use replay to check expectations)",
            input.display()
        ));
    }
    let shrunk = Repro::from_finding(min, &verdict, &repro.note);
    let target = out.unwrap_or(input);
    if let Err(e) = std::fs::write(&target, shrunk.to_json()) {
        die(&format!("cannot write {}: {e}", target.display()));
    }
    println!(
        "wrote {} ({} finding(s), digest {})",
        target.display(),
        shrunk.findings.len(),
        shrunk.digest
    );
}

fn cmd_replay(args: impl Iterator<Item = String>) {
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        if arg.starts_with('-') {
            die(&format!("unknown replay option {arg:?}"));
        }
        let p = Path::new(&arg);
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(p) {
                Ok(rd) => rd
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect(),
                Err(e) => die(&format!("cannot read directory {arg}: {e}")),
            };
            entries.sort();
            if entries.is_empty() {
                eprintln!("warning: no .json repros under {arg}");
            }
            paths.extend(entries);
        } else {
            paths.push(p.to_path_buf());
        }
    }
    if paths.is_empty() {
        die("replay requires at least one repro file or directory");
    }
    let mut failures = 0usize;
    for path in &paths {
        let repro = Repro::load(path).unwrap_or_else(|e| die(&e));
        match repro.replay() {
            Ok(confirmation) => println!("PASS {}: {confirmation}", path.display()),
            Err(e) => {
                failures += 1;
                println!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!("replayed {} repro(s), {} failure(s)", paths.len(), failures);
    if failures > 0 {
        std::process::exit(1);
    }
}
