//! The portable repro format: one versioned JSON document carrying a
//! complete scenario plus the expected verdict, replayable forever.
//!
//! Two expectation polarities:
//!
//! * `must-reproduce` — the scenario demonstrates a real behaviour
//!   (e.g. the `inject_stale` sabotage tripping the staleness monitor).
//!   Replay fails if the findings' digest diverges from the recorded
//!   one: the repro doubles as a byte-exact determinism check.
//! * `must-not-reproduce` — the scenario used to fail and was fixed.
//!   Replay fails if any oracle fires again: the repro is a regression
//!   guard.
//!
//! The embedded fault plan reuses [`FaultPlan`]'s own versioned JSON;
//! the envelope reuses the same strict hand-rolled reader (no external
//! JSON dependency anywhere in the workspace).

use std::fmt::Write as _;

use nscc_bench::headless::{run_headless, HeadlessSpec};
use nscc_core::FaultPlan;
use nscc_faults::json::{push_json_str, Value};
use nscc_msg::ReliableConfig;
use nscc_sim::SimTime;

use crate::oracle::{digest, judge, Verdict};

/// Schema version stamped into (and demanded from) every repro document.
pub const REPRO_SCHEMA_VERSION: u64 = 1;

/// What replay must observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The recorded findings must come back byte-identically.
    MustReproduce,
    /// No oracle may fire (a fixed bug staying fixed).
    MustNotReproduce,
}

impl Expectation {
    fn as_str(self) -> &'static str {
        match self {
            Expectation::MustReproduce => "must-reproduce",
            Expectation::MustNotReproduce => "must-not-reproduce",
        }
    }
}

/// One committed repro: scenario + expectation + recorded evidence.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The complete trial configuration.
    pub scenario: HeadlessSpec,
    /// Replay polarity.
    pub expect: Expectation,
    /// FNV digest over the recorded findings (empty-verdict digest for
    /// `must-not-reproduce`).
    pub digest: String,
    /// The recorded findings, for humans and diffs; replay re-derives
    /// them and trusts only the digest.
    pub findings: Vec<String>,
    /// Free-form provenance (which hunt, which trial, what it shows).
    pub note: String,
}

impl Repro {
    /// Package a failing scenario and its verdict as a `must-reproduce`
    /// repro.
    pub fn from_finding(scenario: HeadlessSpec, verdict: &Verdict, note: &str) -> Repro {
        Repro {
            scenario,
            expect: Expectation::MustReproduce,
            digest: digest(verdict),
            findings: verdict.lines(),
            note: note.to_string(),
        }
    }

    /// Re-run the scenario and check the expectation. `Ok` carries a
    /// one-line confirmation; `Err` explains the divergence.
    pub fn replay(&self) -> Result<String, String> {
        let verdict = judge(&self.scenario, &run_headless(&self.scenario));
        let fresh = digest(&verdict);
        match self.expect {
            Expectation::MustReproduce => {
                if fresh == self.digest {
                    Ok(format!(
                        "reproduced: {} finding(s), digest {}",
                        verdict.findings.len(),
                        fresh
                    ))
                } else {
                    let mut msg = format!(
                        "findings diverged: recorded digest {} ({} finding(s)), replay got {} ({}):",
                        self.digest,
                        self.findings.len(),
                        fresh,
                        verdict.findings.len()
                    );
                    for line in verdict.lines().iter().take(8) {
                        let _ = write!(msg, "\n  {line}");
                    }
                    Err(msg)
                }
            }
            Expectation::MustNotReproduce => {
                if verdict.is_clean() {
                    Ok("still clean".to_string())
                } else {
                    let mut msg = format!(
                        "fixed scenario failed again ({} finding(s)):",
                        verdict.findings.len()
                    );
                    for line in verdict.lines().iter().take(8) {
                        let _ = write!(msg, "\n  {line}");
                    }
                    Err(msg)
                }
            }
        }
    }

    /// Serialize to the canonical compact JSON document (trailing
    /// newline included — repros are committed files).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(out, "{{\"schema\":{REPRO_SCHEMA_VERSION},\"note\":");
        push_json_str(&mut out, &self.note);
        out.push_str(",\"scenario\":");
        push_spec(&mut out, &self.scenario);
        let _ = write!(
            out,
            ",\"expect\":{{\"status\":\"{}\",\"digest\":",
            self.expect.as_str()
        );
        push_json_str(&mut out, &self.digest);
        out.push_str(",\"findings\":[");
        for (i, line) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, line);
        }
        out.push_str("]}}\n");
        out
    }

    /// Strict parse of a repro document (the reading half of the NSCC_*
    /// exit-2 convention: callers treat `Err` as a hard error).
    pub fn from_json(text: &str) -> Result<Repro, String> {
        let doc = Value::parse(text)?;
        let obj = doc.as_obj("repro")?;
        let mut scenario = None;
        let mut expect = None;
        let mut doc_digest = None;
        let mut findings = Vec::new();
        let mut note = String::new();
        let mut saw_schema = false;
        for (key, value) in obj {
            match key.as_str() {
                "schema" => {
                    let v = value.as_u64("schema")?;
                    if v != REPRO_SCHEMA_VERSION {
                        return Err(format!(
                            "unsupported repro schema {v} (this build reads {REPRO_SCHEMA_VERSION})"
                        ));
                    }
                    saw_schema = true;
                }
                "note" => note = value.as_str("note")?.to_string(),
                "scenario" => scenario = Some(spec_from_value(value)?),
                "expect" => {
                    for (k, v) in value.as_obj("expect")? {
                        match k.as_str() {
                            "status" => {
                                expect = Some(match v.as_str("status")? {
                                    "must-reproduce" => Expectation::MustReproduce,
                                    "must-not-reproduce" => Expectation::MustNotReproduce,
                                    other => {
                                        return Err(format!(
                                            "unknown expect status {other:?} (expected \
                                             must-reproduce or must-not-reproduce)"
                                        ))
                                    }
                                })
                            }
                            "digest" => doc_digest = Some(v.as_str("digest")?.to_string()),
                            "findings" => {
                                for item in v.as_arr("findings")? {
                                    findings.push(item.as_str("findings entry")?.to_string());
                                }
                            }
                            other => return Err(format!("unknown expect key `{other}`")),
                        }
                    }
                }
                other => return Err(format!("unknown repro key `{other}`")),
            }
        }
        if !saw_schema {
            return Err("repro missing `schema`".into());
        }
        Ok(Repro {
            scenario: scenario.ok_or("repro missing `scenario`")?,
            expect: expect.ok_or("repro missing `expect.status`")?,
            digest: doc_digest.ok_or("repro missing `expect.digest`")?,
            findings,
            note,
        })
    }

    /// Read a repro from a file, prefixing errors with the path.
    pub fn load(path: &std::path::Path) -> Result<Repro, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Repro::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

// ---------------------------------------------------------------------
// Scenario serialization
// ---------------------------------------------------------------------

fn push_opt_ns(out: &mut String, key: &str, v: Option<SimTime>) {
    match v {
        Some(t) => {
            let _ = write!(out, "\"{key}\":{}", t.as_nanos());
        }
        None => {
            let _ = write!(out, "\"{key}\":null");
        }
    }
}

fn push_spec(out: &mut String, s: &HeadlessSpec) {
    let _ = write!(
        out,
        "{{\"procs\":{},\"generations\":{},\"runs\":{},\"seed\":{},\"age\":{},",
        s.procs, s.generations, s.runs, s.seed, s.age
    );
    match &s.reliable {
        Some(r) => {
            let _ = write!(
                out,
                "\"reliable\":{{\"ack_bytes\":{},\"base_rto_ns\":{},\"max_retries\":{},\
                 \"max_rto_ns\":{}}},",
                r.ack_bytes,
                r.base_rto.as_nanos(),
                r.max_retries,
                r.max_rto.as_nanos()
            );
        }
        None => out.push_str("\"reliable\":null,"),
    }
    push_opt_ns(out, "read_timeout_ns", s.read_timeout);
    out.push(',');
    push_opt_ns(out, "heartbeat_ns", s.heartbeat);
    let _ = write!(
        out,
        ",\"watchdog_ns\":{},\"inject_stale\":{},",
        s.watchdog.as_nanos(),
        s.inject_stale
    );
    match s.snapshots {
        Some(every) => {
            let _ = write!(out, "\"snapshots\":{every},");
        }
        None => out.push_str("\"snapshots\":null,"),
    }
    let _ = write!(out, "\"supervision\":{},", s.supervision);
    match &s.plan {
        Some(plan) => {
            out.push_str("\"plan\":");
            out.push_str(&plan.to_json());
        }
        None => out.push_str("\"plan\":null"),
    }
    out.push('}');
}

fn opt_time(v: &Value, what: &str) -> Result<Option<SimTime>, String> {
    match v {
        Value::Null => Ok(None),
        other => other.as_time(what).map(Some),
    }
}

fn spec_from_value(v: &Value) -> Result<HeadlessSpec, String> {
    let obj = v.as_obj("scenario")?;
    let mut s = HeadlessSpec {
        procs: 0,
        generations: 0,
        runs: 0,
        seed: 0,
        age: 0,
        plan: None,
        reliable: None,
        read_timeout: None,
        heartbeat: None,
        watchdog: SimTime::ZERO,
        inject_stale: 0,
        snapshots: None,
        supervision: false,
    };
    let mut seen = [false; 5]; // procs, generations, runs, seed, watchdog
    for (key, value) in obj {
        match key.as_str() {
            "procs" => {
                s.procs = value.as_u64("procs")? as usize;
                seen[0] = true;
            }
            "generations" => {
                s.generations = value.as_u64("generations")?;
                seen[1] = true;
            }
            "runs" => {
                s.runs = value.as_u64("runs")? as usize;
                seen[2] = true;
            }
            "seed" => {
                s.seed = value.as_u64("seed")?;
                seen[3] = true;
            }
            "age" => s.age = value.as_u64("age")?,
            "reliable" => {
                s.reliable = match value {
                    Value::Null => None,
                    other => {
                        let mut r = ReliableConfig::default();
                        for (k, v) in other.as_obj("reliable")? {
                            match k.as_str() {
                                "ack_bytes" => r.ack_bytes = v.as_u64(k)? as usize,
                                "base_rto_ns" => r.base_rto = v.as_time(k)?,
                                "max_retries" => r.max_retries = v.as_u32(k)?,
                                "max_rto_ns" => r.max_rto = v.as_time(k)?,
                                other => return Err(format!("unknown reliable key `{other}`")),
                            }
                        }
                        Some(r)
                    }
                };
            }
            "read_timeout_ns" => s.read_timeout = opt_time(value, key)?,
            "heartbeat_ns" => s.heartbeat = opt_time(value, key)?,
            "watchdog_ns" => {
                s.watchdog = value.as_time("watchdog_ns")?;
                seen[4] = true;
            }
            "inject_stale" => s.inject_stale = value.as_u64("inject_stale")?,
            "snapshots" => {
                s.snapshots = match value {
                    Value::Null => None,
                    other => Some(other.as_u64("snapshots")?),
                };
            }
            "supervision" => s.supervision = value.as_bool("supervision")?,
            "plan" => {
                s.plan = match value {
                    Value::Null => None,
                    other => Some(FaultPlan::from_value(other)?),
                };
            }
            other => return Err(format!("unknown scenario key `{other}`")),
        }
    }
    for (ok, name) in seen
        .iter()
        .zip(["procs", "generations", "runs", "seed", "watchdog_ns"])
    {
        if !ok {
            return Err(format!("scenario missing `{name}`"));
        }
    }
    if s.procs < 2 {
        return Err(format!("scenario needs at least 2 procs (got {})", s.procs));
    }
    if s.runs == 0 {
        return Err("scenario needs at least 1 run".into());
    }
    if s.watchdog == SimTime::ZERO {
        return Err("scenario watchdog_ns must be positive (a fuzzer must never hang)".into());
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Finding;

    fn rich_repro() -> Repro {
        let scenario = HeadlessSpec {
            inject_stale: 1,
            plan: Some(FaultPlan::new(9).loss(0.01).crash_and_restart(
                1,
                SimTime::from_millis(20),
                SimTime::from_millis(50),
            )),
            snapshots: Some(8),
            supervision: true,
            ..HeadlessSpec::quick(u64::MAX - 1)
        };
        let verdict = Verdict {
            findings: vec![Finding {
                kind: "audit:staleness".into(),
                detail: "staleness@123 rank=0: stale by 12".into(),
            }],
        };
        Repro::from_finding(scenario, &verdict, "unit fixture \"quoted\"")
    }

    #[test]
    fn round_trip_is_canonical() {
        let repro = rich_repro();
        let text = repro.to_json();
        assert!(text.ends_with("}\n"));
        let back = Repro::from_json(&text).unwrap();
        assert_eq!(back.to_json(), text, "canonical form round-trips exactly");
        assert_eq!(back.expect, Expectation::MustReproduce);
        assert_eq!(back.digest, repro.digest);
        assert_eq!(back.findings, repro.findings);
        assert_eq!(back.note, repro.note);
        assert_eq!(back.scenario.seed, u64::MAX - 1, "u64 seeds survive");
        assert_eq!(
            back.scenario.plan.as_ref().unwrap().to_json(),
            repro.scenario.plan.as_ref().unwrap().to_json()
        );
    }

    #[test]
    fn strict_parser_rejects_bad_documents() {
        let good = rich_repro().to_json();
        for (mutate, why) in [
            ("\"schema\":1", "\"schema\":99"),
            ("\"status\":\"must-reproduce\"", "\"status\":\"maybe\""),
            ("\"procs\":4", "\"procz\":4"),
            ("\"watchdog_ns\":3600000000000", "\"watchdog_ns\":0"),
        ] {
            let bad = good.replace(mutate, why);
            assert_ne!(bad, good, "mutation applied: {mutate}");
            assert!(Repro::from_json(&bad).is_err(), "{mutate} -> {why}");
        }
        assert!(Repro::from_json("{}").is_err(), "missing everything");
        assert!(Repro::from_json("not json").is_err());
    }

    #[test]
    fn load_prefixes_the_path() {
        let dir = std::env::temp_dir().join(format!("nscc-repro-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, rich_repro().to_json()).unwrap();
        assert!(Repro::load(&good).is_ok());
        let err = Repro::load(&dir.join("missing.json")).unwrap_err();
        assert!(err.contains("missing.json"), "{err}");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{").unwrap();
        let err = Repro::load(&bad).unwrap_err();
        assert!(err.contains("bad.json"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sabotage_repro_replays_byte_identically() {
        // End-to-end: a real sabotage scenario, judged, packaged,
        // serialized, parsed back and replayed — the digest must match.
        let scenario = HeadlessSpec {
            inject_stale: 1,
            ..HeadlessSpec::quick(21)
        };
        let verdict = judge(&scenario, &run_headless(&scenario));
        // The injected-stale release trips two oracles: the staleness
        // monitor (age bound broken) and the conservation plane (the
        // sabotaged release has no honest hop stamps to account for its
        // age). The anatomy event precedes the read-done on the wire, so
        // the conservation violation is recorded first.
        assert_eq!(verdict.primary(), Some("audit:conservation"));
        assert!(verdict.has_kind("audit:staleness"));
        assert!(verdict.has_kind("conservation"));
        let repro = Repro::from_finding(scenario, &verdict, "e2e test");
        let back = Repro::from_json(&repro.to_json()).unwrap();
        let confirmation = back.replay().expect("replay confirms");
        assert!(confirmation.contains(&repro.digest), "{confirmation}");
    }

    #[test]
    fn must_not_reproduce_guards_fixed_scenarios() {
        let clean = Repro {
            scenario: HeadlessSpec::quick(3),
            expect: Expectation::MustNotReproduce,
            digest: digest(&Verdict::default()),
            findings: vec![],
            note: "regression guard".into(),
        };
        clean.replay().expect("clean scenario stays clean");

        let still_failing = Repro {
            scenario: HeadlessSpec {
                inject_stale: 1,
                ..HeadlessSpec::quick(3)
            },
            expect: Expectation::MustNotReproduce,
            digest: digest(&Verdict::default()),
            findings: vec![],
            note: "not actually fixed".into(),
        };
        let err = still_failing.replay().unwrap_err();
        assert!(err.contains("failed again"), "{err}");
    }
}
