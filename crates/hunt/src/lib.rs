//! Fuzz-and-shrink robustness hunter for the NSCC stack.
//!
//! The paper's claim — that data-race-tolerant applications survive a
//! non-strict wire — is only as strong as the adversarial traffic it was
//! tested under. This crate industrialises that testing:
//!
//! * [`generate`] — a seeded generator mutating fault plans, crash and
//!   restart schedules, reliable-layer knobs, timeouts, heartbeats, age
//!   bounds and world sizes within a declared [`Envelope`]. Scenario
//!   `(master_seed, trial)` is a pure function: the same hunt always
//!   explores the same scenarios, in any worker arrangement.
//! * [`hunt`] — a budgeted driver running trials across OS threads. The
//!   oracles come from machinery the repo already trusts: the online
//!   audit monitors, the watchdog / deadlock detector, the rollback
//!   bound warm recovery promises, and run-completion checks.
//! * [`shrink`] — a delta-debugging minimiser: drop fault-plan events
//!   one at a time and simplify configuration knobs until the scenario
//!   is locally minimal while still exhibiting the original failure
//!   kind.
//! * [`Repro`] — a portable, versioned JSON format for the minimised
//!   scenario plus the expected verdict, replayable forever by
//!   `nscc replay` (the committed `repros/` corpus runs in CI).

#![warn(missing_docs)]

mod driver;
mod generate;
mod oracle;
mod repro;
mod shrink;

pub use driver::{hunt, HuntConfig, HuntFinding};
pub use generate::{generate, Envelope, SplitMix};
pub use oracle::{digest, judge, Finding, Verdict};
pub use repro::{Expectation, Repro, REPRO_SCHEMA_VERSION};
pub use shrink::shrink;
