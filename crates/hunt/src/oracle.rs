//! Oracles: turn one trial's [`HeadlessOutcome`] into a machine-readable
//! [`Verdict`], reusing the invariants the repo already enforces —
//! audit-monitor violations, watchdog cuts and deadlocks, the warm
//! recovery rollback bound, and run completion.

use nscc_bench::headless::{HeadlessOutcome, HeadlessSpec};

/// One oracle hit: a stable `kind` (what class of failure) plus the
/// concrete `detail` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Failure class: `deadlock`, `audit:<monitor>`, `conservation`,
    /// `rollback`, `fault` or `incomplete`. The shrinker preserves the
    /// most severe kind; the replay digest covers the full detail.
    pub kind: String,
    /// The concrete, deterministic evidence line.
    pub detail: String,
}

impl Finding {
    /// The canonical one-line rendering (`kind: detail`).
    pub fn line(&self) -> String {
        format!("{}: {}", self.kind, self.detail)
    }
}

/// Every oracle hit of one trial, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// The findings, ordered: deadlock, audit violations, staleness
    /// conservation, rollback, fault reports, completion.
    pub findings: Vec<Finding>,
}

impl Verdict {
    /// No oracle fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The most severe failure kind present (`None` when clean). The
    /// severity order matters to the shrinker: a deadlock must not decay
    /// into a mere incomplete run while shrinking.
    pub fn primary(&self) -> Option<&str> {
        for prefix in [
            "deadlock",
            "audit:",
            "conservation",
            "rollback",
            "fault",
            "incomplete",
        ] {
            if let Some(f) = self.findings.iter().find(|f| f.kind.starts_with(prefix)) {
                return Some(&f.kind);
            }
        }
        self.findings.first().map(|f| f.kind.as_str())
    }

    /// Whether a finding of exactly this kind is present.
    pub fn has_kind(&self, kind: &str) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }

    /// The canonical rendering, one line per finding.
    pub fn lines(&self) -> Vec<String> {
        self.findings.iter().map(Finding::line).collect()
    }
}

/// Judge one trial. Deterministic: the outcome is a pure function of
/// the spec, and the verdict is a pure function of the outcome.
pub fn judge(spec: &HeadlessSpec, out: &HeadlessOutcome) -> Verdict {
    let mut v = Verdict::default();
    if let Some(e) = &out.sim_error {
        v.findings.push(Finding {
            kind: "deadlock".into(),
            detail: e.clone(),
        });
    }
    for line in &out.violations {
        // Violation lines are `monitor@t_ns rank=N: detail`.
        let monitor = line.split('@').next().unwrap_or("unknown");
        v.findings.push(Finding {
            kind: format!("audit:{monitor}"),
            detail: line.clone(),
        });
    }
    if out.violation_count > out.violations.len() as u64 {
        v.findings.push(Finding {
            kind: "audit:overflow".into(),
            detail: format!(
                "{} violation(s) total, {} recorded",
                out.violation_count,
                out.violations.len()
            ),
        });
    }
    if out.conservation_violations > 0 {
        // The staleness tracer decomposes every released read's age into
        // named stage durations; the sums must telescope exactly. A leak
        // here is a tracing bug (a wrong or missing hop stamp), distinct
        // from any age-bound violation the audit monitors report.
        v.findings.push(Finding {
            kind: "conservation".into(),
            detail: format!(
                "{} of {} traced decomposition(s) do not sum to the observed age",
                out.conservation_violations, out.traced_releases
            ),
        });
    }
    if out.max_rollback > spec.age {
        v.findings.push(Finding {
            kind: "rollback".into(),
            detail: format!(
                "warm restore rolled back {} generation(s), past the age bound {}",
                out.max_rollback, spec.age
            ),
        });
    }
    for s in &out.fault_summaries {
        v.findings.push(Finding {
            kind: "fault".into(),
            detail: s.clone(),
        });
    }
    if out.sim_error.is_none() && out.success_rate < 1.0 {
        v.findings.push(Finding {
            kind: "incomplete".into(),
            detail: format!(
                "only {:.2} of runs reached the quality bar",
                out.success_rate
            ),
        });
    }
    v
}

/// FNV-1a 64 digest over the verdict's canonical lines — the byte-exact
/// fingerprint replay compares. Two runs of the same scenario produce
/// the same simulation, hence the same lines, hence the same digest.
pub fn digest(verdict: &Verdict) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in verdict.lines() {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> HeadlessOutcome {
        HeadlessOutcome {
            success_rate: 1.0,
            ..HeadlessOutcome::default()
        }
    }

    #[test]
    fn clean_outcome_judges_clean() {
        let spec = HeadlessSpec::quick(1);
        let v = judge(&spec, &outcome());
        assert!(v.is_clean());
        assert_eq!(v.primary(), None);
    }

    #[test]
    fn every_oracle_fires_and_severity_orders() {
        let spec = HeadlessSpec::quick(1); // age 10
        let out = HeadlessOutcome {
            violations: vec!["staleness@5 rank=0: stale by 12 (bound 10)".into()],
            violation_count: 1,
            fault_summaries: vec!["watchdog cut run at 3600s".into()],
            sim_error: Some("deadlock at 12ms: 4 blocked".into()),
            success_rate: 0.0,
            max_rollback: 99,
            traced_releases: 40,
            conservation_violations: 3,
            ..HeadlessOutcome::default()
        };
        let v = judge(&spec, &out);
        assert_eq!(v.primary(), Some("deadlock"));
        assert!(v.has_kind("audit:staleness"));
        assert!(v.has_kind("conservation"));
        assert!(v.has_kind("rollback"));
        assert!(v.has_kind("fault"));
        // A sim error means the run never reported; `incomplete` would
        // double-count the deadlock.
        assert!(!v.has_kind("incomplete"));
    }

    #[test]
    fn incomplete_fires_only_without_a_sim_error() {
        let spec = HeadlessSpec::quick(1);
        let out = HeadlessOutcome {
            success_rate: 0.5,
            ..outcome()
        };
        let v = judge(&spec, &out);
        assert_eq!(v.primary(), Some("incomplete"));
    }

    #[test]
    fn conservation_leak_outranks_rollback_but_not_audit() {
        let spec = HeadlessSpec::quick(1);
        let out = HeadlessOutcome {
            traced_releases: 12,
            conservation_violations: 1,
            max_rollback: 99,
            ..outcome()
        };
        let v = judge(&spec, &out);
        assert_eq!(v.primary(), Some("conservation"));
        assert!(v.has_kind("rollback"));
        let with_audit = HeadlessOutcome {
            violations: vec!["age@7 rank=0: x".into()],
            violation_count: 1,
            ..out
        };
        let v = judge(&spec, &with_audit);
        assert_eq!(v.primary(), Some("audit:age"));
        assert!(v.has_kind("conservation"));
    }

    #[test]
    fn traced_clean_runs_stay_clean() {
        let spec = HeadlessSpec::quick(1);
        let out = HeadlessOutcome {
            traced_releases: 500,
            conservation_violations: 0,
            ..outcome()
        };
        assert!(judge(&spec, &out).is_clean());
    }

    #[test]
    fn rollback_respects_the_age_bound() {
        let spec = HeadlessSpec::quick(1); // age 10
        let ok = HeadlessOutcome {
            max_rollback: 10,
            ..outcome()
        };
        assert!(judge(&spec, &ok).is_clean());
        let bad = HeadlessOutcome {
            max_rollback: 11,
            ..outcome()
        };
        assert!(judge(&spec, &bad).has_kind("rollback"));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let spec = HeadlessSpec::quick(1);
        let out = HeadlessOutcome {
            violations: vec!["staleness@5 rank=0: x".into()],
            violation_count: 1,
            ..outcome()
        };
        let a = digest(&judge(&spec, &out));
        let b = digest(&judge(&spec, &out));
        assert_eq!(a, b);
        let out2 = HeadlessOutcome {
            violations: vec!["staleness@6 rank=0: x".into()],
            violation_count: 1,
            ..outcome()
        };
        assert_ne!(a, digest(&judge(&spec, &out2)));
        assert_eq!(digest(&Verdict::default()), digest(&Verdict::default()));
    }
}
